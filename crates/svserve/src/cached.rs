//! Cached pairwise divergence: the bridge between [`crate::cache`] and the
//! `svmetrics` comparison kernels.
//!
//! Only the metrics whose pair cost is super-linear go through the cache —
//! the tree metrics (`T_src`/`T_sem`/`T_ir`, one TED per pair) and the
//! line-based `source` metric (O(NP) edit distance).  `SLOC`/`LLOC`/
//! `code_divergence` pairs are cheaper to recompute than to fingerprint,
//! so [`supports`] excludes them and callers fall back to the direct path.
//!
//! The approximate-first matrix engine (`svmetrics::divergence_matrix_approx`,
//! exposed as the opt-in `approx` request flag in the silvervale service)
//! bypasses this cache entirely: its threshold kernel can report cutoff
//! sentinels instead of exact pair distances, and those must never be
//! stored where an exact request would read them back.

use crate::cache::{fnv1a, CacheKey, CachedPair, TedCache};
use svdist::{edit_distance_onp, ted_shared, CostModel, SharedTree, Strategy};
use svmetrics::{lines_of, tree_of, Divergence, Measured, Metric, Variant};

/// Discriminant of the (only) TED cost model in use: unit costs.
pub const COST_UNIT: u8 = 0;

/// Stable small discriminant of a metric for cache keying.
pub fn metric_code(metric: Metric) -> u8 {
    match metric {
        Metric::Sloc => 0,
        Metric::Lloc => 1,
        Metric::Source => 2,
        Metric::TSrc => 3,
        Metric::TSem => 4,
        Metric::TIr => 5,
        Metric::CodeDivergence => 6,
    }
}

/// Variant bits for cache keying.
pub fn variant_code(v: Variant) -> u8 {
    (v.preprocessor as u8) | (v.inlining as u8) << 1 | (v.coverage as u8) << 2
}

/// True when pairs of this metric are worth caching.
pub fn supports(metric: Metric) -> bool {
    matches!(metric, Metric::TSrc | Metric::TSem | Metric::TIr | Metric::Source)
}

/// The comparison artefact of one unit under a cacheable metric, carrying
/// its content fingerprint and normalisation weight.
///
/// Extracting this once per unit (instead of once per pair) is what makes
/// an all-hits matrix request O(n) instead of O(n²) in tree masking work.
pub enum FpArtifact {
    Tree { fp: u64, tree: SharedTree },
    Lines { fp: u64, lines: Vec<String> },
}

impl FpArtifact {
    /// Extract and fingerprint the artefact `metric`/`v` compares.
    ///
    /// # Panics
    /// Panics if `metric` is not cacheable (see [`supports`]).
    pub fn of(m: &Measured<'_>, metric: Metric, v: Variant) -> FpArtifact {
        match metric {
            Metric::TSrc | Metric::TSem | Metric::TIr => {
                // `SharedTree::structural_hash` is memoised: repeated
                // requests over the same stored artefact fingerprint it
                // without re-walking the tree.
                let tree = tree_of(m, metric, v);
                FpArtifact::Tree { fp: tree.structural_hash(), tree }
            }
            Metric::Source => {
                let lines = lines_of(m, v);
                let fp = fnv1a(lines.iter().map(|l| l.as_bytes()));
                FpArtifact::Lines { fp, lines }
            }
            other => panic!("metric {other:?} is not cacheable"),
        }
    }

    /// Content fingerprint.
    pub fn fp(&self) -> u64 {
        match self {
            FpArtifact::Tree { fp, .. } | FpArtifact::Lines { fp, .. } => *fp,
        }
    }

    /// Normalisation weight: tree size or line count.
    pub fn weight(&self) -> u64 {
        match self {
            FpArtifact::Tree { tree, .. } => tree.size() as u64,
            FpArtifact::Lines { lines, .. } => lines.len() as u64,
        }
    }
}

/// Estimated compute cost of an artefact pair, used to order parallel
/// matrix schedules largest-first (LPT).  Fingerprint-equal pairs are
/// answered by the equal-artefact short-circuit without any distance
/// computation, so they cost 0; everything else scales with the DP table
/// (tree pairs) or the edit-distance working set (line pairs).  Purely an
/// ordering hint — it never changes a value.
pub fn pair_cost(a: &FpArtifact, b: &FpArtifact) -> u64 {
    if a.fp() == b.fp() {
        return 0;
    }
    match (a, b) {
        (FpArtifact::Tree { .. }, FpArtifact::Tree { .. }) => a.weight().saturating_mul(b.weight()),
        _ => a.weight().saturating_add(b.weight()),
    }
}

/// Raw pairwise distance — exactly what `svmetrics::divergence` computes
/// for this metric, with no cache involved.
fn raw_distance(a: &FpArtifact, b: &FpArtifact) -> u64 {
    match (a, b) {
        (FpArtifact::Tree { tree: ta, .. }, FpArtifact::Tree { tree: tb, .. }) => {
            let _s = svtrace::span!("ted.compute", a = ta.size(), b = tb.size());
            ted_shared(ta, tb, CostModel::UNIT, Strategy::Auto)
        }
        (FpArtifact::Lines { lines: la, .. }, FpArtifact::Lines { lines: lb, .. }) => {
            let _s = svtrace::span!("source.edit_distance", a = la.len(), b = lb.len());
            edit_distance_onp(la, lb) as u64
        }
        _ => unreachable!("artefact kinds are uniform per metric"),
    }
}

/// Distance and weights for an (ordered) artefact pair, served from the
/// cache when resident.  `compute_count` is bumped only when the distance
/// is actually computed — the "no recompute" observable tests assert on.
pub fn pair_cached(
    cache: &TedCache,
    metric: Metric,
    v: Variant,
    a: &FpArtifact,
    b: &FpArtifact,
    compute_count: &std::sync::atomic::AtomicU64,
) -> CachedPair {
    let key = CacheKey::pair(a.fp(), b.fp(), metric_code(metric), variant_code(v), COST_UNIT);
    let entry = cache.get_or_compute(key, || {
        compute_count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let (w_lo, w_hi) =
            if a.fp() <= b.fp() { (a.weight(), b.weight()) } else { (b.weight(), a.weight()) };
        CachedPair { distance: raw_distance(a, b), weight_lo: w_lo, weight_hi: w_hi }
    });
    // Re-orient the stored weights to the caller's (a, b) order.
    let (weight_a, weight_b) = if a.fp() <= b.fp() {
        (entry.weight_lo, entry.weight_hi)
    } else {
        (entry.weight_hi, entry.weight_lo)
    };
    CachedPair { distance: entry.distance, weight_lo: weight_a, weight_hi: weight_b }
}

/// Cached divergence over pre-extracted artefacts: identical `Divergence`
/// (Eq. 6 distance, Eq. 7 dmax) to `svmetrics::divergence`, but a
/// resident pair costs a hash lookup instead of a TED.  Identical
/// fingerprints short-circuit to distance 0 — content-identical artefacts
/// are at distance 0 by construction, no computation or cache entry
/// needed (this is the paper's self-comparison correctness check).
pub fn divergence_cached_arts(
    cache: &TedCache,
    metric: Metric,
    v: Variant,
    a: &FpArtifact,
    b: &FpArtifact,
    compute_count: &std::sync::atomic::AtomicU64,
) -> Divergence {
    if a.fp() == b.fp() {
        let dmax = match metric {
            Metric::Source => (a.weight() + b.weight()).max(1),
            _ => b.weight().max(1),
        };
        return Divergence { distance: 0, dmax };
    }
    let pair = pair_cached(cache, metric, v, a, b, compute_count);
    // weight_lo/weight_hi are in (a, b) order after pair_cached's
    // re-orientation; dmax matches svmetrics::divergence exactly:
    // tb.size().max(1) for trees, (la + lb).max(1) for source lines.
    let dmax = match metric {
        Metric::Source => (pair.weight_lo + pair.weight_hi).max(1),
        _ => pair.weight_hi.max(1),
    };
    Divergence { distance: pair.distance, dmax }
}

/// Cached form of `svmetrics::divergence(metric, v, from, to)` for
/// cacheable metrics (extracts and fingerprints both artefacts first).
pub fn divergence_cached(
    cache: &TedCache,
    metric: Metric,
    v: Variant,
    from: &Measured<'_>,
    to: &Measured<'_>,
    compute_count: &std::sync::atomic::AtomicU64,
) -> Divergence {
    let a = FpArtifact::of(from, metric, v);
    let b = FpArtifact::of(to, metric, v);
    divergence_cached_arts(cache, metric, v, &a, &b, compute_count)
}

/// Matrix-cell value for an artefact pair — bit-identical to the
/// corresponding `svmetrics::divergence_matrix` cell (same integer inputs,
/// same f64 expression).
pub fn matrix_cell(metric: Metric, pair: &CachedPair) -> f64 {
    match metric {
        Metric::Source => pair.distance as f64 / (pair.weight_lo + pair.weight_hi).max(1) as f64,
        _ => pair.distance as f64 / pair.weight_lo.max(pair.weight_hi).max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use svdist::ted;
    use svtree::Tree;

    fn tree_a() -> Tree {
        Tree::node("f", vec![Tree::leaf("x"), Tree::node("g", vec![Tree::leaf("y")])])
    }

    fn tree_b() -> Tree {
        Tree::node("f", vec![Tree::node("g", vec![Tree::leaf("y"), Tree::leaf("z")])])
    }

    fn fp_art(t: &Tree) -> FpArtifact {
        let tree = SharedTree::new(t.clone());
        FpArtifact::Tree { fp: tree.structural_hash(), tree }
    }

    #[test]
    fn pair_cached_matches_direct_ted_and_counts_computes() {
        let cache = TedCache::new(1 << 16);
        let computes = AtomicU64::new(0);
        let (a, b) = (fp_art(&tree_a()), fp_art(&tree_b()));
        let p1 = pair_cached(&cache, Metric::TSem, Variant::PLAIN, &a, &b, &computes);
        assert_eq!(p1.distance, ted(&tree_a(), &tree_b()));
        assert_eq!(p1.weight_lo, tree_a().size() as u64);
        assert_eq!(p1.weight_hi, tree_b().size() as u64);
        assert_eq!(computes.load(Ordering::Relaxed), 1);
        // Second call: served from cache, no recompute.
        let p2 = pair_cached(&cache, Metric::TSem, Variant::PLAIN, &a, &b, &computes);
        assert_eq!(p1, p2);
        assert_eq!(computes.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn reversed_pair_shares_the_entry_with_swapped_weights() {
        let cache = TedCache::new(1 << 16);
        let computes = AtomicU64::new(0);
        let (a, b) = (fp_art(&tree_a()), fp_art(&tree_b()));
        let ab = pair_cached(&cache, Metric::TSem, Variant::PLAIN, &a, &b, &computes);
        let ba = pair_cached(&cache, Metric::TSem, Variant::PLAIN, &b, &a, &computes);
        assert_eq!(computes.load(Ordering::Relaxed), 1, "symmetric pair computed once");
        assert_eq!(ab.distance, ba.distance);
        assert_eq!(ab.weight_lo, ba.weight_hi);
        assert_eq!(ab.weight_hi, ba.weight_lo);
    }

    #[test]
    fn metric_and_variant_separate_cache_entries() {
        let cache = TedCache::new(1 << 16);
        let computes = AtomicU64::new(0);
        let (a, b) = (fp_art(&tree_a()), fp_art(&tree_b()));
        pair_cached(&cache, Metric::TSem, Variant::PLAIN, &a, &b, &computes);
        pair_cached(&cache, Metric::TSrc, Variant::PLAIN, &a, &b, &computes);
        pair_cached(&cache, Metric::TSem, Variant::INLINED, &a, &b, &computes);
        assert_eq!(computes.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn supports_covers_exactly_the_expensive_metrics() {
        for m in Metric::ALL {
            let expect = matches!(m, Metric::TSrc | Metric::TSem | Metric::TIr | Metric::Source);
            assert_eq!(supports(m), expect, "{m:?}");
        }
    }

    #[test]
    fn metric_codes_are_distinct() {
        let mut codes: Vec<u8> = Metric::ALL.iter().map(|&m| metric_code(m)).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), Metric::ALL.len());
    }
}
