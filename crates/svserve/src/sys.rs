//! Thin zero-dependency bindings to the three kernel facilities the
//! reactor and artifact store need: `epoll` (readiness), `eventfd`
//! (cross-thread wakeups), and `mmap` (zero-copy artifact reads).
//!
//! The repo's from-scratch ethos rules out the `libc` crate, so the
//! handful of syscall wrappers are declared here directly against the C
//! library `std` already links.  Everything is Linux-only and gated as
//! such; the portable fallbacks live with their callers (`reactor` keeps
//! a threaded accept loop, `store` reads the file into memory).

#![cfg(target_os = "linux")]

use std::io;
use std::os::fd::RawFd;

use core::ffi::{c_int, c_uint, c_void};

pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

const PROT_READ: c_int = 1;
const MAP_PRIVATE: c_int = 2;

/// The kernel's `struct epoll_event`.  On x86 the kernel ABI packs the
/// u64 data field against the events word; other architectures use the
/// natural layout.
#[repr(C)]
#[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn mmap(
        addr: *mut c_void,
        length: usize,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, length: usize) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An epoll instance (closed on drop).
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    /// Register `fd` for `events`, tagged with `data`.
    pub fn add(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_ADD, fd, &mut ev) })?;
        Ok(())
    }

    /// Change the interest set of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_MOD, fd, &mut ev) })?;
        Ok(())
    }

    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        let mut ev = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(self.fd, EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Wait up to `timeout_ms` (-1 blocks) and fill `events`; returns the
    /// ready count.  `EINTR` is retried internally.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            let n = unsafe {
                epoll_wait(self.fd, events.as_mut_ptr(), events.len() as c_int, timeout_ms)
            };
            if n >= 0 {
                return Ok(n as usize);
            }
            let e = io::Error::last_os_error();
            if e.kind() != io::ErrorKind::Interrupted {
                return Err(e);
            }
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// A nonblocking eventfd: any thread can [`wake`](EventFd::wake) the
/// reactor out of its `epoll_wait`; the reactor [`drain`](EventFd::drain)s
/// it back to zero on each wakeup.
pub struct EventFd {
    fd: RawFd,
}

impl EventFd {
    pub fn new() -> io::Result<EventFd> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        Ok(EventFd { fd })
    }

    pub fn fd(&self) -> RawFd {
        self.fd
    }

    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe { write(self.fd, &one as *const u64 as *const c_void, 8) };
    }

    pub fn drain(&self) {
        let mut buf: u64 = 0;
        unsafe { read(self.fd, &mut buf as *mut u64 as *mut c_void, 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        unsafe { close(self.fd) };
    }
}

/// A read-only private mapping of the first `len` bytes of a file.
/// Zero-length maps are represented without a kernel mapping (mmap
/// rejects `length == 0`).
pub struct Mmap {
    ptr: *mut c_void,
    len: usize,
}

// The mapping is read-only and owned: sharing &Mmap across threads is
// no different from sharing &[u8].
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    pub fn map(file: &std::fs::File, len: usize) -> io::Result<Mmap> {
        if len == 0 {
            return Ok(Mmap { ptr: std::ptr::null_mut(), len: 0 });
        }
        use std::os::fd::AsRawFd;
        let ptr =
            unsafe { mmap(std::ptr::null_mut(), len, PROT_READ, MAP_PRIVATE, file.as_raw_fd(), 0) };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap { ptr, len })
    }

    pub fn as_slice(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        if self.len != 0 {
            unsafe { munmap(self.ptr, self.len) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_reports_readable_sockets() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(listener.as_raw_fd(), EPOLLIN, 7).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 8];
        // Nothing pending yet: a zero-timeout wait returns empty.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        let mut c = TcpStream::connect(addr).unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 7);
        assert!({ events[0].events } & EPOLLIN != 0);
        // Accept, register the server side, and see client bytes arrive.
        let (srv, _) = listener.accept().unwrap();
        ep.add(srv.as_raw_fd(), EPOLLIN, 9).unwrap();
        c.write_all(b"hi").unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert!(n >= 1);
        assert!((0..n).any(|i| events[i].data == 9));
        ep.del(srv.as_raw_fd()).unwrap();
    }

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.fd(), EPOLLIN, 1).unwrap();
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
        ev.wake();
        ev.wake();
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
        ev.drain();
        // Drained: level-triggered interest goes quiet again.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn mmap_reads_file_contents_zero_copy() {
        let path = std::env::temp_dir().join(format!("svserve-mmap-{}", std::process::id()));
        std::fs::write(&path, b"svserve mmap test payload").unwrap();
        let f = std::fs::File::open(&path).unwrap();
        let len = f.metadata().unwrap().len() as usize;
        let m = Mmap::map(&f, len).unwrap();
        assert_eq!(m.as_slice(), b"svserve mmap test payload");
        let empty = Mmap::map(&f, 0).unwrap();
        assert!(empty.as_slice().is_empty());
        drop(m);
        let _ = std::fs::remove_file(&path);
    }
}
