//! Length-prefixed binary framing (`proto::bin`).
//!
//! The JSON protocol re-serialises trees that svpack v2 already stores
//! columnar; this framing carries those bytes verbatim.  A frame is a
//! `u32` little-endian payload length followed by the payload; payloads
//! above [`MAX_FRAME`] are rejected with `frame_too_large` **before**
//! buffering (the length prefix is read first), and — unlike the JSON
//! listener's newline resync — an oversized or corrupt length prefix is
//! unrecoverable, so the connection is closed after the error reply.
//!
//! Payload layout (all integers little-endian, varints as in
//! `svtree::pack`):
//!
//! ```text
//! request  := 0x00 id:u64 method:str trace params:json blobs
//! response := 0x01 id:(0x00 | 0x01 u64) ok:u8
//!             ok=1 → result:json blobs
//!             ok=0 → code:str message:str
//! str      := varint-length bytes (UTF-8)
//! trace    := 0x00 | 0x01 trace_id:u64 parent:u64 sampled:u8
//! blobs    := varint-count (varint-length bytes)*
//! json     := 0x00                        null
//!           | 0x01 | 0x02                 false | true
//!           | 0x03 f64-le                 number
//!           | 0x04 str                    string
//!           | 0x05 varint-count json*     array
//!           | 0x06 varint-count (str json)*  object
//! ```
//!
//! Blobs ride out-of-band after the JSON value so svpack bytes never
//! pass through a string encoding; the JSON compat listener carries the
//! same bytes hex-encoded under `svpack_hex` instead.

use crate::proto::{Request, ServeError, MAX_FRAME};
use crate::svjson::Json;
use std::io::{self, Read};
use svtrace::TraceCtx;
use svtree::pack::{read_varint, write_varint};

const KIND_REQUEST: u8 = 0;
const KIND_RESPONSE: u8 = 1;

/// Nesting bound for decoded JSON values (a hostile frame must not
/// recurse the decoder off the stack).
const MAX_DEPTH: usize = 200;

// ---------------------------------------------------------------- helpers

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], ServeError> {
    let end = pos.checked_add(n).filter(|&e| e <= buf.len());
    match end {
        Some(end) => {
            let s = &buf[*pos..end];
            *pos = end;
            Ok(s)
        }
        None => Err(ServeError::parse("truncated binary frame")),
    }
}

fn read_u8(buf: &[u8], pos: &mut usize) -> Result<u8, ServeError> {
    Ok(take(buf, pos, 1)?[0])
}

fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64, ServeError> {
    let b = take(buf, pos, 8)?;
    Ok(u64::from_le_bytes(b.try_into().unwrap()))
}

fn read_len(buf: &[u8], pos: &mut usize) -> Result<usize, ServeError> {
    let v = read_varint(buf, pos).map_err(|e| ServeError::parse(e.to_string()))?;
    let v = usize::try_from(v).map_err(|_| ServeError::parse("length overflows usize"))?;
    // A single length can never exceed what the frame still holds — this
    // bounds every allocation below by the (already MAX_FRAME-checked)
    // frame size, even for corrupt frames.
    if v > buf.len() - *pos {
        return Err(ServeError::parse("length runs past the frame"));
    }
    Ok(v)
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_str(buf: &[u8], pos: &mut usize) -> Result<String, ServeError> {
    let n = read_len(buf, pos)?;
    let b = take(buf, pos, n)?;
    String::from_utf8(b.to_vec()).map_err(|_| ServeError::parse("string is not UTF-8"))
}

// ------------------------------------------------------------- json codec

fn write_json(out: &mut Vec<u8>, v: &Json) {
    match v {
        Json::Null => out.push(0),
        Json::Bool(false) => out.push(1),
        Json::Bool(true) => out.push(2),
        Json::Num(n) => {
            out.push(3);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Json::Str(s) => {
            out.push(4);
            write_str(out, s);
        }
        Json::Array(a) => {
            out.push(5);
            write_varint(out, a.len() as u64);
            for item in a {
                write_json(out, item);
            }
        }
        Json::Object(o) => {
            out.push(6);
            write_varint(out, o.len() as u64);
            for (k, val) in o {
                write_str(out, k);
                write_json(out, val);
            }
        }
    }
}

fn read_json(buf: &[u8], pos: &mut usize, depth: usize) -> Result<Json, ServeError> {
    if depth > MAX_DEPTH {
        return Err(ServeError::parse("value nests too deeply"));
    }
    match read_u8(buf, pos)? {
        0 => Ok(Json::Null),
        1 => Ok(Json::Bool(false)),
        2 => Ok(Json::Bool(true)),
        3 => {
            let b = take(buf, pos, 8)?;
            Ok(Json::Num(f64::from_le_bytes(b.try_into().unwrap())))
        }
        4 => Ok(Json::Str(read_str(buf, pos)?)),
        5 => {
            let n = read_len(buf, pos)?; // items are ≥1 byte each
            let mut a = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                a.push(read_json(buf, pos, depth + 1)?);
            }
            Ok(Json::Array(a))
        }
        6 => {
            let n = read_len(buf, pos)?;
            let mut o = std::collections::BTreeMap::new();
            for _ in 0..n {
                let k = read_str(buf, pos)?;
                let v = read_json(buf, pos, depth + 1)?;
                o.insert(k, v);
            }
            Ok(Json::Object(o))
        }
        t => Err(ServeError::parse(format!("unknown value tag {t}"))),
    }
}

fn write_blobs(out: &mut Vec<u8>, blobs: &[&[u8]]) {
    write_varint(out, blobs.len() as u64);
    for b in blobs {
        write_varint(out, b.len() as u64);
        out.extend_from_slice(b);
    }
}

fn read_blobs(buf: &[u8], pos: &mut usize) -> Result<Vec<Vec<u8>>, ServeError> {
    let n = read_len(buf, pos)?; // blobs are ≥1 byte of length each
    let mut out = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let len = read_len(buf, pos)?;
        out.push(take(buf, pos, len)?.to_vec());
    }
    Ok(out)
}

/// Prefix `payload` with its u32 LE length.
fn frame(payload: Vec<u8>) -> Vec<u8> {
    debug_assert!(payload.len() <= u32::MAX as usize);
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

// ------------------------------------------------------------ frame codec

/// Encode a request frame (length prefix included).
pub fn encode_request(req: &Request, blobs: &[&[u8]]) -> Vec<u8> {
    let mut p = vec![KIND_REQUEST];
    p.extend_from_slice(&req.id.to_le_bytes());
    write_str(&mut p, &req.method);
    match &req.trace {
        None => p.push(0),
        Some(ctx) => {
            p.push(1);
            p.extend_from_slice(&ctx.trace_id.to_le_bytes());
            p.extend_from_slice(&ctx.parent_span_id.to_le_bytes());
            p.push(ctx.sampled as u8);
        }
    }
    write_json(&mut p, &req.params);
    write_blobs(&mut p, blobs);
    frame(p)
}

/// Decode a request payload (the frame body after the length prefix).
/// Mirrors `parse_request`'s leniency: a zero trace id degrades to
/// untraced rather than failing the request.
pub fn decode_request(payload: &[u8]) -> Result<(Request, Vec<Vec<u8>>), ServeError> {
    let pos = &mut 0usize;
    if read_u8(payload, pos)? != KIND_REQUEST {
        return Err(ServeError::parse("expected a request frame"));
    }
    let id = read_u64(payload, pos)?;
    let method = read_str(payload, pos)?;
    let trace = match read_u8(payload, pos)? {
        0 => None,
        1 => {
            let trace_id = read_u64(payload, pos)?;
            let parent_span_id = read_u64(payload, pos)?;
            let sampled = read_u8(payload, pos)? != 0;
            (trace_id != 0).then_some(TraceCtx { trace_id, parent_span_id, sampled })
        }
        t => return Err(ServeError::parse(format!("bad trace flag {t}"))),
    };
    let params = read_json(payload, pos, 0)?;
    let blobs = read_blobs(payload, pos)?;
    Ok((Request { id, method, params, trace }, blobs))
}

/// Encode a success response (length prefix included).  `blob` carries
/// svpack bytes verbatim — the binary listener's whole reason to exist.
pub fn encode_response_ok(id: u64, result: &Json, blob: Option<&[u8]>) -> Vec<u8> {
    let mut p = vec![KIND_RESPONSE, 1];
    p.extend_from_slice(&id.to_le_bytes());
    p.push(1);
    write_json(&mut p, result);
    match blob {
        Some(b) => write_blobs(&mut p, &[b]),
        None => write_blobs(&mut p, &[]),
    }
    frame(p)
}

/// Encode an error response; `id` is `None` when the request was too
/// mangled to carry one.
pub fn encode_response_err(id: Option<u64>, err: &ServeError) -> Vec<u8> {
    let mut p = vec![KIND_RESPONSE];
    match id {
        None => p.push(0),
        Some(id) => {
            p.push(1);
            p.extend_from_slice(&id.to_le_bytes());
        }
    }
    p.push(0);
    write_str(&mut p, err.code);
    write_str(&mut p, &err.message);
    frame(p)
}

/// Decode a response payload into `(id, Ok((result, blobs)) | Err(e))`,
/// mapping dynamic wire codes back onto the static set exactly as the
/// JSON `parse_response` does.
#[allow(clippy::type_complexity)]
pub fn decode_response(
    payload: &[u8],
) -> Result<(Option<u64>, Result<(Json, Vec<Vec<u8>>), ServeError>), ServeError> {
    let pos = &mut 0usize;
    if read_u8(payload, pos)? != KIND_RESPONSE {
        return Err(ServeError::parse("expected a response frame"));
    }
    let id = match read_u8(payload, pos)? {
        0 => None,
        1 => Some(read_u64(payload, pos)?),
        t => return Err(ServeError::parse(format!("bad id flag {t}"))),
    };
    match read_u8(payload, pos)? {
        1 => {
            let result = read_json(payload, pos, 0)?;
            let blobs = read_blobs(payload, pos)?;
            Ok((id, Ok((result, blobs))))
        }
        0 => {
            let code = read_str(payload, pos)?;
            let message = read_str(payload, pos)?;
            let code = [
                "parse_error",
                "bad_params",
                "unknown_method",
                "not_found",
                "frame_too_large",
                "shutting_down",
                "io",
                "deadline_exceeded",
                "overloaded",
                "panic",
            ]
            .iter()
            .find(|&&c| c == code)
            .copied()
            .unwrap_or("internal");
            Ok((id, Err(ServeError::new(code, message))))
        }
        t => Err(ServeError::parse(format!("bad ok flag {t}"))),
    }
}

// ------------------------------------------------------- incremental read

/// Incremental frame accumulator — the reactor's parser.  Feed arbitrary
/// byte chunks with [`push`](FrameAccum::push); [`next_frame`]
/// (FrameAccum::next_frame) yields complete payloads.  A length prefix
/// above [`MAX_FRAME`] is a fatal framing error: there is no newline to
/// resync on, so the caller replies `frame_too_large` and closes.
#[derive(Default)]
pub struct FrameAccum {
    buf: Vec<u8>,
}

impl FrameAccum {
    pub fn new() -> FrameAccum {
        FrameAccum::default()
    }

    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (bounded by `4 + MAX_FRAME` plus one read
    /// chunk: oversized prefixes fail before their payload is buffered).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, ServeError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[0..4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(ServeError::frame_too_large());
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(payload))
    }
}

/// One binary read attempt's outcome (the [`crate::proto::FrameRead`]
/// analogue).
#[derive(Debug, PartialEq, Eq)]
pub enum BinRead {
    /// A complete frame payload (length prefix stripped).
    Frame(Vec<u8>),
    /// The length prefix exceeded [`MAX_FRAME`] — the stream cannot be
    /// resynced; close after reporting.
    TooLarge,
    /// The read timed out mid-frame; partial bytes are retained.
    Timeout,
    /// Clean end of stream.
    Eof,
}

/// Blocking incremental reader over any `Read` (the client side; the
/// reactor drives [`FrameAccum`] directly off readiness events).
pub struct BinFrameReader<R: Read> {
    inner: R,
    accum: FrameAccum,
}

impl<R: Read> BinFrameReader<R> {
    pub fn new(inner: R) -> BinFrameReader<R> {
        BinFrameReader { inner, accum: FrameAccum::new() }
    }

    pub fn read_frame(&mut self) -> io::Result<BinRead> {
        let mut chunk = [0u8; 8192];
        loop {
            match self.accum.next_frame() {
                Err(_) => return Ok(BinRead::TooLarge),
                Ok(Some(p)) => return Ok(BinRead::Frame(p)),
                Ok(None) => {}
            }
            match self.inner.read(&mut chunk) {
                Ok(0) => return Ok(BinRead::Eof),
                Ok(n) => self.accum.push(&chunk[..n]),
                Err(e)
                    if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) =>
                {
                    return Ok(BinRead::Timeout)
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

// ------------------------------------------------------------- hex bridge

/// Hex-encode blob bytes for the JSON compat listener's `svpack_hex`.
pub fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        s.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    s
}

/// Decode a [`hex_encode`]d string (`None` on odd length or non-hex).
pub fn hex_decode(s: &str) -> Option<Vec<u8>> {
    let b = s.as_bytes();
    if !b.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(b.len() / 2);
    for pair in b.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push(((hi << 4) | lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, method: &str, params: Json) -> Request {
        Request { id, method: method.to_string(), params, trace: None }
    }

    #[test]
    fn request_roundtrips_with_trace_and_blobs() {
        let mut r = req(
            7,
            "tree",
            Json::obj([("db", Json::str("x")), ("n", Json::Num(2.5)), ("f", Json::Bool(false))]),
        );
        r.trace = Some(TraceCtx { trace_id: u64::MAX - 1, parent_span_id: 42, sampled: true });
        let f = encode_request(&r, &[b"\x00\x01\x02", b""]);
        assert_eq!(u32::from_le_bytes(f[0..4].try_into().unwrap()) as usize, f.len() - 4);
        let (back, blobs) = decode_request(&f[4..]).unwrap();
        assert_eq!(back, r);
        assert_eq!(blobs, vec![b"\x00\x01\x02".to_vec(), Vec::new()]);
    }

    #[test]
    fn zero_trace_id_degrades_to_untraced() {
        let mut r = req(1, "ping", Json::Null);
        r.trace = Some(TraceCtx { trace_id: 0, parent_span_id: 9, sampled: true });
        let f = encode_request(&r, &[]);
        let (back, _) = decode_request(&f[4..]).unwrap();
        assert_eq!(back.trace, None);
    }

    #[test]
    fn response_roundtrips_ok_err_and_null_id() {
        let f = encode_response_ok(3, &Json::str("hi"), Some(b"payload"));
        let (id, res) = decode_response(&f[4..]).unwrap();
        assert_eq!(id, Some(3));
        let (v, blobs) = res.unwrap();
        assert_eq!(v.as_str(), Some("hi"));
        assert_eq!(blobs, vec![b"payload".to_vec()]);

        let f = encode_response_err(Some(4), &ServeError::unknown_method("zap"));
        let (id, res) = decode_response(&f[4..]).unwrap();
        assert_eq!(id, Some(4));
        let e = res.unwrap_err();
        assert_eq!(e.code, "unknown_method");
        assert!(e.message.contains("zap"));

        let f = encode_response_err(None, &ServeError::parse("mangled"));
        let (id, res) = decode_response(&f[4..]).unwrap();
        assert_eq!(id, None);
        assert_eq!(res.unwrap_err().code, "parse_error");
    }

    #[test]
    fn unknown_error_codes_map_to_internal() {
        let f = encode_response_err(Some(1), &ServeError::new("internal", "x"));
        // Rewrite the code in place is fiddly; encode a custom one instead.
        let mut p = vec![1u8, 1];
        p.extend_from_slice(&1u64.to_le_bytes());
        p.push(0);
        write_str(&mut p, "made_up_code");
        write_str(&mut p, "msg");
        let (_, res) = decode_response(&p).unwrap();
        assert_eq!(res.unwrap_err().code, "internal");
        let (_, res) = decode_response(&f[4..]).unwrap();
        assert_eq!(res.unwrap_err().code, "internal");
    }

    #[test]
    fn truncated_and_corrupt_payloads_are_parse_errors() {
        let f = encode_request(&req(9, "ping", Json::Null), &[]);
        for cut in 1..f.len() - 4 {
            let e = decode_request(&f[4..4 + cut]).unwrap_err();
            assert_eq!(e.code, "parse_error", "cut at {cut}");
        }
        assert_eq!(decode_request(&[]).unwrap_err().code, "parse_error");
        assert_eq!(decode_request(&[9]).unwrap_err().code, "parse_error");
        // A length field claiming more bytes than the frame holds must be
        // rejected before allocating.
        let mut p = vec![0u8];
        p.extend_from_slice(&1u64.to_le_bytes());
        write_varint(&mut p, u32::MAX as u64); // method "length"
        assert_eq!(decode_request(&p).unwrap_err().code, "parse_error");
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let mut v = Json::Null;
        for _ in 0..(MAX_DEPTH + 10) {
            v = Json::Array(vec![v]);
        }
        let f = encode_request(&req(1, "m", v), &[]);
        assert_eq!(decode_request(&f[4..]).unwrap_err().code, "parse_error");
    }

    #[test]
    fn accum_handles_partial_and_multiple_frames() {
        let f1 = encode_request(&req(1, "a", Json::Null), &[]);
        let f2 = encode_response_ok(2, &Json::Num(4.0), None);
        let mut bytes = f1.clone();
        bytes.extend_from_slice(&f2);
        let mut acc = FrameAccum::new();
        // Feed one byte at a time: frames appear exactly at their
        // boundaries, never early, never mangled.
        let mut got = Vec::new();
        for b in &bytes {
            acc.push(std::slice::from_ref(b));
            while let Some(p) = acc.next_frame().unwrap() {
                got.push(p);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0], f1[4..].to_vec());
        assert_eq!(got[1], f2[4..].to_vec());
        assert_eq!(acc.buffered(), 0);
    }

    #[test]
    fn oversized_length_prefix_is_fatal() {
        let mut acc = FrameAccum::new();
        acc.push(&((MAX_FRAME as u32) + 1).to_le_bytes());
        assert_eq!(acc.next_frame().unwrap_err().code, "frame_too_large");
        // Exactly MAX_FRAME is fine (frame just isn't complete yet).
        let mut acc = FrameAccum::new();
        acc.push(&(MAX_FRAME as u32).to_le_bytes());
        assert_eq!(acc.next_frame().unwrap(), None);
    }

    #[test]
    fn bin_reader_reads_frames_then_eof() {
        let f1 = encode_response_ok(1, &Json::Null, None);
        let f2 = encode_response_ok(2, &Json::Null, Some(b"xyz"));
        let mut bytes = f1.clone();
        bytes.extend_from_slice(&f2);
        let mut r = BinFrameReader::new(&bytes[..]);
        assert_eq!(r.read_frame().unwrap(), BinRead::Frame(f1[4..].to_vec()));
        assert_eq!(r.read_frame().unwrap(), BinRead::Frame(f2[4..].to_vec()));
        assert_eq!(r.read_frame().unwrap(), BinRead::Eof);
    }

    #[test]
    fn hex_roundtrips() {
        for bytes in [&b""[..], &b"\x00"[..], &b"\xff\x10\x7f svpack"[..]] {
            let h = hex_encode(bytes);
            assert_eq!(hex_decode(&h).unwrap(), bytes);
        }
        assert_eq!(hex_decode("abc"), None);
        assert_eq!(hex_decode("zz"), None);
    }
}

#[cfg(test)]
mod proptests {
    //! Property tests: the codec round-trips arbitrary values, and no
    //! mangled input — truncation, corrupt lengths, random bytes,
    //! arbitrary chunking — can panic the decoder or the accumulator.
    //!
    //! The vendored proptest is generation-only with a small strategy
    //! vocabulary, so arbitrary requests are built the way `lib.rs`'s
    //! tree proptests build trees: a seed tuple mapped through a
    //! deterministic constructor (here a splitmix64 stream).

    use super::*;
    use proptest::prelude::*;

    /// Deterministic value stream for building arbitrary requests.
    struct Gen(u64);

    impl Gen {
        fn next(&mut self) -> u64 {
            // splitmix64 — the seed fans out into a full value stream.
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    /// Arbitrary JSON with finite numbers only (the wire stores raw f64
    /// bits, but `Json` equality on NaN would fail the round-trip check
    /// for reasons that have nothing to do with the codec).
    fn build_json(g: &mut Gen, depth: usize) -> Json {
        let scalar_only = depth == 0;
        match g.below(if scalar_only { 5 } else { 7 }) {
            0 => Json::Null,
            1 => Json::Bool(false),
            2 => Json::Bool(true),
            3 => Json::Num((g.next() as i32 as f64) / 8.0),
            4 => {
                let n = g.below(12) as usize;
                Json::Str((0..n).map(|_| (b'a' + g.below(26) as u8) as char).collect())
            }
            5 => {
                let n = g.below(4) as usize;
                Json::Array((0..n).map(|_| build_json(g, depth - 1)).collect())
            }
            _ => {
                let n = g.below(4) as usize;
                Json::Object(
                    (0..n)
                        .map(|i| {
                            let k = format!("k{}{}", i, g.below(10));
                            (k, build_json(g, depth - 1))
                        })
                        .collect(),
                )
            }
        }
    }

    fn build_request(seed: u64) -> (Request, Vec<Vec<u8>>) {
        let g = &mut Gen(seed);
        let method: String =
            (0..(1 + g.below(12) as usize)).map(|_| (b'a' + g.below(26) as u8) as char).collect();
        let trace = match g.below(3) {
            0 => None,
            _ => Some(TraceCtx {
                trace_id: 1 + g.below(u64::MAX - 1),
                parent_span_id: g.next(),
                sampled: g.below(2) == 1,
            }),
        };
        let params = build_json(g, 3);
        let n_blobs = g.below(3) as usize;
        let blobs = (0..n_blobs)
            .map(|_| {
                let len = g.below(64) as usize;
                (0..len).map(|_| g.next() as u8).collect()
            })
            .collect();
        (Request { id: g.next(), method, params, trace }, blobs)
    }

    fn encode(req: &Request, blobs: &[Vec<u8>]) -> Vec<u8> {
        let refs: Vec<&[u8]> = blobs.iter().map(|b| b.as_slice()).collect();
        encode_request(req, &refs)
    }

    proptest! {
        #[test]
        fn request_roundtrips(seed in any::<u64>()) {
            let (req, blobs) = build_request(seed);
            let f = encode(&req, &blobs);
            prop_assert_eq!(
                u32::from_le_bytes(f[0..4].try_into().unwrap()) as usize,
                f.len() - 4
            );
            let (back, back_blobs) = decode_request(&f[4..]).unwrap();
            prop_assert_eq!(back, req);
            prop_assert_eq!(back_blobs, blobs);
        }

        #[test]
        fn response_roundtrips(seed in any::<u64>(), with_blob in 0u8..2) {
            let g = &mut Gen(seed);
            let id = g.next();
            let result = build_json(g, 3);
            let blob: Option<Vec<u8>> = (with_blob == 1).then(|| {
                (0..g.below(128) as usize).map(|_| g.next() as u8).collect()
            });
            let f = encode_response_ok(id, &result, blob.as_deref());
            let (back_id, res) = decode_response(&f[4..]).unwrap();
            prop_assert_eq!(back_id, Some(id));
            let (v, blobs) = res.unwrap();
            prop_assert_eq!(v, result);
            prop_assert_eq!(blobs, blob.into_iter().collect::<Vec<_>>());
        }

        #[test]
        fn truncation_is_always_a_clean_parse_error(
            seed in any::<u64>(),
            frac in 0.0f64..1.0,
        ) {
            let (req, blobs) = build_request(seed);
            let f = encode(&req, &blobs);
            let payload = &f[4..];
            let cut = ((payload.len() as f64) * frac) as usize;
            if cut < payload.len() {
                // Any strict prefix must fail cleanly — never panic, never
                // succeed on a short read (every field is length-checked,
                // and the decoder consumes exactly the encoded length).
                let e = decode_request(&payload[..cut]).unwrap_err();
                prop_assert_eq!(e.code, "parse_error");
            }
        }

        #[test]
        fn random_bytes_never_panic_the_decoders(
            bytes in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let _ = decode_request(&bytes);
            let _ = decode_response(&bytes);
        }

        #[test]
        fn corrupt_bytes_never_panic_or_over_allocate(
            seed in any::<u64>(),
            at in 0.0f64..1.0,
            flip in 1u8..255,
        ) {
            // Flip one payload byte: the decoder must reject or decode
            // without huge allocations or panics (every length field is
            // bounded by the remaining frame before any allocation).
            let (req, blobs) = build_request(seed);
            let f = encode(&req, &blobs);
            let mut payload = f[4..].to_vec();
            let i = ((payload.len() as f64) * at) as usize;
            let i = i.min(payload.len() - 1);
            payload[i] ^= flip;
            let _ = decode_request(&payload);
        }

        #[test]
        fn accum_reassembles_frames_under_arbitrary_chunking(
            seed in any::<u64>(),
            n_frames in 1usize..4,
            cuts in proptest::collection::vec(1usize..32, 1..16),
        ) {
            // Interleaved partial reads: concatenate several frames, then
            // feed the stream in arbitrary-sized chunks (cycling through
            // `cuts`) the way the reactor's readiness loop would see them.
            let mut stream = Vec::new();
            let mut want = Vec::new();
            for k in 0..n_frames {
                let (req, blobs) = build_request(seed.wrapping_add(k as u64));
                let f = encode(&req, &blobs);
                want.push(f[4..].to_vec());
                stream.extend_from_slice(&f);
            }
            let mut acc = FrameAccum::new();
            let mut got = Vec::new();
            let mut pos = 0;
            let mut ci = 0;
            while pos < stream.len() {
                let n = cuts[ci % cuts.len()].min(stream.len() - pos);
                ci += 1;
                acc.push(&stream[pos..pos + n]);
                pos += n;
                while let Some(p) = acc.next_frame().unwrap() {
                    got.push(p);
                }
            }
            prop_assert_eq!(got, want);
            prop_assert_eq!(acc.buffered(), 0);
        }
    }
}
