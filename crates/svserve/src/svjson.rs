//! Minimal JSON parser and writer (from scratch; `serde_json` is not on
//! the approved dependency list).
//!
//! Covers the full JSON grammar — objects, arrays, strings with escapes
//! (including `\uXXXX`), numbers, booleans, null — which is everything a
//! `compile_commands.json` or an analysis-service frame ever contains.
//! Originally part of `silvervale` (which re-exports it for
//! compatibility); it moved here when the serve protocol made it the
//! wire format.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Json>),
    /// Object with insertion-stable (sorted) keys.
    Object(BTreeMap<String, Json>),
}

impl Json {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(o) => o.get(key),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value as a non-negative integer (request ids, counters).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Build an object from key/value pairs — the protocol's frame builder.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String value constructor (saves `.to_string()` noise at call sites).
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serialise to a compact JSON string.
    pub fn to_string_compact(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{}", *v as i64));
                } else {
                    out.push_str(&format!("{v}"));
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    it.write(out);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON parse error with byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a JSON document.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = P { b: text.as_bytes(), i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing content"));
    }
    Ok(v)
}

struct P<'a> {
    b: &'a [u8],
    i: usize,
}

impl P<'_> {
    fn err(&self, m: impl Into<String>) -> JsonError {
        JsonError { offset: self.i, message: m.into() }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.ws();
                if self.eat(b']') {
                    return Ok(Json::Array(items));
                }
                loop {
                    self.ws();
                    items.push(self.value()?);
                    self.ws();
                    if self.eat(b']') {
                        return Ok(Json::Array(items));
                    }
                    self.expect(b',')?;
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut map = BTreeMap::new();
                self.ws();
                if self.eat(b'}') {
                    return Ok(Json::Object(map));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.ws();
                    self.expect(b':')?;
                    self.ws();
                    let v = self.value()?;
                    map.insert(key, v);
                    self.ws();
                    if self.eat(b'}') {
                        return Ok(Json::Object(map));
                    }
                    self.expect(b',')?;
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let c = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.i += 1;
            match c {
                b'"' => return Ok(s),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.i += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err(self.err("bad \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.i += 4;
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(self.err(format!("bad escape \\{}", other as char))),
                    }
                }
                c => {
                    // Collect the full UTF-8 sequence starting at c.
                    if c < 0x80 {
                        s.push(c as char);
                    } else {
                        let start = self.i - 1;
                        let len = if c >= 0xf0 {
                            4
                        } else if c >= 0xe0 {
                            3
                        } else {
                            2
                        };
                        let end = (start + len).min(self.b.len());
                        let chunk = std::str::from_utf8(&self.b[start..end])
                            .map_err(|_| self.err("invalid utf-8"))?;
                        s.push_str(chunk);
                        self.i = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        self.eat(b'-');
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.eat(b'.') {
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parse_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\n\t\"\\Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\t\"\\Aé"));
    }

    #[test]
    fn utf8_passthrough() {
        let v = parse("\"héllo — ok\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo — ok"));
    }

    #[test]
    fn errors_reported() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} garbage").is_err());
    }

    #[test]
    fn roundtrip() {
        let src = r#"{"arguments":["clang","-DUSE_OMP","-o","x.o"],"directory":"/src","file":"a.cpp","n":3}"#;
        let v = parse(src).unwrap();
        let out = v.to_string_compact();
        assert_eq!(parse(&out).unwrap(), v);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Json::Object(BTreeMap::new()));
        assert_eq!(parse("[ ]").unwrap(), Json::Array(vec![]));
    }
}
