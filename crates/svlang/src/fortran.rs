//! Miniature free-form Fortran frontend.
//!
//! Covers the constructs the BabelStream Fortran ports use (Hammond et al.,
//! PMBS'22): program units, modules with `contains`, subroutines/functions,
//! `implicit none`, typed declarations with `allocatable`/`parameter`
//! attributes, `allocate`/`deallocate`, `do` loops, `do concurrent`,
//! whole-array assignments and sections, intrinsic calls, and the
//! `!$omp` / `!$acc` directive sentinels.
//!
//! The GCC artefact the paper reports for Fortran OpenACC — "the OpenACC
//! model, including the array variant, did not introduce extra tokens
//! related to parallelism … consistent with the single-threaded performance
//! … a possible quality of implementation issue in GCC" — is modelled
//! here: during semantic emission, `!$acc` directives collapse to a single
//! degenerate leaf while `!$omp` directives expand to full directive +
//! clause subtrees, mirroring what GFortran 13's GIMPLE actually contains.
//!
//! The frontend reuses the shared [`crate::lex::Token`] vocabulary,
//! so the generic CST builder ([`crate::cst`]) and line measures
//! ([`crate::measure`]) work on Fortran token streams unchanged.

use crate::ast::{Clause, Pragma};
use crate::lex::{TokKind, Token};
use crate::parse::parse_pragma;
use crate::source::{FileId, LangError, Loc, Result};
use std::sync::Arc;
use svtree::{Interner, Span, Tree, TreeBuilder};

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

const F_PUNCTS: &[&str] = &[
    "::", "=>", "**", "/=", "==", "<=", ">=", "(", ")", ",", "+", "-", "*", "/", "<", ">", "=",
    ":", "%", ";",
];

/// Tokenise free-form Fortran.  Identifiers are lower-cased (Fortran is
/// case-insensitive); `!` comments are stripped except `!$omp` / `!$acc`
/// sentinels, which become [`TokKind::Pragma`] tokens; `&` continuations
/// join logical lines; every statement boundary emits a
/// [`TokKind::Newline`].
pub fn lex_fortran(text: &str, file: FileId, path: &str) -> Result<Vec<Token>> {
    let mut out: Vec<Token> = Vec::new();
    let mut continuation = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line_num = (lineno + 1) as u32;
        let loc = Loc::new(file, line_num);
        let mut s = raw.trim();

        // Directive sentinel?
        let lower = s.to_ascii_lowercase();
        if lower.starts_with("!$omp") || lower.starts_with("!$acc") {
            // Close any statement still open from the previous line.
            if !matches!(out.last().map(|t| &t.kind), Some(TokKind::Newline) | None) {
                out.push(Token::new(TokKind::Newline, loc));
            }
            let domain = &lower[2..5];
            let content = &s[5..];
            let mut inner = lex_fortran_tokens(content, loc, path)?;
            // prepend the domain ident so parse_pragma sees `omp …`.
            inner.insert(0, Token::new(TokKind::Ident(domain.to_string()), loc));
            out.push(Token::new(TokKind::Pragma(inner), loc));
            out.push(Token::new(TokKind::Newline, loc));
            continue;
        }
        // Plain comment line or inline comment.
        if let Some(p) = find_comment_start(s) {
            s = s[..p].trim_end();
        }
        if s.is_empty() {
            continue;
        }
        // Continuation: previous line ended with '&'.
        let had_continuation = continuation;
        continuation = s.ends_with('&');
        let body = s.trim_end_matches('&').trim_end();
        if !had_continuation && !out.is_empty() {
            // close the previous statement (no-op if already closed)
            if !matches!(out.last().map(|t| &t.kind), Some(TokKind::Newline)) {
                out.push(Token::new(TokKind::Newline, loc));
            }
        }
        let toks = lex_fortran_tokens(body, loc, path)?;
        out.extend(toks);
    }
    if !matches!(out.last().map(|t| &t.kind), Some(TokKind::Newline)) && !out.is_empty() {
        let last_loc = out.last().unwrap().loc;
        out.push(Token::new(TokKind::Newline, last_loc));
    }
    Ok(out)
}

fn find_comment_start(s: &str) -> Option<usize> {
    let b = s.as_bytes();
    let mut in_str: Option<u8> = None;
    for (i, &c) in b.iter().enumerate() {
        match in_str {
            Some(q) => {
                if c == q {
                    in_str = None;
                }
            }
            None => match c {
                b'\'' | b'"' => in_str = Some(c),
                b'!' => return Some(i),
                _ => {}
            },
        }
    }
    None
}

fn lex_fortran_tokens(s: &str, loc: Loc, path: &str) -> Result<Vec<Token>> {
    let b = s.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    'outer: while i < b.len() {
        let c = b[i];
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == b'\'' || c == b'"' {
            let q = c;
            let mut j = i + 1;
            let mut text = String::new();
            while j < b.len() && b[j] != q {
                text.push(b[j] as char);
                j += 1;
            }
            if j >= b.len() {
                return Err(LangError::new(path, loc.line, "unterminated string"));
            }
            out.push(Token::new(TokKind::Str(text), loc));
            i = j + 1;
            continue;
        }
        if c.is_ascii_digit() || (c == b'.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())) {
            // number: digits [. digits] [ (e|d) [sign] digits ] [_kind]
            let start = i;
            let mut is_real = false;
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
            if i < b.len()
                && b[i] == b'.'
                && !matches!(b.get(i + 1), Some(b'a'..=b'z') | Some(b'A'..=b'Z'))
            {
                is_real = true;
                i += 1;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
            }
            let mut text: String = s[start..i].to_string();
            if i < b.len() && matches!(b[i], b'e' | b'E' | b'd' | b'D') {
                let mut j = i + 1;
                if j < b.len() && matches!(b[j], b'+' | b'-') {
                    j += 1;
                }
                if j < b.len() && b[j].is_ascii_digit() {
                    is_real = true;
                    text.push('e'); // d-exponent normalises to e
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_digit() || matches!(b[i], b'+' | b'-')) {
                        text.push(b[i] as char);
                        i += 1;
                    }
                }
            }
            // kind suffix `_8` etc.
            if i < b.len() && b[i] == b'_' {
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
            }
            if is_real {
                let v: f64 =
                    text.parse().map_err(|_| LangError::new(path, loc.line, "bad real literal"))?;
                out.push(Token::new(TokKind::Real(v), loc));
            } else {
                let v: i64 =
                    text.parse().map_err(|_| LangError::new(path, loc.line, "bad int literal"))?;
                out.push(Token::new(TokKind::Int(v), loc));
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            let id = s[start..i].to_ascii_lowercase();
            // `.and.`-style logical operators
            out.push(Token::new(TokKind::Ident(id), loc));
            continue;
        }
        if c == b'.' {
            // .and. .or. .not. .true. .false. .eq. etc.
            if let Some(end) = s[i + 1..].find('.') {
                let word = s[i + 1..i + 1 + end].to_ascii_lowercase();
                if word.chars().all(|ch| ch.is_ascii_alphabetic()) && !word.is_empty() {
                    let mapped: Option<TokKind> = match word.as_str() {
                        "and" => Some(TokKind::Punct("&&")),
                        "or" => Some(TokKind::Punct("||")),
                        "not" => Some(TokKind::Punct("!")),
                        "eq" => Some(TokKind::Punct("==")),
                        "ne" => Some(TokKind::Punct("!=")),
                        "lt" => Some(TokKind::Punct("<")),
                        "le" => Some(TokKind::Punct("<=")),
                        "gt" => Some(TokKind::Punct(">")),
                        "ge" => Some(TokKind::Punct(">=")),
                        "true" => Some(TokKind::Ident("true".into())),
                        "false" => Some(TokKind::Ident("false".into())),
                        _ => None,
                    };
                    if let Some(kind) = mapped {
                        out.push(Token::new(kind, loc));
                        i += end + 2;
                        continue 'outer;
                    }
                }
            }
            return Err(LangError::new(path, loc.line, "unexpected '.'"));
        }
        for p in F_PUNCTS {
            if s[i..].starts_with(p) {
                out.push(Token::new(TokKind::Punct(p), loc));
                i += p.len();
                continue 'outer;
            }
        }
        return Err(LangError::new(
            path,
            loc.line,
            format!("unexpected character '{}'", c as char),
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------------

/// A Fortran compilation unit: the ordered list of program units.
#[derive(Debug, Clone, PartialEq)]
pub struct FProgram {
    pub file: FileId,
    pub units: Vec<FUnit>,
}

/// Kinds of program unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FUnitKind {
    Program,
    Module,
    Subroutine,
    Function,
}

/// One program unit.
#[derive(Debug, Clone, PartialEq)]
pub struct FUnit {
    pub kind: FUnitKind,
    pub name: String,
    pub params: Vec<String>,
    pub body: Vec<FStmt>,
    /// `contains`-nested units (for modules and host programs).
    pub contained: Vec<FUnit>,
    pub line: u32,
    pub end_line: u32,
}

/// Fortran scalar base types.
#[derive(Debug, Clone, PartialEq)]
pub enum FType {
    Integer { kind: Option<i64> },
    Real { kind: Option<i64> },
    Logical,
    Character,
}

impl FType {
    fn label(&self) -> String {
        match self {
            FType::Integer { kind: Some(k) } => format!("integer({k})"),
            FType::Integer { kind: None } => "integer".into(),
            FType::Real { kind: Some(k) } => format!("real({k})"),
            FType::Real { kind: None } => "real".into(),
            FType::Logical => "logical".into(),
            FType::Character => "character".into(),
        }
    }
}

/// One declared entity: name plus array spec (None dim = `:` deferred).
#[derive(Debug, Clone, PartialEq)]
pub struct FEntity {
    pub name: String,
    pub dims: Vec<Option<FExpr>>,
    pub init: Option<FExpr>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum FStmt {
    Use {
        module: String,
        line: u32,
    },
    ImplicitNone {
        line: u32,
    },
    Decl {
        ty: FType,
        attrs: Vec<String>,
        entities: Vec<FEntity>,
        line: u32,
    },
    Assign {
        lhs: FExpr,
        rhs: FExpr,
        line: u32,
    },
    Do {
        var: String,
        lo: FExpr,
        hi: FExpr,
        body: Vec<FStmt>,
        line: u32,
        end_line: u32,
    },
    DoConcurrent {
        var: String,
        lo: FExpr,
        hi: FExpr,
        body: Vec<FStmt>,
        line: u32,
        end_line: u32,
    },
    If {
        cond: FExpr,
        then_body: Vec<FStmt>,
        else_body: Vec<FStmt>,
        line: u32,
    },
    Call {
        name: String,
        args: Vec<FExpr>,
        line: u32,
    },
    Allocate {
        items: Vec<FExpr>,
        line: u32,
    },
    Deallocate {
        items: Vec<FExpr>,
        line: u32,
    },
    Print {
        args: Vec<FExpr>,
        line: u32,
    },
    Stop {
        line: u32,
    },
    Return {
        line: u32,
    },
    Exit {
        line: u32,
    },
    Cycle {
        line: u32,
    },
    /// `!$omp …` / `!$acc …` directive (region begin or end).
    Directive {
        dir: Pragma,
        line: u32,
    },
}

impl FStmt {
    pub fn line(&self) -> u32 {
        match self {
            FStmt::Use { line, .. }
            | FStmt::ImplicitNone { line }
            | FStmt::Decl { line, .. }
            | FStmt::Assign { line, .. }
            | FStmt::Do { line, .. }
            | FStmt::DoConcurrent { line, .. }
            | FStmt::If { line, .. }
            | FStmt::Call { line, .. }
            | FStmt::Allocate { line, .. }
            | FStmt::Deallocate { line, .. }
            | FStmt::Print { line, .. }
            | FStmt::Stop { line }
            | FStmt::Return { line }
            | FStmt::Exit { line }
            | FStmt::Cycle { line }
            | FStmt::Directive { line, .. } => *line,
        }
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum FExpr {
    Int(i64),
    Real(f64),
    Str(String),
    Bool(bool),
    Var(String),
    /// `name(args)` — array element, array section, or function reference;
    /// resolution happens at emission using declaration info.
    ParenRef {
        name: String,
        args: Vec<FExpr>,
    },
    /// `lo:hi` array section bound pair (either side optional).
    Section {
        lo: Option<Box<FExpr>>,
        hi: Option<Box<FExpr>>,
    },
    Unary {
        op: &'static str,
        expr: Box<FExpr>,
    },
    Binary {
        op: &'static str,
        lhs: Box<FExpr>,
        rhs: Box<FExpr>,
    },
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parse a Fortran source file.
pub fn parse_fortran(text: &str, file: FileId, path: &str) -> Result<FProgram> {
    let toks = lex_fortran(text, file, path)?;
    let mut p = FParser { toks, pos: 0, path, file };
    let mut units = Vec::new();
    p.skip_newlines();
    while !p.at_end() {
        units.push(p.unit()?);
        p.skip_newlines();
    }
    Ok(FProgram { file, units })
}

struct FParser<'a> {
    toks: Vec<Token>,
    pos: usize,
    path: &'a str,
    file: FileId,
}

impl FParser<'_> {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&TokKind> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn peek_ident(&self) -> Option<&str> {
        self.peek().and_then(|k| k.ident())
    }

    fn line(&self) -> u32 {
        self.toks.get(self.pos).or_else(|| self.toks.last()).map(|t| t.loc.line).unwrap_or(0)
    }

    fn err(&self, msg: impl Into<String>) -> LangError {
        LangError::new(self.path, self.line(), msg)
    }

    fn is_punct(&self, p: &str) -> bool {
        self.peek().is_some_and(|k| k.is_punct(p))
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.is_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{p}'")))
        }
    }

    fn eat_ident(&mut self, id: &str) -> bool {
        if self.peek_ident() == Some(id) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(TokKind::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err("expected identifier")),
        }
    }

    fn skip_newlines(&mut self) {
        while matches!(self.peek(), Some(TokKind::Newline)) {
            self.pos += 1;
        }
    }

    fn end_of_stmt(&mut self) -> Result<()> {
        match self.peek() {
            None | Some(TokKind::Newline) => {
                if !self.at_end() {
                    self.pos += 1;
                }
                Ok(())
            }
            Some(TokKind::Punct(";")) => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err("expected end of statement")),
        }
    }

    // -- units ----------------------------------------------------------

    fn unit(&mut self) -> Result<FUnit> {
        let line = self.line();
        let kind = match self.peek_ident() {
            Some("program") => FUnitKind::Program,
            Some("module") => FUnitKind::Module,
            Some("subroutine") => FUnitKind::Subroutine,
            Some("function") => FUnitKind::Function,
            other => return Err(self.err(format!("expected program unit, found {other:?}"))),
        };
        self.pos += 1;
        let name = self.ident()?;
        let mut params = Vec::new();
        if self.eat_punct("(") {
            if !self.is_punct(")") {
                loop {
                    params.push(self.ident()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
            }
            self.expect_punct(")")?;
            // `result(r)` suffix
            if self.eat_ident("result") {
                self.expect_punct("(")?;
                let _ = self.ident()?;
                self.expect_punct(")")?;
            }
        }
        self.end_of_stmt()?;

        let mut body = Vec::new();
        let mut contained = Vec::new();
        loop {
            self.skip_newlines();
            if self.at_end() {
                return Err(self.err("unterminated program unit"));
            }
            if self.peek_ident() == Some("contains") {
                self.pos += 1;
                self.end_of_stmt()?;
                loop {
                    self.skip_newlines();
                    if self.peek_ident() == Some("end") {
                        break;
                    }
                    contained.push(self.unit()?);
                }
            }
            if self.peek_ident() == Some("end") {
                // `end` / `end program name` / `end subroutine` …
                let end_line = self.line();
                self.pos += 1;
                while matches!(self.peek(), Some(TokKind::Ident(_))) {
                    self.pos += 1;
                }
                self.end_of_stmt()?;
                return Ok(FUnit { kind, name, params, body, contained, line, end_line });
            }
            body.push(self.stmt()?);
        }
    }

    // -- statements -------------------------------------------------------

    fn stmt(&mut self) -> Result<FStmt> {
        let line = self.line();
        if let Some(TokKind::Pragma(inner)) = self.peek() {
            let inner = inner.clone();
            self.pos += 1;
            self.end_of_stmt()?;
            // Fortran directive words include `do`; patch the shared C
            // pragma parser's output for the Fortran spelling.
            let mut dir = parse_pragma(&inner, self.file, line, self.path)?;
            fixup_fortran_directive(&mut dir);
            return Ok(FStmt::Directive { dir, line });
        }
        match self.peek_ident() {
            Some("use") => {
                self.pos += 1;
                let module = self.ident()?;
                self.end_of_stmt()?;
                return Ok(FStmt::Use { module, line });
            }
            Some("implicit") => {
                self.pos += 1;
                if !self.eat_ident("none") {
                    return Err(self.err("expected 'none' after implicit"));
                }
                self.end_of_stmt()?;
                return Ok(FStmt::ImplicitNone { line });
            }
            Some("integer") | Some("real") | Some("logical") | Some("character") => {
                return self.decl_stmt();
            }
            Some("do") => return self.do_stmt(),
            Some("if") => return self.if_stmt(),
            Some("call") => {
                self.pos += 1;
                let name = self.ident()?;
                let mut args = Vec::new();
                if self.eat_punct("(") {
                    if !self.is_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                    }
                    self.expect_punct(")")?;
                }
                self.end_of_stmt()?;
                return Ok(FStmt::Call { name, args, line });
            }
            Some("allocate") | Some("deallocate") => {
                let dealloc = self.peek_ident() == Some("deallocate");
                self.pos += 1;
                self.expect_punct("(")?;
                let mut items = Vec::new();
                loop {
                    items.push(self.expr()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(")")?;
                self.end_of_stmt()?;
                return Ok(if dealloc {
                    FStmt::Deallocate { items, line }
                } else {
                    FStmt::Allocate { items, line }
                });
            }
            Some("print") => {
                self.pos += 1;
                self.expect_punct("*")?;
                let mut args = Vec::new();
                while self.eat_punct(",") {
                    args.push(self.expr()?);
                }
                self.end_of_stmt()?;
                return Ok(FStmt::Print { args, line });
            }
            Some("stop") => {
                self.pos += 1;
                // optional stop code
                if !matches!(self.peek(), None | Some(TokKind::Newline)) {
                    self.pos += 1;
                }
                self.end_of_stmt()?;
                return Ok(FStmt::Stop { line });
            }
            Some("return") => {
                self.pos += 1;
                self.end_of_stmt()?;
                return Ok(FStmt::Return { line });
            }
            Some("exit") => {
                self.pos += 1;
                self.end_of_stmt()?;
                return Ok(FStmt::Exit { line });
            }
            Some("cycle") => {
                self.pos += 1;
                self.end_of_stmt()?;
                return Ok(FStmt::Cycle { line });
            }
            _ => {}
        }
        // Assignment: lhs = rhs
        let lhs = self.expr()?;
        self.expect_punct("=")?;
        let rhs = self.expr()?;
        self.end_of_stmt()?;
        Ok(FStmt::Assign { lhs, rhs, line })
    }

    fn decl_stmt(&mut self) -> Result<FStmt> {
        let line = self.line();
        let base = self.ident()?;
        let kind = if self.eat_punct("(") {
            // real(8) or real(kind=8)
            if self.eat_ident("kind") {
                self.expect_punct("=")?;
            }
            let v = match self.peek() {
                Some(TokKind::Int(v)) => {
                    let v = *v;
                    self.pos += 1;
                    Some(v)
                }
                _ => return Err(self.err("expected kind value")),
            };
            self.expect_punct(")")?;
            v
        } else {
            None
        };
        let ty = match base.as_str() {
            "integer" => FType::Integer { kind },
            "real" => FType::Real { kind },
            "logical" => FType::Logical,
            "character" => FType::Character,
            _ => unreachable!(),
        };
        let mut attrs = Vec::new();
        while self.eat_punct(",") {
            let a = self.ident()?;
            if a == "intent" {
                self.expect_punct("(")?;
                let dir = self.ident()?;
                self.expect_punct(")")?;
                attrs.push(format!("intent({dir})"));
            } else {
                attrs.push(a);
            }
        }
        self.expect_punct("::")?;
        let mut entities = Vec::new();
        loop {
            let name = self.ident()?;
            let mut dims = Vec::new();
            if self.eat_punct("(") {
                loop {
                    if self.is_punct(":") {
                        self.pos += 1;
                        dims.push(None);
                    } else {
                        dims.push(Some(self.expr()?));
                    }
                    if !self.eat_punct(",") {
                        break;
                    }
                }
                self.expect_punct(")")?;
            }
            let init = if self.eat_punct("=") { Some(self.expr()?) } else { None };
            entities.push(FEntity { name, dims, init });
            if !self.eat_punct(",") {
                break;
            }
        }
        self.end_of_stmt()?;
        Ok(FStmt::Decl { ty, attrs, entities, line })
    }

    fn do_stmt(&mut self) -> Result<FStmt> {
        let line = self.line();
        self.pos += 1; // do
        if self.eat_ident("concurrent") {
            // do concurrent (i = 1:n)
            self.expect_punct("(")?;
            let var = self.ident()?;
            self.expect_punct("=")?;
            let lo = self.expr_no_section()?;
            self.expect_punct(":")?;
            let hi = self.expr_no_section()?;
            self.expect_punct(")")?;
            self.end_of_stmt()?;
            let (body, end_line) = self.loop_body()?;
            return Ok(FStmt::DoConcurrent { var, lo, hi, body, line, end_line });
        }
        let var = self.ident()?;
        self.expect_punct("=")?;
        let lo = self.expr()?;
        self.expect_punct(",")?;
        let hi = self.expr()?;
        // optional stride
        if self.eat_punct(",") {
            let _ = self.expr()?;
        }
        self.end_of_stmt()?;
        let (body, end_line) = self.loop_body()?;
        Ok(FStmt::Do { var, lo, hi, body, line, end_line })
    }

    fn loop_body(&mut self) -> Result<(Vec<FStmt>, u32)> {
        let mut body = Vec::new();
        loop {
            self.skip_newlines();
            if self.at_end() {
                return Err(self.err("unterminated do loop"));
            }
            if self.peek_ident() == Some("end") {
                let end_line = self.line();
                self.pos += 1;
                if !self.eat_ident("do") {
                    return Err(self.err("expected 'end do'"));
                }
                self.end_of_stmt()?;
                return Ok((body, end_line));
            }
            // `enddo` single token
            if self.peek_ident() == Some("enddo") {
                let end_line = self.line();
                self.pos += 1;
                self.end_of_stmt()?;
                return Ok((body, end_line));
            }
            body.push(self.stmt()?);
        }
    }

    fn if_stmt(&mut self) -> Result<FStmt> {
        let line = self.line();
        self.pos += 1; // if
        self.expect_punct("(")?;
        let cond = self.expr()?;
        self.expect_punct(")")?;
        if self.eat_ident("then") {
            self.end_of_stmt()?;
            let mut then_body = Vec::new();
            let mut else_body = Vec::new();
            let mut in_else = false;
            loop {
                self.skip_newlines();
                if self.at_end() {
                    return Err(self.err("unterminated if"));
                }
                if self.peek_ident() == Some("else") {
                    self.pos += 1;
                    self.end_of_stmt()?;
                    in_else = true;
                    continue;
                }
                if self.peek_ident() == Some("end") {
                    self.pos += 1;
                    if !self.eat_ident("if") {
                        return Err(self.err("expected 'end if'"));
                    }
                    self.end_of_stmt()?;
                    return Ok(FStmt::If { cond, then_body, else_body, line });
                }
                if self.peek_ident() == Some("endif") {
                    self.pos += 1;
                    self.end_of_stmt()?;
                    return Ok(FStmt::If { cond, then_body, else_body, line });
                }
                let s = self.stmt()?;
                if in_else {
                    else_body.push(s);
                } else {
                    then_body.push(s);
                }
            }
        }
        // single-statement if
        let s = self.stmt()?;
        Ok(FStmt::If { cond, then_body: vec![s], else_body: Vec::new(), line })
    }

    // -- expressions --------------------------------------------------------

    fn expr(&mut self) -> Result<FExpr> {
        // Section support at top level of parenthesised args: a(1:n).
        let lo = if self.is_punct(":") { None } else { Some(self.or_expr()?) };
        if self.eat_punct(":") {
            let hi = if self.is_punct(")") || self.is_punct(",") {
                None
            } else {
                Some(Box::new(self.or_expr()?))
            };
            return Ok(FExpr::Section { lo: lo.map(Box::new), hi });
        }
        lo.ok_or_else(|| self.err("expected expression"))
    }

    fn expr_no_section(&mut self) -> Result<FExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<FExpr> {
        let mut l = self.and_expr()?;
        while self.eat_punct("||") {
            let r = self.and_expr()?;
            l = FExpr::Binary { op: "||", lhs: Box::new(l), rhs: Box::new(r) };
        }
        Ok(l)
    }

    fn and_expr(&mut self) -> Result<FExpr> {
        let mut l = self.cmp_expr()?;
        while self.eat_punct("&&") {
            let r = self.cmp_expr()?;
            l = FExpr::Binary { op: "&&", lhs: Box::new(l), rhs: Box::new(r) };
        }
        Ok(l)
    }

    fn cmp_expr(&mut self) -> Result<FExpr> {
        let l = self.add_expr()?;
        for (p, op) in
            [("==", "=="), ("/=", "!="), ("<=", "<="), (">=", ">="), ("<", "<"), (">", ">")]
        {
            if self.eat_punct(p) {
                let r = self.add_expr()?;
                return Ok(FExpr::Binary { op, lhs: Box::new(l), rhs: Box::new(r) });
            }
        }
        Ok(l)
    }

    fn add_expr(&mut self) -> Result<FExpr> {
        let mut l = self.mul_expr()?;
        loop {
            if self.eat_punct("+") {
                let r = self.mul_expr()?;
                l = FExpr::Binary { op: "+", lhs: Box::new(l), rhs: Box::new(r) };
            } else if self.eat_punct("-") {
                let r = self.mul_expr()?;
                l = FExpr::Binary { op: "-", lhs: Box::new(l), rhs: Box::new(r) };
            } else {
                return Ok(l);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<FExpr> {
        let mut l = self.pow_expr()?;
        loop {
            if self.eat_punct("*") {
                let r = self.pow_expr()?;
                l = FExpr::Binary { op: "*", lhs: Box::new(l), rhs: Box::new(r) };
            } else if self.eat_punct("/") {
                let r = self.pow_expr()?;
                l = FExpr::Binary { op: "/", lhs: Box::new(l), rhs: Box::new(r) };
            } else {
                return Ok(l);
            }
        }
    }

    fn pow_expr(&mut self) -> Result<FExpr> {
        let base = self.unary_expr()?;
        if self.eat_punct("**") {
            let e = self.pow_expr()?; // right associative
            return Ok(FExpr::Binary { op: "**", lhs: Box::new(base), rhs: Box::new(e) });
        }
        Ok(base)
    }

    fn unary_expr(&mut self) -> Result<FExpr> {
        if self.eat_punct("-") {
            let e = self.unary_expr()?;
            return Ok(FExpr::Unary { op: "-", expr: Box::new(e) });
        }
        if self.eat_punct("!") {
            let e = self.unary_expr()?;
            return Ok(FExpr::Unary { op: "!", expr: Box::new(e) });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<FExpr> {
        match self.peek().cloned() {
            Some(TokKind::Int(v)) => {
                self.pos += 1;
                Ok(FExpr::Int(v))
            }
            Some(TokKind::Real(v)) => {
                self.pos += 1;
                Ok(FExpr::Real(v))
            }
            Some(TokKind::Str(s)) => {
                self.pos += 1;
                Ok(FExpr::Str(s))
            }
            Some(TokKind::Ident(id)) => {
                self.pos += 1;
                if id == "true" || id == "false" {
                    return Ok(FExpr::Bool(id == "true"));
                }
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.is_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                    }
                    self.expect_punct(")")?;
                    return Ok(FExpr::ParenRef { name: id, args });
                }
                Ok(FExpr::Var(id))
            }
            Some(TokKind::Punct("(")) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            _ => Err(self.err("expected expression")),
        }
    }
}

/// The shared pragma parser uses the C directive-word table; Fortran
/// directives additionally use `do`/`simd` spellings (`parallel do`,
/// `taskloop simd`, `end parallel do`).  Move misclassified leading
/// clauses back into the directive path.
fn fixup_fortran_directive(dir: &mut Pragma) {
    while let Some(first) = dir.clauses.first() {
        if first.args.is_empty() && matches!(first.name.as_str(), "do" | "concurrent" | "workshare")
        {
            let c = dir.clauses.remove(0);
            dir.path.push(c.name);
        } else {
            break;
        }
    }
}

// ---------------------------------------------------------------------------
// Semantic tree emission
// ---------------------------------------------------------------------------

/// Emit the Fortran semantic tree (`T_sem`).
///
/// Label vocabulary is deliberately GIMPLE-flavoured and *not* shared with
/// the C++ emitter — the paper notes cross-compiler trees "are not
/// comparable in any meaningful way".
pub fn t_sem_fortran(prog: &FProgram) -> Tree {
    t_sem_fortran_in(Arc::new(Interner::new()), prog)
}

/// [`t_sem_fortran`] with the label table shared with other trees of the unit.
pub fn t_sem_fortran_in(table: Arc<Interner>, prog: &FProgram) -> Tree {
    let mut e = FEmitter {
        b: TreeBuilder::new_in(table, "FortranUnit"),
        file: prog.file,
        arrays: Vec::new(),
    };
    for u in &prog.units {
        e.unit(u);
    }
    e.b.finish()
}

struct FEmitter {
    b: TreeBuilder,
    file: FileId,
    /// Stack of declared array names (per unit) for ParenRef resolution.
    arrays: Vec<Vec<String>>,
}

impl FEmitter {
    fn span(&self, line: u32) -> Option<Span> {
        Some(Span::line(self.file.0, line))
    }

    fn span_range(&self, a: u32, b: u32) -> Option<Span> {
        Some(Span::lines(self.file.0, a, b.max(a)))
    }

    fn is_array(&self, name: &str) -> bool {
        self.arrays.iter().any(|frame| frame.iter().any(|n| n == name))
    }

    fn unit(&mut self, u: &FUnit) {
        let label = match u.kind {
            FUnitKind::Program => "MainProgram",
            FUnitKind::Module => "ModuleDecl",
            FUnitKind::Subroutine => "SubroutineDecl",
            FUnitKind::Function => "FunctionDecl",
        };
        self.b.open_span(label, self.span_range(u.line, u.end_line));
        self.arrays.push(Vec::new());
        for _p in &u.params {
            self.b.leaf_span("DummyArg", self.span(u.line));
        }
        for s in &u.body {
            self.stmt(s);
        }
        for c in &u.contained {
            self.unit(c);
        }
        self.arrays.pop();
        self.b.close();
    }

    fn stmt(&mut self, s: &FStmt) {
        match s {
            FStmt::Use { line, .. } => {
                self.b.leaf_span("UseStmt", self.span(*line));
            }
            FStmt::ImplicitNone { line } => {
                self.b.leaf_span("ImplicitNoneStmt", self.span(*line));
            }
            FStmt::Decl { ty, attrs, entities, line } => {
                self.b.open_span(format!("TypeDeclStmt({})", ty.label()), self.span(*line));
                for a in attrs {
                    self.b.leaf_span(format!("AttrSpec({a})"), self.span(*line));
                }
                for ent in entities {
                    if !ent.dims.is_empty() {
                        if let Some(frame) = self.arrays.last_mut() {
                            frame.push(ent.name.clone());
                        }
                    }
                    self.b
                        .open_span(format!("EntityDecl(rank{})", ent.dims.len()), self.span(*line));
                    for d in ent.dims.iter().flatten() {
                        self.expr(d, *line);
                    }
                    if let Some(init) = &ent.init {
                        self.expr(init, *line);
                    }
                    self.b.close();
                }
                self.b.close();
            }
            FStmt::Assign { lhs, rhs, line } => {
                self.b.open_span("AssignmentStmt", self.span(*line));
                self.expr(lhs, *line);
                self.expr(rhs, *line);
                self.b.close();
            }
            FStmt::Do { lo, hi, body, line, end_line, .. } => {
                self.b.open_span("DoConstruct", self.span_range(*line, *end_line));
                self.b.leaf_span("LoopVar", self.span(*line));
                self.expr(lo, *line);
                self.expr(hi, *line);
                for s in body {
                    self.stmt(s);
                }
                self.b.close();
            }
            FStmt::DoConcurrent { lo, hi, body, line, end_line, .. } => {
                self.b.open_span("DoConcurrentConstruct", self.span_range(*line, *end_line));
                self.b.leaf_span("LoopVar", self.span(*line));
                self.expr(lo, *line);
                self.expr(hi, *line);
                // DO CONCURRENT asserts iteration independence — a semantic
                // token the plain DO lacks.
                self.b.leaf_span("IterationIndependenceAssertion", self.span(*line));
                for s in body {
                    self.stmt(s);
                }
                self.b.close();
            }
            FStmt::If { cond, then_body, else_body, line } => {
                self.b.open_span("IfConstruct", self.span(*line));
                self.expr(cond, *line);
                self.b.open_span("ThenPart", self.span(*line));
                for s in then_body {
                    self.stmt(s);
                }
                self.b.close();
                if !else_body.is_empty() {
                    self.b.open_span("ElsePart", self.span(*line));
                    for s in else_body {
                        self.stmt(s);
                    }
                    self.b.close();
                }
                self.b.close();
            }
            FStmt::Call { args, line, .. } => {
                self.b.open_span("CallStmt", self.span(*line));
                for a in args {
                    self.expr(a, *line);
                }
                self.b.close();
            }
            FStmt::Allocate { items, line } => {
                self.b.open_span("AllocateStmt", self.span(*line));
                for i in items {
                    self.expr(i, *line);
                }
                self.b.close();
            }
            FStmt::Deallocate { items, line } => {
                self.b.open_span("DeallocateStmt", self.span(*line));
                for i in items {
                    self.expr(i, *line);
                }
                self.b.close();
            }
            FStmt::Print { args, line } => {
                self.b.open_span("PrintStmt", self.span(*line));
                for a in args {
                    self.expr(a, *line);
                }
                self.b.close();
            }
            FStmt::Stop { line } => {
                self.b.leaf_span("StopStmt", self.span(*line));
            }
            FStmt::Return { line } => {
                self.b.leaf_span("ReturnStmt", self.span(*line));
            }
            FStmt::Exit { line } => {
                self.b.leaf_span("ExitStmt", self.span(*line));
            }
            FStmt::Cycle { line } => {
                self.b.leaf_span("CycleStmt", self.span(*line));
            }
            FStmt::Directive { dir, line } => {
                if dir.domain == "acc" {
                    // GCC 13 QoI artefact (see module docs): OpenACC adds no
                    // parallel semantics to GFortran's GIMPLE.
                    self.b.leaf_span("ACCDirectiveIgnored", self.span(*line));
                    return;
                }
                if dir.path.first().map(String::as_str) == Some("end") {
                    // Region-based lowering: the `end` sentinel closes the
                    // region; GIMPLE has no separate construct for it.
                    self.b.leaf_span("OMPRegionEnd", self.span(*line));
                    return;
                }
                self.b.open_span(dir.ast_label(), self.span(*line));
                // GFortran's GIMPLE materialises one construct per nesting
                // level plus implicit data-sharing semantics — the "opaque
                // in the source" tokens the paper highlights.
                for w in &dir.path {
                    self.b.leaf_span(format!("OMPRegion({w})"), self.span(*line));
                }
                self.b.leaf_span("OMPImplicitDataSharing", self.span(*line));
                for c in &dir.clauses {
                    let label = clause_label(c);
                    if c.args.len() > 1 {
                        self.b.open_span(label, self.span(*line));
                        for a in &c.args {
                            if a == ":" || a == "," {
                                continue;
                            }
                            self.b.leaf_span("DeclRefExpr", self.span(*line));
                        }
                        self.b.close();
                    } else {
                        self.b.leaf_span(label, self.span(*line));
                    }
                }
                self.b.close();
            }
        }
    }

    fn expr(&mut self, e: &FExpr, line: u32) {
        match e {
            FExpr::Int(v) => {
                self.b.leaf_span(format!("IntLiteral({v})"), self.span(line));
            }
            FExpr::Real(v) => {
                self.b.leaf_span(format!("RealLiteral({v})"), self.span(line));
            }
            FExpr::Str(_) => {
                self.b.leaf_span("CharLiteral", self.span(line));
            }
            FExpr::Bool(v) => {
                self.b.leaf_span(format!("LogicalLiteral({v})"), self.span(line));
            }
            FExpr::Var(name) => {
                // Whole-array reference is itself semantic-bearing.
                if self.is_array(name) {
                    self.b.leaf_span("WholeArrayRef", self.span(line));
                } else {
                    self.b.leaf_span("VarRef", self.span(line));
                }
            }
            FExpr::ParenRef { name, args } => {
                let label = if self.is_array(name) { "ArrayRef" } else { "FuncRef" };
                self.b.open_span(label, self.span(line));
                for a in args {
                    self.expr(a, line);
                }
                self.b.close();
            }
            FExpr::Section { lo, hi } => {
                self.b.open_span("SectionSpec", self.span(line));
                if let Some(l) = lo {
                    self.expr(l, line);
                }
                if let Some(h) = hi {
                    self.expr(h, line);
                }
                self.b.close();
            }
            FExpr::Unary { op, expr } => {
                self.b.open_span(format!("UnaryOp({op})"), self.span(line));
                self.expr(expr, line);
                self.b.close();
            }
            FExpr::Binary { op, lhs, rhs } => {
                self.b.open_span(format!("BinaryOp({op})"), self.span(line));
                self.expr(lhs, line);
                self.expr(rhs, line);
                self.b.close();
            }
        }
    }
}

fn clause_label(c: &Clause) -> String {
    const MODIFIERS: &[&str] =
        &["+", "*", "-", "max", "min", "static", "dynamic", "guided", "tofrom", "to", "from"];
    let mut camel = String::new();
    for part in c.name.split('_') {
        let mut cs = part.chars();
        if let Some(c0) = cs.next() {
            camel.push(c0.to_ascii_uppercase());
            camel.push_str(cs.as_str());
        }
    }
    match c.args.first().map(String::as_str) {
        Some(first) if MODIFIERS.contains(&first) => format!("OMP{camel}Clause({first})"),
        _ => format!("OMP{camel}Clause"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STREAM_OMP: &str = "\
program stream
  implicit none
  integer :: i, n
  real(8), allocatable :: a(:), b(:), c(:)
  real(8) :: scalar, total
  n = 1024
  scalar = 0.4
  allocate(a(n), b(n), c(n))
!$omp parallel do
  do i = 1, n
    a(i) = b(i) + scalar * c(i)
  end do
!$omp end parallel do
  total = 0.0
!$omp parallel do reduction(+:total)
  do i = 1, n
    total = total + a(i) * b(i)
  end do
!$omp end parallel do
  print *, total
  deallocate(a, b, c)
end program stream
";

    #[test]
    fn lex_basics() {
        let toks = lex_fortran("x = 1.0d0 + y ! comment\n", FileId(0), "t.f90").unwrap();
        let kinds: Vec<&TokKind> = toks.iter().map(|t| &t.kind).collect();
        assert!(matches!(kinds[0], TokKind::Ident(s) if s == "x"));
        assert!(matches!(kinds[2], TokKind::Real(v) if *v == 1.0));
        assert!(matches!(kinds.last(), Some(TokKind::Newline)));
    }

    #[test]
    fn lex_case_insensitive() {
        let toks = lex_fortran("PROGRAM Stream", FileId(0), "t.f90").unwrap();
        assert!(matches!(&toks[0].kind, TokKind::Ident(s) if s == "program"));
        assert!(matches!(&toks[1].kind, TokKind::Ident(s) if s == "stream"));
    }

    #[test]
    fn lex_logical_ops() {
        let toks = lex_fortran("if (a .and. b .or. .not. c) then", FileId(0), "t.f90").unwrap();
        let puncts: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokKind::Punct(p) => Some(*p),
                _ => None,
            })
            .collect();
        assert!(puncts.contains(&"&&"));
        assert!(puncts.contains(&"||"));
        assert!(puncts.contains(&"!"));
    }

    #[test]
    fn lex_directive_sentinel() {
        let toks = lex_fortran("!$omp parallel do reduction(+:s)\n", FileId(0), "t.f90").unwrap();
        let TokKind::Pragma(inner) = &toks[0].kind else { panic!("{toks:?}") };
        assert_eq!(inner[0].kind.ident(), Some("omp"));
        assert_eq!(inner[1].kind.ident(), Some("parallel"));
    }

    #[test]
    fn lex_continuation_joins_statement() {
        let toks = lex_fortran("a = b + &\n    c\nd = 1", FileId(0), "t.f90").unwrap();
        let newlines = toks.iter().filter(|t| matches!(t.kind, TokKind::Newline)).count();
        assert_eq!(newlines, 2, "{toks:?}"); // two statements
    }

    #[test]
    fn parse_stream_program() {
        let p = parse_fortran(STREAM_OMP, FileId(0), "stream.f90").unwrap();
        assert_eq!(p.units.len(), 1);
        let u = &p.units[0];
        assert_eq!(u.kind, FUnitKind::Program);
        assert_eq!(u.name, "stream");
        // implicit none, 2 decls, 2 assigns, allocate, 4 directives, 2 dos,
        // assignment, print, deallocate …
        assert!(u.body.len() >= 10, "{:?}", u.body.len());
        assert!(u.body.iter().any(|s| matches!(s, FStmt::Allocate { .. })));
        assert!(u.body.iter().any(|s| matches!(s, FStmt::Do { .. })));
        assert!(u.body.iter().any(|s| matches!(s, FStmt::Directive { .. })));
    }

    #[test]
    fn parse_directive_path_includes_do() {
        let p = parse_fortran(
            "program t\n!$omp parallel do\ndo i = 1, n\na(i) = 0.0\nend do\nend program",
            FileId(0),
            "t.f90",
        )
        .unwrap();
        let dir = p.units[0]
            .body
            .iter()
            .find_map(|s| match s {
                FStmt::Directive { dir, .. } => Some(dir.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(dir.path, vec!["parallel", "do"]);
        assert_eq!(dir.ast_label(), "OMPParallelDoDirective");
    }

    #[test]
    fn parse_do_concurrent() {
        let p = parse_fortran(
            "program t\ndo concurrent (i = 1:n)\na(i) = b(i)\nend do\nend program",
            FileId(0),
            "t.f90",
        )
        .unwrap();
        assert!(matches!(&p.units[0].body[0], FStmt::DoConcurrent { .. }));
    }

    #[test]
    fn parse_whole_array_assignment() {
        let p = parse_fortran(
            "program t\nreal(8), allocatable :: a(:), b(:), c(:)\nreal(8) :: s\na = b + s * c\nend program",
            FileId(0),
            "t.f90",
        )
        .unwrap();
        let FStmt::Assign { rhs, .. } = &p.units[0].body[2] else { panic!() };
        assert!(matches!(rhs, FExpr::Binary { op: "+", .. }));
    }

    #[test]
    fn parse_module_with_contains() {
        let src = "module kernels\ncontains\nsubroutine triad(a, b, c)\nreal(8), intent(inout) :: a(:)\na = b\nend subroutine\nend module";
        let p = parse_fortran(src, FileId(0), "m.f90").unwrap();
        assert_eq!(p.units[0].kind, FUnitKind::Module);
        assert_eq!(p.units[0].contained.len(), 1);
        assert_eq!(p.units[0].contained[0].name, "triad");
        assert_eq!(p.units[0].contained[0].params, vec!["a", "b", "c"]);
    }

    #[test]
    fn emit_stream_tree() {
        let p = parse_fortran(STREAM_OMP, FileId(0), "stream.f90").unwrap();
        let t = t_sem_fortran(&p);
        let s = t.to_sexpr();
        assert!(s.contains("(MainProgram"), "{s}");
        assert!(s.contains("OMPParallelDoDirective"), "{s}");
        assert!(s.contains("OMPReductionClause(+)"), "{s}");
        assert!(s.contains("(DoConstruct"), "{s}");
        assert!(s.contains("ArrayRef"), "{s}");
        assert!(s.contains("AllocateStmt"), "{s}");
    }

    #[test]
    fn array_vs_function_refs_resolved() {
        let src = "program t\nreal(8), allocatable :: a(:)\nx = a(i) + sqrt(y)\nend program";
        let p = parse_fortran(src, FileId(0), "t.f90").unwrap();
        let t = t_sem_fortran(&p);
        let s = t.to_sexpr();
        assert!(s.contains("(ArrayRef"), "{s}");
        assert!(s.contains("(FuncRef"), "{s}");
    }

    #[test]
    fn acc_directives_degenerate_per_gcc_artifact() {
        let omp = parse_fortran(
            "program t\n!$omp parallel do\ndo i = 1, n\na(i) = 0.0\nend do\nend program",
            FileId(0),
            "t.f90",
        )
        .unwrap();
        let acc = parse_fortran(
            "program t\n!$acc kernels\ndo i = 1, n\na(i) = 0.0\nend do\n!$acc end kernels\nend program",
            FileId(0),
            "t.f90",
        )
        .unwrap();
        let seq = parse_fortran(
            "program t\ndo i = 1, n\na(i) = 0.0\nend do\nend program",
            FileId(0),
            "t.f90",
        )
        .unwrap();
        let t_omp = t_sem_fortran(&omp);
        let t_acc = t_sem_fortran(&acc);
        let t_seq = t_sem_fortran(&seq);
        // OpenMP adds real semantic tokens; OpenACC adds only the degenerate
        // leaves (QoI artefact), so its tree stays near the sequential one.
        let omp_growth = t_omp.size() - t_seq.size();
        let acc_growth = t_acc.size() - t_seq.size();
        assert!(omp_growth > acc_growth, "omp {omp_growth} vs acc {acc_growth}");
        assert!(t_acc.to_sexpr().contains("ACCDirectiveIgnored"));
    }

    #[test]
    fn do_concurrent_has_independence_token() {
        let p = parse_fortran(
            "program t\ndo concurrent (i = 1:n)\na(i) = 0.0\nend do\nend program",
            FileId(0),
            "t.f90",
        )
        .unwrap();
        assert!(t_sem_fortran(&p).to_sexpr().contains("IterationIndependenceAssertion"));
    }

    #[test]
    fn cst_works_on_fortran_tokens() {
        let toks = lex_fortran(STREAM_OMP, FileId(0), "stream.f90").unwrap();
        let t = crate::cst::t_src(&toks);
        let s = t.to_sexpr();
        assert!(s.contains("(Pragma"), "directives survive T_src: {s}");
        assert!(t.size() > 50);
    }

    #[test]
    fn measures_work_on_fortran_tokens() {
        let toks = lex_fortran(STREAM_OMP, FileId(0), "stream.f90").unwrap();
        let sloc = crate::measure::normalized_lines(&toks).len();
        assert!(sloc > 15, "sloc = {sloc}");
    }

    #[test]
    fn parse_errors_have_locations() {
        let e = parse_fortran("program t\nx = = 1\nend program", FileId(0), "bad.f90").unwrap_err();
        assert_eq!(e.line, 2);
        assert_eq!(e.path, "bad.f90");
    }
}
