//! Per-compilation-unit pipeline: one source file (plus its dependency
//! closure, Eq. 1 of the paper: `unit(x) = dep(x) ∪ x`) in, every frontend
//! artefact out.
//!
//! The unit is the granularity at which all metrics compare codebases.  For
//! each unit this module produces:
//!
//! * normalised source lines, SLOC and LLOC — pre-preprocessing (user files
//!   only) and post-preprocessing (macro-expanded, system headers included,
//!   which is what makes the SYCL giant-header artefact measurable),
//! * `T_src` (pre- and post-preprocessor variants),
//! * `T_sem` and `T_sem+i` (system-header items masked out, as the paper
//!   masks system headers "during the analysis phase"),
//! * the parsed AST for downstream stages (IR lowering, interpretation).

use crate::ast::{Item, Program};
use crate::cst;
use crate::emit::{self, SemOptions};
use crate::fortran::{self, FProgram};
use crate::lex::{lex, LexOptions, TokKind, Token};
use crate::measure;
use crate::pp::{preprocess, PpOptions};
use crate::sema::Registry;
use crate::source::{FileId, LangError, Result, SourceSet};
use std::collections::HashSet;
use std::sync::Arc;
use svtree::{Interner, Tree};

/// Source language of a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Language {
    Cpp,
    Fortran,
}

impl Language {
    /// Infer from a file extension.
    pub fn from_path(path: &str) -> Language {
        let lower = path.to_ascii_lowercase();
        if lower.ends_with(".f90") || lower.ends_with(".f") || lower.ends_with(".f95") {
            Language::Fortran
        } else {
            Language::Cpp
        }
    }
}

/// Options for compiling a unit.
#[derive(Debug, Clone, Default)]
pub struct UnitOptions {
    /// `-D` style defines (model selection flags).
    pub defines: Vec<(String, Option<String>)>,
    /// Inline depth for `T_sem+i` (default taken from [`SemOptions::INLINED`]).
    pub inline_depth: Option<usize>,
}

/// All frontend artefacts of one compilation unit.
#[derive(Debug, Clone)]
pub struct Unit {
    /// Main file path (unit name for `match()` pairing).
    pub name: String,
    pub language: Language,
    pub main: FileId,
    /// Non-system dependency files, in first-include order (main excluded).
    pub dep_files: Vec<FileId>,
    /// System headers pulled in by this unit.
    pub system_files: HashSet<FileId>,

    /// Normalised lines of the user view (main + user headers, pre-pp).
    pub lines_pre: Vec<String>,
    /// Source location (file, line) of each entry in `lines_pre`.
    pub line_locs_pre: Vec<(u32, u32)>,
    /// Normalised lines after preprocessing (includes system headers).
    pub lines_post: Vec<String>,
    /// Source location (file, line) of each entry in `lines_post`.
    pub line_locs_post: Vec<(u32, u32)>,
    pub sloc_pre: usize,
    pub lloc_pre: usize,
    pub sloc_post: usize,
    pub lloc_post: usize,

    /// `T_src` — perceived-syntax tree (user view).
    pub t_src: Tree,
    /// `T_src` `+preprocessor` variant.
    pub t_src_pp: Tree,
    /// `T_sem` — frontend semantic tree.
    pub t_sem: Tree,
    /// `T_sem+i` — semantic tree with same-codebase calls inlined.
    pub t_sem_inl: Tree,

    /// Parsed C/C++ AST (None for Fortran units).
    pub program: Option<Program>,
    /// Parsed Fortran AST (None for C/C++ units).
    pub fprogram: Option<FProgram>,
}

/// Compile one unit out of a source set.
pub fn compile_unit(sources: &SourceSet, main: FileId, opts: &UnitOptions) -> Result<Unit> {
    let path = sources.file(main).path.clone();
    match Language::from_path(&path) {
        Language::Cpp => compile_cpp(sources, main, &path, opts),
        Language::Fortran => compile_fortran(sources, main, &path),
    }
}

fn compile_cpp(sources: &SourceSet, main: FileId, path: &str, opts: &UnitOptions) -> Result<Unit> {
    let _unit_span = svtrace::span!("unit.compile", unit = path);
    // One shared label table for every tree of this unit: the trees become
    // directly comparable by symbol and the distance layer's interned fast
    // paths apply within the unit's whole tree family.
    let table = Arc::new(Interner::new());
    let pp_opts = PpOptions { defines: opts.defines.clone() };
    let out = {
        let _s = svtrace::span!("unit.preprocess", unit = path);
        preprocess(sources, main, &pp_opts)?
    };

    let dep_files: Vec<FileId> = out
        .included
        .iter()
        .copied()
        .filter(|f| *f != main && !out.system_files.contains(f))
        .collect();

    // --- pre-preprocessing (user) view: main + user deps, raw tokens ----
    let mut pre_tokens: Vec<Token> = Vec::new();
    {
        let _s = svtrace::span!("unit.lex", unit = path);
        for &f in std::iter::once(&main).chain(dep_files.iter()) {
            let sf = sources.file(f);
            let toks = lex(
                &sf.text,
                f,
                &sf.path,
                LexOptions { keep_comments: true, keep_newlines: false },
            )?;
            pre_tokens.extend(fold_pragma_directives(toks));
        }
    }
    let norm_span = svtrace::span!("unit.normalise", unit = path);
    let pre_pairs = measure::normalized_lines_with_locs(&pre_tokens);
    let line_locs_pre: Vec<(u32, u32)> = pre_pairs.iter().map(|(_, (f, l))| (f.0, *l)).collect();
    let lines_pre: Vec<String> = pre_pairs.into_iter().map(|(s, _)| s).collect();
    let sloc_pre = lines_pre.len();
    let lloc_pre = measure::lloc(&pre_tokens);
    let t_src = cst::t_src_in(Arc::clone(&table), &pre_tokens);

    // --- post-preprocessing view ----------------------------------------
    let post_pairs = measure::normalized_lines_with_locs(&out.tokens);
    let line_locs_post: Vec<(u32, u32)> = post_pairs.iter().map(|(_, (f, l))| (f.0, *l)).collect();
    let lines_post: Vec<String> = post_pairs.into_iter().map(|(s, _)| s).collect();
    let sloc_post = lines_post.len();
    let lloc_post = measure::lloc(&out.tokens);
    let t_src_pp = cst::t_src_in(Arc::clone(&table), &out.tokens);
    drop(norm_span);

    // --- semantic trees ---------------------------------------------------
    let program = {
        let _s = svtrace::span!("unit.parse", unit = path);
        crate::parse::parse(out.tokens.clone(), main, path)?
    };
    let lower_span = svtrace::span!("unit.lower", unit = path);
    let reg = Registry::build(&program, &out.system_files);
    // Mask system-header items out of the semantic view.
    let user_items: Vec<Item> = program
        .items
        .iter()
        .filter(|it| match it {
            Item::Function(f) => !out.system_files.contains(&f.file),
            Item::Struct(s) => !out.system_files.contains(&s.file),
            Item::Global(v) => !out.system_files.contains(&v.file),
            Item::Pragma(p) => !out.system_files.contains(&p.file),
            Item::Using { .. } => true,
        })
        .cloned()
        .collect();
    let user_prog = Program { main_file: main, items: user_items };
    let t_sem = emit::t_sem_in(Arc::clone(&table), &user_prog, &reg, SemOptions::PLAIN);
    drop(lower_span);
    let inline_depth = opts.inline_depth.unwrap_or(SemOptions::INLINED.inline_depth);
    let t_sem_inl = {
        let _s = svtrace::span!("unit.inline", unit = path, depth = inline_depth);
        emit::t_sem_in(Arc::clone(&table), &user_prog, &reg, SemOptions { inline_depth })
    };

    Ok(Unit {
        name: path.to_string(),
        language: Language::Cpp,
        main,
        dep_files,
        system_files: out.system_files,
        lines_pre,
        line_locs_pre,
        lines_post,
        line_locs_post,
        sloc_pre,
        lloc_pre,
        sloc_post,
        lloc_post,
        t_src,
        t_src_pp,
        t_sem,
        t_sem_inl,
        program: Some(program),
        fprogram: None,
    })
}

/// In the raw (pre-pp) token stream, `#pragma …` lines are folded into the
/// structured [`TokKind::Pragma`] token the post-pp stream uses, so `T_src`
/// treats retained pragmas uniformly.  All other directives keep their raw
/// tokens — the pre-pp view is "what the programmer sees", so `#include`
/// and `#define` lines count as source.
fn fold_pragma_directives(toks: Vec<Token>) -> Vec<Token> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if matches!(t.kind, TokKind::Hash) {
            let line = t.loc.line;
            let file = t.loc.file;
            let mut j = i + 1;
            while j < toks.len() && toks[j].loc.line == line && toks[j].loc.file == file {
                j += 1;
            }
            let name = toks.get(i + 1).and_then(|t| t.kind.ident());
            if name == Some("pragma") {
                let inner: Vec<Token> = toks[i + 2..j].to_vec();
                out.push(Token::new(TokKind::Pragma(inner), t.loc));
            } else {
                out.extend_from_slice(&toks[i..j]);
            }
            i = j;
        } else {
            out.push(toks[i].clone());
            i += 1;
        }
    }
    out
}

fn compile_fortran(sources: &SourceSet, main: FileId, path: &str) -> Result<Unit> {
    let _unit_span = svtrace::span!("unit.compile", unit = path);
    let table = Arc::new(Interner::new());
    let text = sources.file(main).text.clone();
    let tokens = {
        let _s = svtrace::span!("unit.lex", unit = path);
        fortran::lex_fortran(&text, main, path)?
    };

    let pre_pairs = measure::normalized_lines_with_locs(&tokens);
    let line_locs_pre: Vec<(u32, u32)> = pre_pairs.iter().map(|(_, (f, l))| (f.0, *l)).collect();
    let lines_pre: Vec<String> = pre_pairs.into_iter().map(|(s, _)| s).collect();
    let sloc_pre = lines_pre.len();
    // Fortran logical lines: one per statement (Newline-delimited), pragmas
    // already count as their own statement.
    let lloc_pre = tokens.iter().filter(|t| matches!(t.kind, TokKind::Newline)).count();

    let t_src = cst::t_src_in(Arc::clone(&table), &tokens);
    let fprog = {
        let _s = svtrace::span!("unit.parse", unit = path);
        fortran::parse_fortran(&text, main, path)?
    };
    let t_sem = {
        let _s = svtrace::span!("unit.lower", unit = path);
        fortran::t_sem_fortran_in(Arc::clone(&table), &fprog)
    };

    Ok(Unit {
        name: path.to_string(),
        language: Language::Fortran,
        main,
        dep_files: Vec::new(),
        system_files: HashSet::new(),
        // Fortran has no preprocessor in the dialect: post == pre.
        lines_post: lines_pre.clone(),
        line_locs_post: line_locs_pre.clone(),
        sloc_post: sloc_pre,
        lloc_post: lloc_pre,
        lines_pre,
        line_locs_pre,
        sloc_pre,
        lloc_pre,
        t_src_pp: t_src.clone(),
        t_src,
        // No same-codebase inliner for Fortran (the paper omits T_sem+i for
        // GCC as well, citing the representation effort).
        t_sem_inl: t_sem.clone(),
        t_sem,
        program: None,
        fprogram: Some(fprog),
    })
}

impl Unit {
    /// Convenience: returns an error if any artefact is degenerate
    /// (self-check used by the indexing step).
    pub fn validate(&self) -> Result<()> {
        if self.t_src.is_empty() || self.t_sem.is_empty() {
            return Err(LangError::new(&self.name, 0, "empty semantic artefacts"));
        }
        if self.sloc_pre == 0 {
            return Err(LangError::new(&self.name, 0, "unit has no source lines"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpp_unit(files: &[(&str, &str, bool)], defines: &[(&str, Option<&str>)]) -> Unit {
        let mut ss = SourceSet::new();
        for (p, t, sys) in files {
            if *sys {
                ss.add_system(*p, *t);
            } else {
                ss.add(*p, *t);
            }
        }
        let main = ss.lookup(files[0].0).unwrap();
        let opts = UnitOptions {
            defines: defines.iter().map(|(n, v)| (n.to_string(), v.map(str::to_string))).collect(),
            inline_depth: None,
        };
        compile_unit(&ss, main, &opts).unwrap()
    }

    const MAIN: &str = "\
#include \"util.h\"
#include <sys.hpp>

// stream triad
void triad(double* a, const double* b, const double* c, double s, int n) {
  for (int i = 0; i < n; i++) {
    a[i] = b[i] + s * c[i];
  }
}

int main() {
  run();
  return 0;
}
";

    fn full() -> Unit {
        cpp_unit(
            &[
                ("main.cpp", MAIN, false),
                ("util.h", "void run();\ndouble helper(double x) { return x * 2.0; }\n", false),
                ("sys.hpp", "int sys_version = 3;\nvoid sys_init() { }\n", true),
            ],
            &[],
        )
    }

    #[test]
    fn unit_dep_closure() {
        let u = full();
        assert_eq!(u.dep_files.len(), 1, "util.h is the only user dep");
        assert_eq!(u.system_files.len(), 1);
        assert_eq!(u.language, Language::Cpp);
        u.validate().unwrap();
    }

    #[test]
    fn pre_pp_counts_user_files_only() {
        let u = full();
        assert!(u.sloc_pre >= 10, "sloc_pre = {}", u.sloc_pre);
        // system header lines must NOT appear in the pre view:
        assert!(!u.lines_pre.iter().any(|l| l.contains("sys_init")), "{:?}", u.lines_pre);
        // but util.h lines do:
        assert!(u.lines_pre.iter().any(|l| l.contains("helper")));
    }

    #[test]
    fn post_pp_includes_system_headers() {
        let u = full();
        assert!(u.lines_post.iter().any(|l| l.contains("sys_init")));
        // include lines themselves are gone after preprocessing
        assert!(!u.lines_post.iter().any(|l| l.contains("include")));
        assert!(u.sloc_post > 0);
    }

    #[test]
    fn t_sem_masks_system_items() {
        let u = full();
        // helper()/run() from util.h are in T_sem; sys_init from sys.hpp is
        // not.  (Names are stripped, so count FunctionDecls: run prototype,
        // helper, triad, main = 4 — the masked system header would add 1.)
        let fd = u.t_sem.count_labels(|l| l == "FunctionDecl");
        assert_eq!(fd, 4, "{}", u.t_sem.to_sexpr());
    }

    #[test]
    fn t_sem_inl_grows() {
        let u = cpp_unit(
            &[(
                "m.cpp",
                "double helper(double x) { return x * 2.0; }\nvoid f() { double y = helper(1.0) + helper(2.0); }",
                false,
            )],
            &[],
        );
        assert!(u.t_sem_inl.size() > u.t_sem.size());
    }

    #[test]
    fn defines_select_model_variants() {
        let src = "#ifdef USE_OMP\nvoid omp_path() { }\n#else\nvoid serial_path() { }\n#endif\nint main() { return 0; }";
        let serial = cpp_unit(&[("m.cpp", src, false)], &[]);
        let omp = cpp_unit(&[("m.cpp", src, false)], &[("USE_OMP", None)]);
        // Both have 2 functions, but sloc of pre view identical while t_sem
        // identical in shape — distinguish via post-pp lines.
        assert!(omp.lines_post.iter().any(|l| l.contains("omp_path")));
        assert!(serial.lines_post.iter().any(|l| l.contains("serial_path")));
    }

    #[test]
    fn pragma_survives_in_pre_pp_t_src() {
        let u = cpp_unit(
            &[(
                "m.cpp",
                "void f(int n) {\n#pragma omp parallel for\nfor (int i = 0; i < n; i++) a[i] = 0.0;\n}",
                false,
            )],
            &[],
        );
        assert!(u.t_src.to_sexpr().contains("(Pragma"), "{}", u.t_src.to_sexpr());
        assert!(u.t_src_pp.to_sexpr().contains("(Pragma"));
    }

    #[test]
    fn fortran_unit_pipeline() {
        let mut ss = SourceSet::new();
        let m = ss.add(
            "stream.f90",
            "program s\nimplicit none\nreal(8), allocatable :: a(:)\ninteger :: i, n\nn = 8\nallocate(a(n))\n!$omp parallel do\ndo i = 1, n\na(i) = 1.0\nend do\n!$omp end parallel do\nend program",
        );
        let u = compile_unit(&ss, m, &UnitOptions::default()).unwrap();
        assert_eq!(u.language, Language::Fortran);
        assert!(u.fprogram.is_some());
        assert!(u.program.is_none());
        assert!(u.t_sem.to_sexpr().contains("OMPParallelDoDirective"));
        assert!(u.sloc_pre >= 10);
        assert_eq!(u.lloc_pre, 12, "one logical line per statement");
        u.validate().unwrap();
    }

    #[test]
    fn language_inference() {
        assert_eq!(Language::from_path("a/b/stream.F90"), Language::Fortran);
        assert_eq!(Language::from_path("x.cpp"), Language::Cpp);
        assert_eq!(Language::from_path("x.cu"), Language::Cpp);
    }

    #[test]
    fn identical_units_have_identical_artifacts() {
        let a = full();
        let b = full();
        assert_eq!(a.t_src.structural_hash(), b.t_src.structural_hash());
        assert_eq!(a.t_sem.structural_hash(), b.t_sem.structural_hash());
        assert_eq!(a.lines_pre, b.lines_pre);
    }
}
