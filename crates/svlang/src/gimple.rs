//! GCC-flavoured semantic emission: High GIMPLE.
//!
//! §IV-B: "GCC lowers (translates) C/C++ source code to GIMPLE … GIMPLE is
//! functionally similar to ClangAST but represents the node using a tuple
//! instead of an arbitrary tree.  This tuple structure is not comparable to
//! ClangAST in any meaningful way, so cross-compiler comparison is not
//! possible."
//!
//! This module is the second "compiler" of the framework: it emits a
//! `T_sem` for the same AST in GIMPLE's tuple-flavoured vocabulary —
//! `gimple_assign`, `gimple_cond`, `gimple_call`, … with statement-list
//! nesting instead of expression trees (GIMPLE is three-address: compound
//! expressions are flattened into temporaries).  Comparing a ClangAST-style
//! tree against a GIMPLE-style tree yields divergence ≈ dmax — exactly the
//! paper's "not comparable" observation, which the tests assert.
//!
//! Like the paper, the GCC path omits `T_sem+i` ("generating the inlined
//! tree requires significant effort … so we have omitted this for GCC").

use crate::ast::*;
use crate::source::FileId;
use std::sync::Arc;
use svtree::{Interner, Span, Tree, TreeBuilder};

/// Emit a High-GIMPLE-flavoured semantic tree for a parsed unit.
pub fn t_sem_gimple(prog: &Program) -> Tree {
    t_sem_gimple_in(Arc::new(Interner::new()), prog)
}

/// [`t_sem_gimple`] with the label table shared with other trees of the unit.
pub fn t_sem_gimple_in(table: Arc<Interner>, prog: &Program) -> Tree {
    let mut e = GEmitter { b: TreeBuilder::new_in(table, "gimple_unit"), file: prog.main_file };
    for item in &prog.items {
        e.item(item);
    }
    e.b.finish()
}

struct GEmitter {
    b: TreeBuilder,
    file: FileId,
}

impl GEmitter {
    fn span(&self, line: u32) -> Option<Span> {
        Some(Span::line(self.file.0, line))
    }

    fn item(&mut self, item: &Item) {
        match item {
            Item::Function(f) => {
                let prev = std::mem::replace(&mut self.file, f.file);
                self.function(f);
                self.file = prev;
            }
            Item::Struct(s) => {
                let prev = std::mem::replace(&mut self.file, s.file);
                self.b.open_span("record_type", self.span(s.line));
                for fld in &s.fields {
                    self.b
                        .leaf_span(format!("field_decl({})", fld.ty.label()), self.span(fld.line));
                }
                self.b.close();
                for m in &s.methods {
                    self.function(m);
                }
                self.file = prev;
            }
            Item::Global(v) => {
                self.b.open_span(format!("var_decl({})", v.ty.label()), self.span(v.line));
                if let Some(init) = &v.init {
                    self.gimplify_expr(init);
                }
                self.b.close();
            }
            Item::Using { line, .. } => {
                self.b.leaf_span("using_decl", self.span(*line));
            }
            Item::Pragma(p) => self.pragma(p, None),
        }
    }

    fn function(&mut self, f: &Function) {
        self.b.open_span("gimple_function", self.span(f.line));
        self.b.leaf_span(format!("result_decl({})", f.ret.label()), self.span(f.line));
        for p in &f.params {
            self.b.leaf_span(format!("parm_decl({})", p.ty.label()), self.span(p.line));
        }
        if let Some(body) = &f.body {
            self.b.open_span("gimple_bind", self.span(body.line));
            self.block(body);
            self.b.close();
        }
        self.b.close();
    }

    fn block(&mut self, blk: &Block) {
        // GIMPLE has no nested compound statements: a statement *list*.
        for s in &blk.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl(v) => {
                self.b.open_span(format!("gimple_decl({})", v.ty.label()), self.span(v.line));
                if let Some(init) = &v.init {
                    self.gimplify_expr(init);
                }
                self.b.close();
            }
            Stmt::Expr { expr, .. } => self.gimplify_expr(expr),
            Stmt::If { cond, then_blk, else_blk, line } => {
                // gimple_cond carries the comparison; branches become
                // labelled statement lists.
                self.b.open_span("gimple_cond", self.span(*line));
                self.gimplify_expr(cond);
                self.b.open_span("gimple_label(then)", self.span(then_blk.line));
                self.block(then_blk);
                self.b.close();
                if let Some(e) = else_blk {
                    self.b.open_span("gimple_label(else)", self.span(e.line));
                    self.block(e);
                    self.b.close();
                }
                self.b.close();
            }
            Stmt::For { init, cond, step, body, line } => {
                // Loops gimplify to labels + goto-style conds.
                if let Some(i) = init {
                    self.stmt(i);
                }
                self.b.open_span("gimple_loop", self.span(*line));
                if let Some(c) = cond {
                    self.b.open_span("gimple_cond", self.span(*line));
                    self.gimplify_expr(c);
                    self.b.close();
                }
                self.block(body);
                if let Some(st) = step {
                    self.gimplify_expr(st);
                }
                self.b.leaf_span("gimple_goto", self.span(body.end_line));
                self.b.close();
            }
            Stmt::While { cond, body, line } => {
                self.b.open_span("gimple_loop", self.span(*line));
                self.b.open_span("gimple_cond", self.span(*line));
                self.gimplify_expr(cond);
                self.b.close();
                self.block(body);
                self.b.leaf_span("gimple_goto", self.span(body.end_line));
                self.b.close();
            }
            Stmt::Switch { scrutinee, arms, line } => {
                self.b.open_span("gimple_switch", self.span(*line));
                self.gimplify_expr(scrutinee);
                for arm in arms {
                    let label = match arm.value {
                        Some(v) => format!("case_label({v})"),
                        None => "case_label(default)".to_string(),
                    };
                    self.b.open_span(label, self.span(arm.line));
                    for st in &arm.stmts {
                        self.stmt(st);
                    }
                    self.b.close();
                }
                self.b.close();
            }
            Stmt::Return { expr, line } => {
                self.b.open_span("gimple_return", self.span(*line));
                if let Some(e) = expr {
                    self.gimplify_expr(e);
                }
                self.b.close();
            }
            Stmt::Break { line } | Stmt::Continue { line } => {
                self.b.leaf_span("gimple_goto", self.span(*line));
            }
            Stmt::Block(b) => {
                self.b.open_span("gimple_bind", self.span(b.line));
                self.block(b);
                self.b.close();
            }
            Stmt::Pragma { dir, stmt, .. } => self.pragma(dir, stmt.as_deref()),
        }
    }

    fn pragma(&mut self, dir: &Pragma, attached: Option<&Stmt>) {
        // GCC also represents OpenMP with dedicated GIMPLE codes
        // (gimple_omp_parallel, gimple_omp_for, …) — the paper: "We found
        // GCC to also have OpenMP tokens in the AST."
        if dir.domain == "omp" {
            let code = format!("gimple_omp_{}", dir.path.join("_"));
            self.b.open_span(code, self.span(dir.line));
            for c in &dir.clauses {
                self.b.leaf_span(format!("omp_clause({})", c.name), self.span(dir.line));
            }
            self.b.leaf_span("omp_clause(implicit_shared)", self.span(dir.line));
            if let Some(s) = attached {
                self.b.open_span("gimple_omp_body", self.span(dir.line));
                self.stmt(s);
                self.b.close();
            }
            self.b.close();
        } else {
            // OpenACC on this GCC version: parsed but not expanded.
            self.b.leaf_span("gimple_nop", self.span(dir.line));
            if let Some(s) = attached {
                self.stmt(s);
            }
        }
    }

    /// Gimplify an expression: three-address style.  Compound expressions
    /// flatten into `gimple_assign(tmp)` records instead of nesting, which
    /// is the structural difference from ClangAST.
    fn gimplify_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Int(v) => {
                self.b.leaf_span(format!("integer_cst({v})"), self.span(e.line));
            }
            ExprKind::Real(v) => {
                self.b.leaf_span(format!("real_cst({v})"), self.span(e.line));
            }
            ExprKind::Str(_) => {
                self.b.leaf_span("string_cst", self.span(e.line));
            }
            ExprKind::Char(_) => {
                self.b.leaf_span("integer_cst(char)", self.span(e.line));
            }
            ExprKind::Bool(v) => {
                self.b.leaf_span(format!("integer_cst({})", i32::from(*v)), self.span(e.line));
            }
            ExprKind::Path(_) => {
                self.b.leaf_span("ssa_name", self.span(e.line));
            }
            ExprKind::Unary { op, expr, .. } => {
                self.b.open_span(format!("gimple_assign({op}_expr)"), self.span(e.line));
                self.gimplify_expr(expr);
                self.b.close();
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let code = match *op {
                    "+" => "plus_expr",
                    "-" => "minus_expr",
                    "*" => "mult_expr",
                    "/" => "rdiv_expr",
                    "%" => "trunc_mod_expr",
                    "==" => "eq_expr",
                    "!=" => "ne_expr",
                    "<" => "lt_expr",
                    ">" => "gt_expr",
                    "<=" => "le_expr",
                    ">=" => "ge_expr",
                    "&&" => "truth_andif_expr",
                    "||" => "truth_orif_expr",
                    other => other,
                };
                // Flattened: each operand is a leaf-or-temporary, the
                // compound shape shows as sibling assigns.
                self.b.open_span(format!("gimple_assign({code})"), self.span(e.line));
                self.gimplify_expr(lhs);
                self.gimplify_expr(rhs);
                self.b.close();
            }
            ExprKind::Assign { op, lhs, rhs } => {
                let label = if *op == "=" {
                    "gimple_assign(store)".to_string()
                } else {
                    format!("gimple_assign(compound:{op})")
                };
                self.b.open_span(label, self.span(e.line));
                self.gimplify_expr(lhs);
                self.gimplify_expr(rhs);
                self.b.close();
            }
            ExprKind::Ternary { cond, then_e, else_e } => {
                self.b.open_span("gimple_assign(cond_expr)", self.span(e.line));
                self.gimplify_expr(cond);
                self.gimplify_expr(then_e);
                self.gimplify_expr(else_e);
                self.b.close();
            }
            ExprKind::Call { callee, args, .. } => {
                self.b.open_span("gimple_call", self.span(e.line));
                self.gimplify_expr(callee);
                for a in args {
                    self.gimplify_expr(a);
                }
                self.b.close();
            }
            ExprKind::KernelLaunch { callee, grid, block, args } => {
                self.b.open_span("gimple_call(launch)", self.span(e.line));
                self.gimplify_expr(callee);
                self.gimplify_expr(grid);
                self.gimplify_expr(block);
                for a in args {
                    self.gimplify_expr(a);
                }
                self.b.close();
            }
            ExprKind::Index { base, index } => {
                self.b.open_span("array_ref", self.span(e.line));
                self.gimplify_expr(base);
                self.gimplify_expr(index);
                self.b.close();
            }
            ExprKind::Member { base, .. } => {
                self.b.open_span("component_ref", self.span(e.line));
                self.gimplify_expr(base);
                self.b.close();
            }
            ExprKind::Lambda { params, body, .. } => {
                // GCC materialises lambdas as local record types + ops.
                self.b.open_span("lambda_function", self.span(e.line));
                for p in params {
                    self.b.leaf_span(format!("parm_decl({})", p.ty.label()), self.span(p.line));
                }
                self.b.open_span("gimple_bind", self.span(body.line));
                self.block(body);
                self.b.close();
                self.b.close();
            }
            ExprKind::Cast { ty, expr } => {
                self.b.open_span(
                    format!("gimple_assign(nop_expr:{})", ty.label()),
                    self.span(e.line),
                );
                self.gimplify_expr(expr);
                self.b.close();
            }
            ExprKind::Construct { ty, args, .. } => {
                self.b.open_span(format!("gimple_call(ctor:{})", ty.label()), self.span(e.line));
                for a in args {
                    self.gimplify_expr(a);
                }
                self.b.close();
            }
            ExprKind::InitList(items) => {
                self.b.open_span("constructor", self.span(e.line));
                for i in items {
                    self.gimplify_expr(i);
                }
                self.b.close();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pp::{preprocess, PpOptions};
    use crate::source::SourceSet;

    fn units(src: &str) -> (Tree, Tree) {
        let mut ss = SourceSet::new();
        let m = ss.add("m.cpp", src);
        let out = preprocess(&ss, m, &PpOptions::default()).unwrap();
        let prog = crate::parse::parse(out.tokens, m, "m.cpp").unwrap();
        let reg = crate::sema::Registry::build(&prog, &out.system_files);
        let clang = crate::emit::t_sem(&prog, &reg, crate::emit::SemOptions::PLAIN);
        let gimple = t_sem_gimple(&prog);
        (clang, gimple)
    }

    const SRC: &str = "double scale(double x, int n) {\n  double acc = 0.0;\n  for (int i = 0; i < n; i++) {\n    acc += x * i;\n  }\n  return acc;\n}";

    #[test]
    fn gimple_vocabulary_is_disjoint() {
        let (clang, gimple) = units(SRC);
        let clang_labels: std::collections::HashSet<String> =
            clang.preorder().map(|n| clang.label(n).to_string()).collect();
        let gimple_labels: std::collections::HashSet<String> =
            gimple.preorder().map(|n| gimple.label(n).to_string()).collect();
        assert!(
            clang_labels.is_disjoint(&gimple_labels),
            "vocabularies must not overlap: {:?}",
            clang_labels.intersection(&gimple_labels).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cross_compiler_comparison_is_meaningless() {
        // §IV-B: "not comparable in any meaningful way" — TED between the
        // two compilers' trees of the *same* source approaches dmax (every
        // node relabelled or replaced), while same-compiler comparison of
        // the same source is 0.
        let (clang, gimple) = units(SRC);
        let cross = svdist_ted(&clang, &gimple);
        let dmax = gimple.size().max(clang.size()) as u64;
        assert!(
            cross * 10 >= dmax * 8,
            "cross-compiler distance {cross} should approach dmax {dmax}"
        );
        let (clang2, gimple2) = units(SRC);
        assert_eq!(svdist_ted(&clang, &clang2), 0);
        assert_eq!(svdist_ted(&gimple, &gimple2), 0);
    }

    // svdist is a dev-dependency-free crate below svlang in the graph; a
    // tiny local TED avoids a dependency cycle (svdist depends on svtree
    // only, so we can't call it from svlang's tests without a dev-dep —
    // use label-multiset lower bound + size bound instead).
    fn svdist_ted(a: &Tree, b: &Tree) -> u64 {
        // Conservative TED lower bound: multiset-difference of labels.
        use std::collections::HashMap;
        let mut counts: HashMap<String, i64> = HashMap::new();
        for n in a.preorder() {
            *counts.entry(a.label(n).to_string()).or_default() += 1;
        }
        for n in b.preorder() {
            *counts.entry(b.label(n).to_string()).or_default() -= 1;
        }
        let pos: i64 = counts.values().filter(|v| **v > 0).sum();
        let neg: i64 = -counts.values().filter(|v| **v < 0).sum::<i64>();
        pos.max(neg) as u64
    }

    #[test]
    fn gimple_omp_codes_present() {
        let (_, gimple) = units(
            "void f(int n) {\n#pragma omp parallel for reduction(+:sum)\nfor (int i = 0; i < n; i++) { sum += i; }\n}",
        );
        let s = gimple.to_sexpr();
        assert!(s.contains("gimple_omp_parallel_for"), "{s}");
        assert!(s.contains("omp_clause(reduction)"), "{s}");
        assert!(s.contains("omp_clause(implicit_shared)"), "{s}");
    }

    #[test]
    fn gimple_acc_is_nop() {
        // GCC's OpenACC C path in this configuration: parsed, not expanded.
        let (_, with) = units(
            "void f(int n) {\n#pragma acc kernels\nfor (int i = 0; i < n; i++) { a[i] = 0.0; }\n}",
        );
        assert!(with.to_sexpr().contains("gimple_nop"));
    }

    #[test]
    fn loops_become_goto_style() {
        let (_, gimple) = units(SRC);
        let s = gimple.to_sexpr();
        assert!(s.contains("gimple_loop"), "{s}");
        assert!(s.contains("gimple_goto"), "{s}");
        assert!(s.contains("gimple_cond"), "{s}");
    }

    #[test]
    fn names_stripped_in_gimple_too() {
        let (_, a) = units("int f(int alpha) { return alpha + 1; }");
        let (_, b) = units("int g(int beta) { return beta + 1; }");
        assert_eq!(a.to_sexpr(), b.to_sexpr());
    }
}
