//! Recursive-descent parser: post-preprocessing tokens → [`Program`].
//!
//! The grammar is a pragmatic C++ subset sized for HPC mini-apps: functions,
//! structs with methods, templates-as-type-arguments, lambdas, CUDA/HIP
//! triple-chevron kernel launches, `static_cast`, and pragma-annotated
//! statements.  Ambiguities are resolved the way industrial C parsers do —
//! speculative parsing with backtracking (declaration-vs-expression,
//! template-argument-vs-less-than) — including the classic `>>` split when
//! closing nested template argument lists.

use crate::ast::*;
use crate::lex::{TokKind, Token};
use crate::source::{FileId, LangError, Result};

/// Parse a preprocessed token stream into a [`Program`].
pub fn parse(tokens: Vec<Token>, main_file: FileId, path: &str) -> Result<Program> {
    let mut p = Parser { toks: tokens, pos: 0, path, splits: Vec::new() };
    let mut items = Vec::new();
    while !p.at_end() {
        items.push(p.item()?);
    }
    Ok(Program { main_file, items })
}

/// Builtin scalar type keywords.
const BUILTIN_TYPES: &[&str] =
    &["void", "bool", "char", "int", "long", "size_t", "float", "double", "auto"];

/// Function attributes / specifiers accepted before the return type.
const FN_ATTRS: &[&str] =
    &["static", "inline", "constexpr", "__global__", "__device__", "__host__", "extern"];

struct Parser<'a> {
    toks: Vec<Token>,
    pos: usize,
    path: &'a str,
    /// Positions where a `>>` was split into `>` `>`, for backtracking undo.
    splits: Vec<usize>,
}

/// A backtracking mark.
#[derive(Clone, Copy)]
struct Mark {
    pos: usize,
    splits: usize,
}

impl Parser<'_> {
    // -- cursor ------------------------------------------------------------

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&TokKind> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn peek_at(&self, off: usize) -> Option<&TokKind> {
        self.toks.get(self.pos + off).map(|t| &t.kind)
    }

    fn file(&self) -> FileId {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|t| t.loc.file)
            .unwrap_or(FileId(0))
    }

    fn line(&self) -> u32 {
        self.toks.get(self.pos).or_else(|| self.toks.last()).map(|t| t.loc.line).unwrap_or(0)
    }

    fn prev_line(&self) -> u32 {
        self.toks.get(self.pos.saturating_sub(1)).map(|t| t.loc.line).unwrap_or(0)
    }

    fn bump(&mut self) -> Option<TokKind> {
        let k = self.toks.get(self.pos).map(|t| t.kind.clone());
        if k.is_some() {
            self.pos += 1;
        }
        k
    }

    fn err(&self, msg: impl Into<String>) -> LangError {
        LangError::new(self.path, self.line(), msg)
    }

    fn mark(&self) -> Mark {
        Mark { pos: self.pos, splits: self.splits.len() }
    }

    fn rewind(&mut self, m: Mark) {
        // Undo any `>>` splits performed after the mark.
        while self.splits.len() > m.splits {
            let at = self.splits.pop().unwrap();
            self.toks[at].kind = TokKind::Punct(">>");
        }
        self.pos = m.pos;
    }

    fn is_punct(&self, p: &str) -> bool {
        self.peek().is_some_and(|k| k.is_punct(p))
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.is_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{p}', found {}", self.describe())))
        }
    }

    /// Expect a closing `>` for a template list, splitting `>>`/`>>>` if
    /// needed.
    fn expect_template_close(&mut self) -> Result<()> {
        match self.peek() {
            Some(TokKind::Punct(">")) => {
                self.pos += 1;
                Ok(())
            }
            Some(TokKind::Punct(">>")) => {
                self.toks[self.pos].kind = TokKind::Punct(">");
                self.splits.push(self.pos);
                // Leave the remaining `>` for the outer list: rewrite this
                // token to `>` and do NOT advance — the outer close consumes
                // it.  (The split bookkeeping restores `>>` on rewind.)
                Ok(())
            }
            _ => Err(self.err(format!("expected '>', found {}", self.describe()))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(TokKind::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err(format!("expected identifier, found {}", self.describe()))),
        }
    }

    fn peek_ident(&self) -> Option<&str> {
        self.peek().and_then(|k| k.ident())
    }

    fn describe(&self) -> String {
        match self.peek() {
            None => "end of input".into(),
            Some(k) => format!("{k:?}"),
        }
    }

    // -- items ---------------------------------------------------------------

    fn item(&mut self) -> Result<Item> {
        let line = self.line();
        if let Some(TokKind::Pragma(inner)) = self.peek() {
            let inner = inner.clone();
            let file = self.file();
            self.pos += 1;
            let dir = parse_pragma(&inner, file, line, self.path)?;
            return Ok(Item::Pragma(dir));
        }
        if self.peek_ident() == Some("using") {
            self.pos += 1;
            // using namespace a::b;  /  using a::b;
            if self.peek_ident() == Some("namespace") {
                self.pos += 1;
            }
            let mut path = vec![self.ident()?];
            while self.eat_punct("::") {
                path.push(self.ident()?);
            }
            self.expect_punct(";")?;
            return Ok(Item::Using { path, line });
        }
        if self.peek_ident() == Some("struct") || self.peek_ident() == Some("class") {
            return self.struct_def().map(Item::Struct);
        }

        // Function or global: attrs, type, name, then '(' decides.
        let mut attrs = Vec::new();
        while let Some(id) = self.peek_ident() {
            if FN_ATTRS.contains(&id) {
                attrs.push(id.to_string());
                self.pos += 1;
                // `extern "C"` — swallow the linkage string.
                if attrs.last().map(String::as_str) == Some("extern") {
                    if let Some(TokKind::Str(_)) = self.peek() {
                        self.pos += 1;
                    }
                }
            } else {
                break;
            }
        }
        let file = self.file();
        let ty = self.parse_type()?;
        let name = self.ident()?;
        if self.is_punct("(") {
            let f = self.function_rest(attrs, ty, name, file, line)?;
            Ok(Item::Function(f))
        } else {
            let init = if self.eat_punct("=") { Some(self.expr()?) } else { None };
            self.expect_punct(";")?;
            Ok(Item::Global(VarDecl { file, ty, name, init, line }))
        }
    }

    fn struct_def(&mut self) -> Result<StructDef> {
        let line = self.line();
        let file = self.file();
        self.pos += 1; // struct / class
        let name = self.ident()?;
        self.expect_punct("{")?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while !self.is_punct("}") {
            // `public:` / `private:` access labels.
            if matches!(self.peek_ident(), Some("public") | Some("private"))
                && self.peek_at(1).is_some_and(|k| k.is_punct(":"))
            {
                self.pos += 2;
                continue;
            }
            let mline = self.line();
            let mut attrs = Vec::new();
            while let Some(id) = self.peek_ident() {
                if FN_ATTRS.contains(&id) {
                    attrs.push(id.to_string());
                    self.pos += 1;
                } else {
                    break;
                }
            }
            let mfile = self.file();
            let ty = self.parse_type()?;
            let mname = self.ident()?;
            if self.is_punct("(") {
                methods.push(self.function_rest(attrs, ty, mname, mfile, mline)?);
            } else {
                self.expect_punct(";")?;
                fields.push(Param { ty, name: mname, line: mline });
            }
        }
        self.expect_punct("}")?;
        let end_line = self.prev_line();
        self.eat_punct(";");
        Ok(StructDef { file, name, fields, methods, line, end_line })
    }

    fn function_rest(
        &mut self,
        attrs: Vec<String>,
        ret: Type,
        name: String,
        file: FileId,
        line: u32,
    ) -> Result<Function> {
        self.expect_punct("(")?;
        let params = self.params()?;
        self.expect_punct(")")?;
        // trailing qualifiers (const) on methods
        while self.peek_ident() == Some("const") {
            self.pos += 1;
        }
        let body = if self.eat_punct(";") { None } else { Some(self.block()?) };
        let end_line = self.prev_line();
        Ok(Function { file, attrs, ret, name, params, body, line, end_line })
    }

    fn params(&mut self) -> Result<Vec<Param>> {
        let mut out = Vec::new();
        if self.is_punct(")") {
            return Ok(out);
        }
        loop {
            let line = self.line();
            let ty = self.parse_type()?;
            // Parameter name is optional in prototypes.
            let name = match self.peek() {
                Some(TokKind::Ident(_)) => self.ident()?,
                _ => String::new(),
            };
            out.push(Param { ty, name, line });
            if !self.eat_punct(",") {
                break;
            }
        }
        Ok(out)
    }

    // -- types ---------------------------------------------------------------

    /// Parse a type; errors if the tokens do not start one.
    fn parse_type(&mut self) -> Result<Type> {
        let mut constness = false;
        if self.peek_ident() == Some("const") {
            constness = true;
            self.pos += 1;
        }
        // `class K` / `typename T` tags in template-argument position
        // (SYCL kernel names): the tag is dropped, the name parses as a
        // named type.
        if matches!(self.peek_ident(), Some("class") | Some("typename"))
            && matches!(self.peek_at(1), Some(TokKind::Ident(_)))
        {
            self.pos += 1;
        }
        let base = match self.peek_ident().map(str::to_owned).as_deref() {
            Some(id) if BUILTIN_TYPES.contains(&id) => {
                let t = match id {
                    "void" => Type::Void,
                    "bool" => Type::Bool,
                    "char" => Type::Char,
                    "int" => Type::Int,
                    "long" => Type::Long,
                    "size_t" => Type::Size,
                    "float" => Type::Float,
                    "double" => Type::Double,
                    "auto" => Type::Auto,
                    _ => unreachable!(),
                };
                self.pos += 1;
                // `long long`, `long double` — fold into Long/Double.
                if id == "long" {
                    match self.peek_ident() {
                        Some("long") => {
                            self.pos += 1;
                        }
                        Some("double") => {
                            self.pos += 1;
                            return self.type_suffixes(Type::Double, constness);
                        }
                        _ => {}
                    }
                }
                t
            }
            Some(_) => {
                let mut path = vec![self.ident()?];
                while self.is_punct("::") && matches!(self.peek_at(1), Some(TokKind::Ident(_))) {
                    self.pos += 1;
                    path.push(self.ident()?);
                }
                let args = if self.is_punct("<") { self.template_args()? } else { Vec::new() };
                Type::Named { path, args }
            }
            None => return Err(self.err("expected type")),
        };
        self.type_suffixes(base, constness)
    }

    fn type_suffixes(&mut self, mut t: Type, constness: bool) -> Result<Type> {
        if constness {
            t = Type::Const(Box::new(t));
        }
        loop {
            if self.eat_punct("*") {
                t = Type::Ptr(Box::new(t));
                // `double *const` — trailing const folds in.
                if self.peek_ident() == Some("const") {
                    self.pos += 1;
                    t = Type::Const(Box::new(t));
                }
            } else if self.eat_punct("&") {
                t = Type::Ref(Box::new(t));
            } else {
                return Ok(t);
            }
        }
    }

    fn template_args(&mut self) -> Result<Vec<Type>> {
        self.expect_punct("<")?;
        let mut args = Vec::new();
        if !self.is_punct(">") {
            loop {
                match self.peek() {
                    Some(TokKind::Int(v)) => {
                        args.push(Type::IntConst(*v));
                        self.pos += 1;
                    }
                    _ => args.push(self.parse_type()?),
                }
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_template_close()?;
        Ok(args)
    }

    // -- statements ------------------------------------------------------------

    fn block(&mut self) -> Result<Block> {
        let line = self.line();
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.is_punct("}") {
            if self.at_end() {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect_punct("}")?;
        let end_line = self.prev_line();
        Ok(Block { stmts, line, end_line })
    }

    /// A statement body: `{ … }` or a single statement wrapped in a block.
    fn body(&mut self) -> Result<Block> {
        if self.is_punct("{") {
            self.block()
        } else {
            let line = self.line();
            let s = self.stmt()?;
            let end_line = self.prev_line();
            Ok(Block { stmts: vec![s], line, end_line })
        }
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let line = self.line();
        if let Some(TokKind::Pragma(inner)) = self.peek() {
            let inner = inner.clone();
            let file = self.file();
            self.pos += 1;
            let dir = parse_pragma(&inner, file, line, self.path)?;
            let stmt = if dir.attaches_to_statement() && !self.at_end() && !self.is_punct("}") {
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(Stmt::Pragma { dir, stmt, line });
        }
        match self.peek_ident() {
            Some("if") => return self.if_stmt(),
            Some("for") => return self.for_stmt(),
            Some("while") => return self.while_stmt(),
            Some("switch") => return self.switch_stmt(),
            Some("return") => {
                self.pos += 1;
                let expr = if self.is_punct(";") { None } else { Some(self.expr()?) };
                self.expect_punct(";")?;
                return Ok(Stmt::Return { expr, line });
            }
            Some("break") => {
                self.pos += 1;
                self.expect_punct(";")?;
                return Ok(Stmt::Break { line });
            }
            Some("continue") => {
                self.pos += 1;
                self.expect_punct(";")?;
                return Ok(Stmt::Continue { line });
            }
            _ => {}
        }
        if self.is_punct("{") {
            return Ok(Stmt::Block(self.block()?));
        }
        // Declaration or expression.
        if let Some(decl) = self.try_var_decl()? {
            return Ok(Stmt::Decl(decl));
        }
        let expr = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Expr { expr, line })
    }

    /// Speculatively parse `type name [= init | (args) | {args}] ;`.
    fn try_var_decl(&mut self) -> Result<Option<VarDecl>> {
        let m = self.mark();
        let line = self.line();
        let file = self.file();
        let ty = match self.parse_type() {
            Ok(t) => t,
            Err(_) => {
                self.rewind(m);
                return Ok(None);
            }
        };
        let name = match self.peek() {
            Some(TokKind::Ident(s)) if !BUILTIN_TYPES.contains(&s.as_str()) => {
                let n = s.clone();
                self.pos += 1;
                n
            }
            _ => {
                self.rewind(m);
                return Ok(None);
            }
        };
        // Declarator tail decides whether this really is a declaration.
        if self.eat_punct(";") {
            return Ok(Some(VarDecl { file, ty, name, init: None, line }));
        }
        if self.eat_punct("=") {
            let init = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Some(VarDecl { file, ty, name, init: Some(init), line }));
        }
        if self.is_punct("(") || self.is_punct("{") {
            // Constructor-style init: `sycl::queue q(dev);` / `T x{a, b};`
            let brace = self.is_punct("{");
            let close = if brace { "}" } else { ")" };
            self.pos += 1;
            let mut args = Vec::new();
            if !self.is_punct(close) {
                loop {
                    args.push(self.expr()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                }
            }
            if !self.eat_punct(close) || !self.eat_punct(";") {
                self.rewind(m);
                return Ok(None);
            }
            let init = Expr::new(ExprKind::Construct { ty: ty.clone(), args, brace }, line);
            return Ok(Some(VarDecl { file, ty, name, init: Some(init), line }));
        }
        self.rewind(m);
        Ok(None)
    }

    fn if_stmt(&mut self) -> Result<Stmt> {
        let line = self.line();
        self.pos += 1; // if
        self.expect_punct("(")?;
        let cond = self.expr()?;
        self.expect_punct(")")?;
        let then_blk = self.body()?;
        let else_blk = if self.peek_ident() == Some("else") {
            self.pos += 1;
            if self.peek_ident() == Some("if") {
                // `else if` chains: wrap the nested if in a block.
                let eline = self.line();
                let nested = self.if_stmt()?;
                let end_line = self.prev_line();
                Some(Block { stmts: vec![nested], line: eline, end_line })
            } else {
                Some(self.body()?)
            }
        } else {
            None
        };
        Ok(Stmt::If { cond, then_blk, else_blk, line })
    }

    fn for_stmt(&mut self) -> Result<Stmt> {
        let line = self.line();
        self.pos += 1; // for
        self.expect_punct("(")?;
        let init = if self.eat_punct(";") {
            None
        } else if let Some(d) = self.try_var_decl()? {
            Some(Box::new(Stmt::Decl(d)))
        } else {
            let eline = self.line();
            let e = self.expr()?;
            self.expect_punct(";")?;
            Some(Box::new(Stmt::Expr { expr: e, line: eline }))
        };
        let cond = if self.is_punct(";") { None } else { Some(self.expr()?) };
        self.expect_punct(";")?;
        let step = if self.is_punct(")") { None } else { Some(self.expr()?) };
        self.expect_punct(")")?;
        let body = self.body()?;
        Ok(Stmt::For { init, cond, step, body, line })
    }

    fn switch_stmt(&mut self) -> Result<Stmt> {
        let line = self.line();
        self.pos += 1; // switch
        self.expect_punct("(")?;
        let scrutinee = self.expr()?;
        self.expect_punct(")")?;
        self.expect_punct("{")?;
        let mut arms: Vec<SwitchArm> = Vec::new();
        while !self.is_punct("}") {
            let aline = self.line();
            let value = match self.peek_ident() {
                Some("case") => {
                    self.pos += 1;
                    let neg = self.eat_punct("-");
                    match self.bump() {
                        Some(TokKind::Int(v)) => Some(if neg { -v } else { v }),
                        Some(TokKind::Char(c)) => Some(c as i64),
                        _ => return Err(self.err("expected integer case label")),
                    }
                }
                Some("default") => {
                    self.pos += 1;
                    None
                }
                _ => return Err(self.err("expected 'case' or 'default' in switch")),
            };
            self.expect_punct(":")?;
            let mut stmts = Vec::new();
            while !self.is_punct("}")
                && !matches!(self.peek_ident(), Some("case") | Some("default"))
            {
                stmts.push(self.stmt()?);
            }
            arms.push(SwitchArm { value, stmts, line: aline });
        }
        self.expect_punct("}")?;
        Ok(Stmt::Switch { scrutinee, arms, line })
    }

    fn while_stmt(&mut self) -> Result<Stmt> {
        let line = self.line();
        self.pos += 1; // while
        self.expect_punct("(")?;
        let cond = self.expr()?;
        self.expect_punct(")")?;
        let body = self.body()?;
        Ok(Stmt::While { cond, body, line })
    }

    // -- expressions -------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.assign()
    }

    fn assign(&mut self) -> Result<Expr> {
        let line = self.line();
        let lhs = self.ternary()?;
        for op in ["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="] {
            if self.is_punct(op) {
                self.pos += 1;
                let rhs = self.assign()?; // right associative
                let op: &'static str = leak_op(op);
                return Ok(Expr::new(
                    ExprKind::Assign { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                    line,
                ));
            }
        }
        Ok(lhs)
    }

    fn ternary(&mut self) -> Result<Expr> {
        let line = self.line();
        let cond = self.binary(0)?;
        if self.eat_punct("?") {
            let then_e = self.expr()?;
            self.expect_punct(":")?;
            let else_e = self.ternary()?;
            return Ok(Expr::new(
                ExprKind::Ternary {
                    cond: Box::new(cond),
                    then_e: Box::new(then_e),
                    else_e: Box::new(else_e),
                },
                line,
            ));
        }
        Ok(cond)
    }

    /// Binary operators by precedence level (0 = lowest).
    fn binary(&mut self, level: usize) -> Result<Expr> {
        const LEVELS: &[&[&str]] = &[
            &["||"],
            &["&&"],
            &["|"],
            &["^"],
            &["&"],
            &["==", "!="],
            &["<", ">", "<=", ">="],
            &["<<", ">>"],
            &["+", "-"],
            &["*", "/", "%"],
        ];
        if level >= LEVELS.len() {
            return self.unary();
        }
        let line = self.line();
        let mut lhs = self.binary(level + 1)?;
        'outer: loop {
            for op in LEVELS[level] {
                if self.is_punct(op) {
                    self.pos += 1;
                    let rhs = self.binary(level + 1)?;
                    lhs = Expr::new(
                        ExprKind::Binary {
                            op: leak_op(op),
                            lhs: Box::new(lhs),
                            rhs: Box::new(rhs),
                        },
                        line,
                    );
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        let line = self.line();
        for op in ["!", "-", "+", "*", "&", "~", "++", "--"] {
            if self.is_punct(op) {
                self.pos += 1;
                let e = self.unary()?;
                return Ok(Expr::new(
                    ExprKind::Unary { op: leak_op(op), expr: Box::new(e), postfix: false },
                    line,
                ));
            }
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            if self.is_punct("(") {
                let args = self.call_args()?;
                e = Expr::new(
                    ExprKind::Call { callee: Box::new(e), targs: Vec::new(), args },
                    line,
                );
            } else if self.is_punct("[") {
                self.pos += 1;
                let index = self.expr()?;
                self.expect_punct("]")?;
                e = Expr::new(ExprKind::Index { base: Box::new(e), index: Box::new(index) }, line);
            } else if self.is_punct(".") || self.is_punct("->") {
                let arrow = self.is_punct("->");
                self.pos += 1;
                let member = self.ident()?;
                e = Expr::new(ExprKind::Member { base: Box::new(e), member, arrow }, line);
            } else if self.is_punct("++") || self.is_punct("--") {
                let op = if self.is_punct("++") { "++" } else { "--" };
                self.pos += 1;
                e = Expr::new(
                    ExprKind::Unary { op: leak_op(op), expr: Box::new(e), postfix: true },
                    line,
                );
            } else if self.is_punct("<<<") {
                // CUDA/HIP launch: callee<<<grid, block>>>(args)
                self.pos += 1;
                let grid = self.expr()?;
                self.expect_punct(",")?;
                let block = self.expr()?;
                self.expect_punct(">>>")?;
                let args = if self.is_punct("(") { self.call_args()? } else { Vec::new() };
                e = Expr::new(
                    ExprKind::KernelLaunch {
                        callee: Box::new(e),
                        grid: Box::new(grid),
                        block: Box::new(block),
                        args,
                    },
                    line,
                );
            } else if self.is_punct("<")
                && matches!(e.kind, ExprKind::Path(_) | ExprKind::Member { .. })
            {
                // Maybe an explicit template call: path<targs>(args).
                let m = self.mark();
                match self.template_args() {
                    Ok(targs) if self.is_punct("(") => {
                        let args = self.call_args()?;
                        e = Expr::new(ExprKind::Call { callee: Box::new(e), targs, args }, line);
                    }
                    _ => {
                        self.rewind(m);
                        return Ok(e); // `<` is a comparison; binary() handles it
                    }
                }
            } else {
                return Ok(e);
            }
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>> {
        self.expect_punct("(")?;
        let mut args = Vec::new();
        if !self.is_punct(")") {
            loop {
                args.push(self.expr()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_punct(")")?;
        Ok(args)
    }

    fn primary(&mut self) -> Result<Expr> {
        let line = self.line();
        match self.peek().cloned() {
            Some(TokKind::Int(v)) => {
                self.pos += 1;
                Ok(Expr::new(ExprKind::Int(v), line))
            }
            Some(TokKind::Real(v)) => {
                self.pos += 1;
                Ok(Expr::new(ExprKind::Real(v), line))
            }
            Some(TokKind::Str(s)) => {
                self.pos += 1;
                Ok(Expr::new(ExprKind::Str(s), line))
            }
            Some(TokKind::Char(c)) => {
                self.pos += 1;
                Ok(Expr::new(ExprKind::Char(c), line))
            }
            Some(TokKind::Ident(id)) => {
                match id.as_str() {
                    "true" | "false" => {
                        self.pos += 1;
                        return Ok(Expr::new(ExprKind::Bool(id == "true"), line));
                    }
                    "static_cast" | "reinterpret_cast" | "const_cast" => {
                        self.pos += 1;
                        self.expect_punct("<")?;
                        let ty = self.parse_type()?;
                        self.expect_template_close()?;
                        self.expect_punct("(")?;
                        let inner = self.expr()?;
                        self.expect_punct(")")?;
                        return Ok(Expr::new(ExprKind::Cast { ty, expr: Box::new(inner) }, line));
                    }
                    "sizeof" => {
                        self.pos += 1;
                        self.expect_punct("(")?;
                        // sizeof(type) or sizeof(expr)
                        let m = self.mark();
                        if let Ok(ty) = self.parse_type() {
                            if self.eat_punct(")") {
                                return Ok(Expr::new(
                                    ExprKind::Call {
                                        callee: Box::new(Expr::new(
                                            ExprKind::Path(vec!["sizeof".into()]),
                                            line,
                                        )),
                                        targs: vec![ty],
                                        args: Vec::new(),
                                    },
                                    line,
                                ));
                            }
                        }
                        self.rewind(m);
                        let inner = self.expr()?;
                        self.expect_punct(")")?;
                        return Ok(Expr::new(
                            ExprKind::Call {
                                callee: Box::new(Expr::new(
                                    ExprKind::Path(vec!["sizeof".into()]),
                                    line,
                                )),
                                targs: Vec::new(),
                                args: vec![inner],
                            },
                            line,
                        ));
                    }
                    _ => {}
                }
                // Qualified path.
                let mut path = vec![self.ident()?];
                while self.is_punct("::") && matches!(self.peek_at(1), Some(TokKind::Ident(_))) {
                    self.pos += 1;
                    path.push(self.ident()?);
                }
                // `Type{…}` brace construction.
                if self.is_punct("{") {
                    let m = self.mark();
                    self.pos += 1;
                    let mut args = Vec::new();
                    let mut ok = true;
                    if !self.is_punct("}") {
                        loop {
                            match self.expr() {
                                Ok(a) => args.push(a),
                                Err(_) => {
                                    ok = false;
                                    break;
                                }
                            }
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                    }
                    if ok && self.eat_punct("}") {
                        return Ok(Expr::new(
                            ExprKind::Construct {
                                ty: Type::Named { path, args: Vec::new() },
                                args,
                                brace: true,
                            },
                            line,
                        ));
                    }
                    self.rewind(m);
                }
                Ok(Expr::new(ExprKind::Path(path), line))
            }
            Some(TokKind::Punct("(")) => {
                // Cast `(builtin)expr` or parenthesised expression.
                let m = self.mark();
                self.pos += 1;
                if let Some(id) = self.peek_ident() {
                    if BUILTIN_TYPES.contains(&id) || id == "const" {
                        if let Ok(ty) = self.parse_type() {
                            if self.eat_punct(")") {
                                let inner = self.unary()?;
                                return Ok(Expr::new(
                                    ExprKind::Cast { ty, expr: Box::new(inner) },
                                    line,
                                ));
                            }
                        }
                        self.rewind(m);
                        self.pos += 1; // re-consume '('
                    }
                }
                let inner = self.expr()?;
                self.expect_punct(")")?;
                Ok(inner)
            }
            Some(TokKind::Punct("[")) => self.lambda(),
            Some(TokKind::Punct("{")) => {
                self.pos += 1;
                let mut items = Vec::new();
                if !self.is_punct("}") {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                }
                self.expect_punct("}")?;
                Ok(Expr::new(ExprKind::InitList(items), line))
            }
            _ => Err(self.err(format!("expected expression, found {}", self.describe()))),
        }
    }

    fn lambda(&mut self) -> Result<Expr> {
        let line = self.line();
        self.expect_punct("[")?;
        // Capture list stored as raw text: `=`, `&`, `x, &y`, or empty.
        let mut capture = String::new();
        while !self.is_punct("]") {
            let k = self.bump().ok_or_else(|| self.err("unterminated lambda capture"))?;
            if !capture.is_empty() {
                capture.push(' ');
            }
            capture.push_str(&crate::pp::render_token(&k));
        }
        self.expect_punct("]")?;
        let params = if self.is_punct("(") {
            self.pos += 1;
            let p = self.params()?;
            self.expect_punct(")")?;
            p
        } else {
            Vec::new()
        };
        // optional `mutable` / attribute-ish identifiers before the body
        while matches!(self.peek_ident(), Some("mutable") | Some("noexcept")) {
            self.pos += 1;
        }
        let body = self.block()?;
        Ok(Expr::new(ExprKind::Lambda { capture, params, body }, line))
    }
}

/// Operator strings are from fixed tables, so interning them as 'static is
/// just a table lookup.
fn leak_op(op: &str) -> &'static str {
    const OPS: &[&str] = &[
        "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=", "||", "&&", "|", "^",
        "&", "==", "!=", "<", ">", "<=", ">=", "<<", ">>", "+", "-", "*", "/", "%", "!", "~", "++",
        "--",
    ];
    OPS.iter().find(|&&o| o == op).copied().expect("operator not in table")
}

/// Directive words recognised as part of an OpenMP/OpenACC directive name
/// (everything after them is a clause).
const DIRECTIVE_WORDS: &[&str] = &[
    "parallel",
    "for",
    "simd",
    "target",
    "teams",
    "distribute",
    "taskloop",
    "task",
    "sections",
    "section",
    "single",
    "atomic",
    "critical",
    "barrier",
    "data",
    "enter",
    "exit",
    "update",
    "declare",
    "end",
    "loop",
    "kernels",
    "routine",
    "masked",
    "taskwait",
    "flush",
    "threadprivate",
];

/// Parse the content tokens of a `#pragma` into a [`Pragma`].
pub fn parse_pragma(tokens: &[Token], file: FileId, line: u32, path: &str) -> Result<Pragma> {
    let mut i = 0usize;
    let domain = tokens
        .get(i)
        .and_then(|t| t.kind.ident())
        .ok_or_else(|| LangError::new(path, line, "empty pragma"))?
        .to_string();
    i += 1;
    let mut dir_path = Vec::new();
    // Directive words continue while they are known words NOT followed by
    // `(` (a known word followed by `(` could still be a directive — OpenMP
    // has `if(...)`-style clauses but no parenthesised directive words).
    while let Some(t) = tokens.get(i) {
        match t.kind.ident() {
            Some(w)
                if DIRECTIVE_WORDS.contains(&w)
                    && !tokens.get(i + 1).is_some_and(|n| n.kind.is_punct("(")) =>
            {
                dir_path.push(w.to_string());
                i += 1;
            }
            _ => break,
        }
    }
    let mut clauses = Vec::new();
    while let Some(t) = tokens.get(i) {
        let name = t
            .kind
            .ident()
            .ok_or_else(|| LangError::new(path, line, "expected pragma clause name"))?
            .to_string();
        i += 1;
        let mut args = Vec::new();
        if tokens.get(i).is_some_and(|t| t.kind.is_punct("(")) {
            i += 1;
            let mut depth = 1usize;
            while let Some(t) = tokens.get(i) {
                if t.kind.is_punct("(") {
                    depth += 1;
                } else if t.kind.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                args.push(crate::pp::render_token(&t.kind));
                i += 1;
            }
        }
        clauses.push(Clause { name, args });
    }
    Ok(Pragma { file, domain, path: dir_path, clauses, line })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pp::{preprocess, PpOptions};
    use crate::source::SourceSet;

    fn parse_src(src: &str) -> Program {
        let mut ss = SourceSet::new();
        let m = ss.add("t.cpp", src);
        let out = preprocess(&ss, m, &PpOptions::default()).unwrap();
        parse(out.tokens, m, "t.cpp").unwrap()
    }

    fn parse_err(src: &str) -> LangError {
        let mut ss = SourceSet::new();
        let m = ss.add("t.cpp", src);
        let out = preprocess(&ss, m, &PpOptions::default()).unwrap();
        parse(out.tokens, m, "t.cpp").unwrap_err()
    }

    #[test]
    fn simple_function() {
        let p = parse_src("int main() { return 0; }");
        assert_eq!(p.items.len(), 1);
        let Item::Function(f) = &p.items[0] else { panic!() };
        assert_eq!(f.name, "main");
        assert_eq!(f.ret, Type::Int);
        let body = f.body.as_ref().unwrap();
        assert!(matches!(body.stmts[0], Stmt::Return { .. }));
    }

    #[test]
    fn globals_and_using() {
        let p = parse_src("using namespace std;\ndouble scalar = 0.4;\nint n;");
        assert!(
            matches!(&p.items[0], Item::Using { path, .. } if path == &vec!["std".to_string()])
        );
        assert!(matches!(&p.items[1], Item::Global(v) if v.name == "scalar" && v.init.is_some()));
        assert!(matches!(&p.items[2], Item::Global(v) if v.init.is_none()));
    }

    #[test]
    fn function_attrs_cuda() {
        let p = parse_src("__global__ void k(double* a) { a[0] = 1.0; }");
        let Item::Function(f) = &p.items[0] else { panic!() };
        assert!(f.is_kernel());
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.params[0].ty, Type::Ptr(Box::new(Type::Double)));
    }

    #[test]
    fn struct_with_fields_and_methods() {
        let p = parse_src(
            "struct Vec3 { double x; double y; double z;\n double norm() { return x; } };",
        );
        let Item::Struct(s) = &p.items[0] else { panic!() };
        assert_eq!(s.name, "Vec3");
        assert_eq!(s.fields.len(), 3);
        assert_eq!(s.methods.len(), 1);
        assert_eq!(s.methods[0].name, "norm");
    }

    #[test]
    fn templated_types_nested() {
        let p = parse_src("std::vector<std::vector<double>> grid;");
        let Item::Global(v) = &p.items[0] else { panic!() };
        let Type::Named { path, args } = &v.ty else { panic!() };
        assert_eq!(path.join("::"), "std::vector");
        let Type::Named { path: p2, args: a2 } = &args[0] else { panic!() };
        assert_eq!(p2.join("::"), "std::vector");
        assert_eq!(a2[0], Type::Double);
    }

    #[test]
    fn template_int_args() {
        let p = parse_src("sycl::accessor<double, 1> acc;");
        let Item::Global(v) = &p.items[0] else { panic!() };
        let Type::Named { args, .. } = &v.ty else { panic!() };
        assert_eq!(args[1], Type::IntConst(1));
    }

    #[test]
    fn decl_vs_expr_disambiguation() {
        let p = parse_src("void f() { foo(1); sycl::queue q; int x = 2; x = bar(x); }");
        let Item::Function(f) = &p.items[0] else { panic!() };
        let stmts = &f.body.as_ref().unwrap().stmts;
        assert!(matches!(&stmts[0], Stmt::Expr { .. }));
        assert!(matches!(&stmts[1], Stmt::Decl(_)));
        assert!(matches!(&stmts[2], Stmt::Decl(_)));
        assert!(matches!(&stmts[3], Stmt::Expr { .. }));
    }

    #[test]
    fn constructor_style_decl() {
        let p = parse_src("void f() { sycl::buffer<double> b(data, n); }");
        let Item::Function(f) = &p.items[0] else { panic!() };
        let Stmt::Decl(v) = &f.body.as_ref().unwrap().stmts[0] else { panic!() };
        let Some(Expr { kind: ExprKind::Construct { args, brace, .. }, .. }) = &v.init else {
            panic!()
        };
        assert_eq!(args.len(), 2);
        assert!(!brace);
    }

    #[test]
    fn for_loop_canonical() {
        let p = parse_src("void f(int n) { for (int i = 0; i < n; i++) { g(i); } }");
        let Item::Function(f) = &p.items[0] else { panic!() };
        let Stmt::For { init, cond, step, body, .. } = &f.body.as_ref().unwrap().stmts[0] else {
            panic!()
        };
        assert!(matches!(init.as_deref(), Some(Stmt::Decl(_))));
        assert!(cond.is_some());
        assert!(matches!(
            step.as_ref().unwrap().kind,
            ExprKind::Unary { op: "++", postfix: true, .. }
        ));
        assert_eq!(body.stmts.len(), 1);
    }

    #[test]
    fn unbraced_bodies() {
        let p = parse_src("void f(int n) { for (int i = 0; i < n; ++i) a[i] = b[i]; }");
        let Item::Function(f) = &p.items[0] else { panic!() };
        let Stmt::For { body, .. } = &f.body.as_ref().unwrap().stmts[0] else { panic!() };
        assert_eq!(body.stmts.len(), 1);
    }

    #[test]
    fn if_else_chain() {
        let p = parse_src("void f(int x) { if (x > 0) g(); else if (x < 0) h(); else k(); }");
        let Item::Function(f) = &p.items[0] else { panic!() };
        let Stmt::If { else_blk, .. } = &f.body.as_ref().unwrap().stmts[0] else { panic!() };
        let nested = &else_blk.as_ref().unwrap().stmts[0];
        let Stmt::If { else_blk: inner_else, .. } = nested else { panic!() };
        assert!(inner_else.is_some());
    }

    #[test]
    fn while_break_continue() {
        let p = parse_src("void f() { while (true) { if (done()) break; continue; } }");
        let Item::Function(f) = &p.items[0] else { panic!() };
        assert!(matches!(&f.body.as_ref().unwrap().stmts[0], Stmt::While { .. }));
    }

    #[test]
    fn operator_precedence() {
        let p = parse_src("int x = 1 + 2 * 3;");
        let Item::Global(v) = &p.items[0] else { panic!() };
        let ExprKind::Binary { op: "+", rhs, .. } = &v.init.as_ref().unwrap().kind else {
            panic!()
        };
        assert!(matches!(rhs.kind, ExprKind::Binary { op: "*", .. }));
    }

    #[test]
    fn assignment_right_assoc() {
        let p = parse_src("void f() { a = b = c; }");
        let Item::Function(f) = &p.items[0] else { panic!() };
        let Stmt::Expr { expr, .. } = &f.body.as_ref().unwrap().stmts[0] else { panic!() };
        let ExprKind::Assign { rhs, .. } = &expr.kind else { panic!() };
        assert!(matches!(rhs.kind, ExprKind::Assign { .. }));
    }

    #[test]
    fn ternary_expression() {
        let p = parse_src("int x = a > b ? a : b;");
        let Item::Global(v) = &p.items[0] else { panic!() };
        assert!(matches!(v.init.as_ref().unwrap().kind, ExprKind::Ternary { .. }));
    }

    #[test]
    fn member_and_index_chains() {
        let p = parse_src("void f() { obj.field[i]->next.go(); }");
        let Item::Function(f) = &p.items[0] else { panic!() };
        let Stmt::Expr { expr, .. } = &f.body.as_ref().unwrap().stmts[0] else { panic!() };
        assert!(matches!(expr.kind, ExprKind::Call { .. }));
    }

    #[test]
    fn qualified_call_with_template_args() {
        let p = parse_src("void f() { std::fill<double>(a, b, 0.0); }");
        let Item::Function(f) = &p.items[0] else { panic!() };
        let Stmt::Expr { expr, .. } = &f.body.as_ref().unwrap().stmts[0] else { panic!() };
        let ExprKind::Call { callee, targs, args } = &expr.kind else { panic!() };
        assert!(matches!(&callee.kind, ExprKind::Path(p) if p.join("::") == "std::fill"));
        assert_eq!(targs.len(), 1);
        assert_eq!(args.len(), 3);
    }

    #[test]
    fn less_than_not_template() {
        let p = parse_src("bool f(int a, int b) { return a < b && b < c; }");
        let Item::Function(f) = &p.items[0] else { panic!() };
        let Stmt::Return { expr, .. } = &f.body.as_ref().unwrap().stmts[0] else { panic!() };
        assert!(matches!(expr.as_ref().unwrap().kind, ExprKind::Binary { op: "&&", .. }));
    }

    #[test]
    fn kernel_launch_triple_chevron() {
        let p = parse_src("void f() { add_kernel<<<blocks, threads>>>(a, b, c); }");
        let Item::Function(f) = &p.items[0] else { panic!() };
        let Stmt::Expr { expr, .. } = &f.body.as_ref().unwrap().stmts[0] else { panic!() };
        let ExprKind::KernelLaunch { args, .. } = &expr.kind else { panic!() };
        assert_eq!(args.len(), 3);
    }

    #[test]
    fn lambda_expression() {
        let p = parse_src(
            "void f(sycl::handler& h) { h.parallel_for(r, [=](sycl::id<1> i) { c[i] = a[i]; }); }",
        );
        let Item::Function(f) = &p.items[0] else { panic!() };
        let Stmt::Expr { expr, .. } = &f.body.as_ref().unwrap().stmts[0] else { panic!() };
        let ExprKind::Call { args, .. } = &expr.kind else { panic!() };
        let ExprKind::Lambda { capture, params, body } = &args[1].kind else { panic!() };
        assert_eq!(capture, "=");
        assert_eq!(params.len(), 1);
        assert_eq!(body.stmts.len(), 1);
    }

    #[test]
    fn static_cast_expression() {
        let p = parse_src("double d = static_cast<double>(n);");
        let Item::Global(v) = &p.items[0] else { panic!() };
        let ExprKind::Cast { ty, .. } = &v.init.as_ref().unwrap().kind else { panic!() };
        assert_eq!(*ty, Type::Double);
    }

    #[test]
    fn c_style_cast_of_builtin() {
        let p = parse_src("void f() { x = (double)n * 0.5; }");
        let Item::Function(f) = &p.items[0] else { panic!() };
        let Stmt::Expr { expr, .. } = &f.body.as_ref().unwrap().stmts[0] else { panic!() };
        let ExprKind::Assign { rhs, .. } = &expr.kind else { panic!() };
        let ExprKind::Binary { lhs, .. } = &rhs.kind else { panic!() };
        assert!(matches!(lhs.kind, ExprKind::Cast { .. }));
    }

    #[test]
    fn sizeof_type_and_expr() {
        let p = parse_src("void f() { m = malloc(n * sizeof(double)); k = sizeof(x); }");
        let Item::Function(f) = &p.items[0] else { panic!() };
        assert_eq!(f.body.as_ref().unwrap().stmts.len(), 2);
    }

    #[test]
    fn pragma_attaches_to_loop() {
        let p = parse_src(
            "void f(int n) {\n#pragma omp parallel for schedule(static)\nfor (int i = 0; i < n; i++) a[i] = 0.0; }",
        );
        let Item::Function(f) = &p.items[0] else { panic!() };
        let Stmt::Pragma { dir, stmt, .. } = &f.body.as_ref().unwrap().stmts[0] else { panic!() };
        assert_eq!(dir.domain, "omp");
        assert_eq!(dir.path, vec!["parallel", "for"]);
        assert_eq!(dir.clauses[0].name, "schedule");
        assert!(matches!(stmt.as_deref(), Some(Stmt::For { .. })));
    }

    #[test]
    fn pragma_reduction_clause_args() {
        let p = parse_src(
            "void f(int n) {\n#pragma omp parallel for reduction(+:sum)\nfor (int i = 0; i < n; i++) sum += a[i]; }",
        );
        let Item::Function(f) = &p.items[0] else { panic!() };
        let Stmt::Pragma { dir, .. } = &f.body.as_ref().unwrap().stmts[0] else { panic!() };
        let red = &dir.clauses[0];
        assert_eq!(red.name, "reduction");
        assert_eq!(red.args, vec!["+", ":", "sum"]);
    }

    #[test]
    fn standalone_pragma_no_attach() {
        let p = parse_src("void f() {\n#pragma omp barrier\ng(); }");
        let Item::Function(f) = &p.items[0] else { panic!() };
        let stmts = &f.body.as_ref().unwrap().stmts;
        let Stmt::Pragma { stmt, .. } = &stmts[0] else { panic!() };
        assert!(stmt.is_none());
        assert!(matches!(&stmts[1], Stmt::Expr { .. }));
    }

    #[test]
    fn top_level_pragma_item() {
        let p = parse_src("#pragma omp declare target\ndouble f(double x) { return x; }\n#pragma omp end declare target");
        assert!(matches!(&p.items[0], Item::Pragma(d) if d.path == vec!["declare", "target"]));
        assert!(matches!(&p.items[1], Item::Function(_)));
        assert!(matches!(&p.items[2], Item::Pragma(_)));
    }

    #[test]
    fn target_map_clauses() {
        let p = parse_src(
            "void f(int n) {\n#pragma omp target teams distribute parallel for map(tofrom: a)\nfor (int i = 0; i < n; i++) a[i] = 0.0; }",
        );
        let Item::Function(f) = &p.items[0] else { panic!() };
        let Stmt::Pragma { dir, .. } = &f.body.as_ref().unwrap().stmts[0] else { panic!() };
        assert_eq!(dir.path, vec!["target", "teams", "distribute", "parallel", "for"]);
        assert_eq!(dir.clauses[0].name, "map");
    }

    #[test]
    fn brace_construct_and_init_list() {
        let p = parse_src("void f() { auto r = sycl::range{n}; init({1, 2, 3}); }");
        let Item::Function(f) = &p.items[0] else { panic!() };
        let stmts = &f.body.as_ref().unwrap().stmts;
        let Stmt::Decl(v) = &stmts[0] else { panic!() };
        assert!(matches!(v.init.as_ref().unwrap().kind, ExprKind::Construct { brace: true, .. }));
        let Stmt::Expr { expr, .. } = &stmts[1] else { panic!() };
        let ExprKind::Call { args, .. } = &expr.kind else { panic!() };
        assert!(matches!(args[0].kind, ExprKind::InitList(_)));
    }

    #[test]
    fn error_reports_line() {
        let e = parse_err("void f() {\n  int x = ;\n}");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn line_numbers_on_nodes() {
        let p = parse_src("int a;\n\nvoid f() {\n  g();\n}");
        assert_eq!(p.items[0].line(), 1);
        assert_eq!(p.items[1].line(), 3);
        let Item::Function(f) = &p.items[1] else { panic!() };
        assert_eq!(f.body.as_ref().unwrap().stmts[0].line(), 4);
        assert_eq!(f.end_line, 5);
    }

    #[test]
    fn shift_operators_still_work() {
        let p = parse_src("int x = 1 << 4 | n >> 2;");
        let Item::Global(v) = &p.items[0] else { panic!() };
        assert!(matches!(v.init.as_ref().unwrap().kind, ExprKind::Binary { op: "|", .. }));
    }

    #[test]
    fn switch_statement_parses() {
        let p = parse_src(
            "int f(int x) { switch (x) { case 1: return 10; case -2: g(); break; default: return 0; } return 9; }",
        );
        let Item::Function(f) = &p.items[0] else { panic!() };
        let Stmt::Switch { arms, .. } = &f.body.as_ref().unwrap().stmts[0] else { panic!() };
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[0].value, Some(1));
        assert_eq!(arms[1].value, Some(-2));
        assert_eq!(arms[2].value, None);
        assert_eq!(arms[1].stmts.len(), 2);
    }

    #[test]
    fn prototypes_without_body() {
        let p = parse_src("double dot(const double* a, const double* b, int n);");
        let Item::Function(f) = &p.items[0] else { panic!() };
        assert!(f.body.is_none());
        assert_eq!(f.params.len(), 3);
    }
}
