//! Source files, codebases and locations.
//!
//! A *codebase* is a set of named source files — some of them `system`
//! headers (the synthetic equivalents of `<sycl/sycl.hpp>` and friends that
//! the analysis can mask out, exactly as the paper masks system headers
//! "during the analysis phase").  Files are addressed by [`FileId`]; every
//! token and tree node carries a [`Loc`] back-reference.

use std::collections::HashMap;
use std::fmt;

/// Dense index of a file inside a [`SourceSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// A source location: file + 1-based line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Loc {
    pub file: FileId,
    pub line: u32,
}

impl Loc {
    pub fn new(file: FileId, line: u32) -> Self {
        Loc { file, line }
    }
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file#{}:{}", self.file.0, self.line)
    }
}

/// One source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Logical path, e.g. `"src/stream.cpp"` or `"sycl/sycl.hpp"`.
    pub path: String,
    /// Full text.
    pub text: String,
    /// Whether this is a system header (excluded from metrics by default).
    pub system: bool,
}

/// An immutable collection of source files with path lookup.
#[derive(Debug, Clone, Default)]
pub struct SourceSet {
    files: Vec<SourceFile>,
    by_path: HashMap<String, FileId>,
}

impl SourceSet {
    pub fn new() -> Self {
        SourceSet::default()
    }

    /// Add a user source file; returns its id.  Re-adding a path replaces
    /// the content (last write wins) but keeps the id stable.
    pub fn add(&mut self, path: impl Into<String>, text: impl Into<String>) -> FileId {
        self.add_file(path, text, false)
    }

    /// Add a system header.
    pub fn add_system(&mut self, path: impl Into<String>, text: impl Into<String>) -> FileId {
        self.add_file(path, text, true)
    }

    fn add_file(
        &mut self,
        path: impl Into<String>,
        text: impl Into<String>,
        system: bool,
    ) -> FileId {
        let path = path.into();
        let text = text.into();
        if let Some(&id) = self.by_path.get(&path) {
            self.files[id.0 as usize].text = text;
            self.files[id.0 as usize].system = system;
            return id;
        }
        let id = FileId(self.files.len() as u32);
        self.files.push(SourceFile { path: path.clone(), text, system });
        self.by_path.insert(path, id);
        id
    }

    /// Look up a file id by exact path.
    pub fn lookup(&self, path: &str) -> Option<FileId> {
        self.by_path.get(path).copied()
    }

    /// File by id.
    pub fn file(&self, id: FileId) -> &SourceFile {
        &self.files[id.0 as usize]
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Iterate `(id, file)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FileId, &SourceFile)> {
        self.files.iter().enumerate().map(|(i, f)| (FileId(i as u32), f))
    }

    /// Ids of non-system files.
    pub fn user_files(&self) -> Vec<FileId> {
        self.iter().filter(|(_, f)| !f.system).map(|(id, _)| id).collect()
    }
}

/// A frontend diagnostic with location context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    pub path: String,
    pub line: u32,
    pub message: String,
}

impl LangError {
    pub fn new(path: impl Into<String>, line: u32, message: impl Into<String>) -> Self {
        LangError { path: path.into(), line, message: message.into() }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.path, self.line, self.message)
    }
}

impl std::error::Error for LangError {}

/// Frontend result alias.
pub type Result<T> = std::result::Result<T, LangError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut s = SourceSet::new();
        let a = s.add("main.cpp", "int main() {}");
        let b = s.add_system("omp.h", "// omp");
        assert_eq!(s.lookup("main.cpp"), Some(a));
        assert_eq!(s.lookup("omp.h"), Some(b));
        assert_eq!(s.lookup("nope.h"), None);
        assert!(!s.file(a).system);
        assert!(s.file(b).system);
        assert_eq!(s.user_files(), vec![a]);
    }

    #[test]
    fn re_add_replaces_content_keeps_id() {
        let mut s = SourceSet::new();
        let a = s.add("x.cpp", "old");
        let a2 = s.add("x.cpp", "new");
        assert_eq!(a, a2);
        assert_eq!(s.file(a).text, "new");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn error_display() {
        let e = LangError::new("a.cpp", 3, "unexpected token");
        assert_eq!(e.to_string(), "a.cpp:3: unexpected token");
    }
}
