//! Perceived, language-agnostic measures: SLOC, LLOC, normalised lines.
//!
//! Following the SLOC counting standard of Nguyen et al. that the paper
//! adopts: whitespace is normalised (consecutive whitespace collapsed),
//! comments are removed using ranges known to the lexer, and what remains
//! is counted.  LLOC counts *logical* lines — "a for-loop header in C++
//! would be counted as a single line regardless of linebreak" — which
//! requires the lexical understanding the token stream provides.
//!
//! Pragma lines are deliberately preserved ("OpenMP pragmas are identified
//! and retained even after preprocessing and normalisation steps").

use crate::lex::{lex, LexOptions, TokKind, Token};
use crate::pp::render_token;
use crate::source::{FileId, Result};

/// Normalised source lines of a token stream: comments dropped, whitespace
/// collapsed to single separators, tokens grouped by their source line.
/// Works on both pre-preprocessing token streams (lex output) and
/// post-preprocessing streams ([`crate::pp::PpOutput::tokens`]).
pub fn normalized_lines(tokens: &[Token]) -> Vec<String> {
    normalized_lines_with_locs(tokens).into_iter().map(|(s, _)| s).collect()
}

/// Like [`normalized_lines`], additionally returning each normalised
/// line's source location `(file, line)` — the `+coverage` variants of the
/// perceived metrics filter lines through the coverage mask using these.
pub fn normalized_lines_with_locs(tokens: &[Token]) -> Vec<(String, (FileId, u32))> {
    let mut out: Vec<(String, (FileId, u32))> = Vec::new();
    let mut key: Option<(FileId, u32)> = None;
    for t in tokens {
        if matches!(t.kind, TokKind::Comment(_) | TokKind::Newline) {
            continue;
        }
        let k = (t.loc.file, t.loc.line);
        if key != Some(k) {
            key = Some(k);
            out.push((String::new(), k));
        }
        let (line, _) = out.last_mut().unwrap();
        if !line.is_empty() {
            line.push(' ');
        }
        line.push_str(&render_token(&t.kind));
    }
    out
}

/// Normalised lines straight from source text.
pub fn normalized_lines_of(text: &str, file: FileId, path: &str) -> Result<Vec<String>> {
    let toks = lex(text, file, path, LexOptions { keep_comments: true, keep_newlines: false })?;
    Ok(normalized_lines(&toks))
}

/// SLOC of a token stream: the number of normalised source lines (blank
/// and comment-only lines contribute nothing).
pub fn sloc(tokens: &[Token]) -> usize {
    normalized_lines(tokens).len()
}

/// SLOC straight from source text.
pub fn sloc_of(text: &str, file: FileId, path: &str) -> Result<usize> {
    Ok(normalized_lines_of(text, file, path)?.len())
}

/// LLOC of a token stream: logical lines.
///
/// Counted constructs:
/// * statement-terminating `;` outside parentheses (so the two semicolons
///   in a for-header do not count),
/// * control-flow headers: `for`, `while`, `if`, `else`, `do`, `switch`,
/// * retained pragma directives (one logical line each),
/// * `case`/`default` labels.
pub fn lloc(tokens: &[Token]) -> usize {
    let mut count = 0usize;
    let mut paren_depth = 0usize;
    for t in tokens {
        match &t.kind {
            TokKind::Punct("(") => paren_depth += 1,
            TokKind::Punct(")") => paren_depth = paren_depth.saturating_sub(1),
            TokKind::Punct(";") if paren_depth == 0 => count += 1,
            TokKind::Ident(id)
                if matches!(
                    id.as_str(),
                    "for" | "while" | "if" | "else" | "do" | "switch" | "case" | "default"
                ) =>
            {
                count += 1;
            }
            TokKind::Pragma(_) => count += 1,
            _ => {}
        }
    }
    count
}

/// LLOC straight from source text.
pub fn lloc_of(text: &str, file: FileId, path: &str) -> Result<usize> {
    let toks = lex(text, file, path, LexOptions::default())?;
    Ok(lloc(&toks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pp::{preprocess, PpOptions};
    use crate::source::SourceSet;

    fn nl(src: &str) -> Vec<String> {
        normalized_lines_of(src, FileId(0), "t.cpp").unwrap()
    }

    #[test]
    fn sloc_ignores_blanks_and_comments() {
        let src =
            "int a;\n\n// only a comment\nint b; /* trailing */\n/* whole\n   block */\nint c;";
        assert_eq!(sloc_of(src, FileId(0), "t.cpp").unwrap(), 3);
    }

    #[test]
    fn sloc_counts_linebreak_styles_differently() {
        // The known SLOC weakness the paper calls out: formatting changes
        // the count even though semantics are identical.
        let one = "for (int i = 0; i < n; i++) { a[i] = 0; }";
        let many = "for (int i = 0;\n     i < n;\n     i++)\n{\n  a[i] = 0;\n}";
        assert_eq!(sloc_of(one, FileId(0), "t.cpp").unwrap(), 1);
        assert_eq!(sloc_of(many, FileId(0), "t.cpp").unwrap(), 6);
    }

    #[test]
    fn lloc_is_stable_under_linebreaks() {
        let one = "for (int i = 0; i < n; i++) { a[i] = 0; }";
        let many = "for (int i = 0;\n     i < n;\n     i++)\n{\n  a[i] = 0;\n}";
        let l1 = lloc_of(one, FileId(0), "t.cpp").unwrap();
        let l2 = lloc_of(many, FileId(0), "t.cpp").unwrap();
        assert_eq!(l1, l2);
        assert_eq!(l1, 2); // the for header + the assignment
    }

    #[test]
    fn lloc_for_header_semicolons_excluded() {
        assert_eq!(lloc_of("for (i = 0; i < n; i++) f(i);", FileId(0), "t.cpp").unwrap(), 2);
        assert_eq!(lloc_of("a; b; c;", FileId(0), "t.cpp").unwrap(), 3);
    }

    #[test]
    fn whitespace_collapsed_in_normalised_lines() {
        let lines = nl("int     a   =    1;");
        assert_eq!(lines, vec!["int a = 1 ;"]);
    }

    #[test]
    fn pragma_lines_preserved_after_preprocessing() {
        let mut ss = SourceSet::new();
        let m =
            ss.add("t.cpp", "#pragma omp parallel for\nfor (int i = 0; i < n; i++) a[i] = 0;\n");
        let out = preprocess(&ss, m, &PpOptions::default()).unwrap();
        let lines = normalized_lines(&out.tokens);
        assert!(lines[0].contains("#pragma omp parallel for"), "{lines:?}");
        assert_eq!(lloc(&out.tokens), 3); // pragma + for + assignment
    }

    #[test]
    fn post_pp_sloc_includes_expanded_headers() {
        let mut ss = SourceSet::new();
        let m = ss.add("m.cpp", "#include \"big.h\"\nint main() { return 0; }");
        ss.add("big.h", "int a;\nint b;\nint c;\n");
        let out = preprocess(&ss, m, &PpOptions::default()).unwrap();
        // Pre-pp SLOC of m.cpp is 2 (include line + main); post-pp the
        // header bodies count instead of the include line.
        assert_eq!(sloc(&out.tokens), 4);
    }

    #[test]
    fn empty_input() {
        assert_eq!(sloc_of("", FileId(0), "t.cpp").unwrap(), 0);
        assert_eq!(lloc_of("", FileId(0), "t.cpp").unwrap(), 0);
        assert_eq!(sloc_of("// nothing\n\n", FileId(0), "t.cpp").unwrap(), 0);
    }
}
