//! Light semantic analysis: symbol registry and approximate typing.
//!
//! The dialect does not need a full type checker — the trees only need
//! enough semantic information to reproduce what ClangAST exposes:
//! which names are functions defined inside the codebase (for `T_sem+i`
//! inlining, which "inlines all function invocations that originated from
//! the same source … system headers or libraries are excluded"), which
//! named types are programmer-defined records (their names get normalised
//! away), and coarse scalar types for implicit-cast insertion.

use crate::ast::*;
use crate::source::FileId;
use std::collections::{HashMap, HashSet};

/// Coarse value categories used for implicit-cast decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    Int,
    Real,
    Bool,
    Ptr,
    Other,
    Unknown,
}

impl Ty {
    /// Classify an AST type.
    pub fn of(t: &Type) -> Ty {
        match t.decayed() {
            Type::Int | Type::Long | Type::Size | Type::Char => Ty::Int,
            Type::Float | Type::Double => Ty::Real,
            Type::Bool => Ty::Bool,
            Type::Ptr(_) => Ty::Ptr,
            Type::Auto => Ty::Unknown,
            _ => Ty::Other,
        }
    }
}

/// Registry of functions and records defined in a translation unit.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    functions: HashMap<String, Function>,
    records: HashSet<String>,
    /// Files considered "system" (their functions are never inlined).
    system_files: HashSet<FileId>,
}

impl Registry {
    /// Build the registry from a parsed unit.  `system_files` come from the
    /// preprocessor output.
    pub fn build(prog: &Program, system_files: &HashSet<FileId>) -> Registry {
        let mut r = Registry { system_files: system_files.clone(), ..Registry::default() };
        for item in &prog.items {
            match item {
                Item::Function(f) if f.body.is_some() => {
                    r.functions.insert(f.name.clone(), f.clone());
                }
                Item::Struct(s) => {
                    r.records.insert(s.name.clone());
                    for m in &s.methods {
                        if m.body.is_some() {
                            // Methods are registered qualified so free calls
                            // don't accidentally inline them.
                            r.functions.insert(format!("{}::{}", s.name, m.name), m.clone());
                        }
                    }
                }
                _ => {}
            }
        }
        r
    }

    /// A function eligible for `T_sem+i` inlining: defined in this unit,
    /// has a body, and does not live in a system header.
    pub fn inlinable(&self, name: &str) -> Option<&Function> {
        let f = self.functions.get(name)?;
        if self.system_files.contains(&f.file) {
            return None;
        }
        Some(f)
    }

    /// Look up any function definition by (possibly qualified) name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.get(name)
    }

    /// Return type category of a defined function.
    pub fn return_ty(&self, name: &str) -> Ty {
        self.functions.get(name).map(|f| Ty::of(&f.ret)).unwrap_or(Ty::Unknown)
    }

    /// Is this name a programmer-defined record type?
    pub fn is_record(&self, name: &str) -> bool {
        self.records.contains(name)
    }

    /// Number of registered function definitions.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }
}

/// Lexical scope stack mapping variable names to coarse types.
#[derive(Debug, Default)]
pub struct Scopes {
    stack: Vec<HashMap<String, Ty>>,
}

impl Scopes {
    pub fn new() -> Self {
        Scopes { stack: vec![HashMap::new()] }
    }

    pub fn push(&mut self) {
        self.stack.push(HashMap::new());
    }

    pub fn pop(&mut self) {
        self.stack.pop();
        debug_assert!(!self.stack.is_empty(), "popped the global scope");
    }

    pub fn declare(&mut self, name: &str, ty: Ty) {
        if let Some(top) = self.stack.last_mut() {
            top.insert(name.to_string(), ty);
        }
    }

    pub fn lookup(&self, name: &str) -> Ty {
        for scope in self.stack.iter().rev() {
            if let Some(&t) = scope.get(name) {
                return t;
            }
        }
        Ty::Unknown
    }
}

/// Infer the coarse type of an expression under the given scopes/registry.
pub fn infer(expr: &Expr, scopes: &Scopes, reg: &Registry) -> Ty {
    match &expr.kind {
        ExprKind::Int(_) => Ty::Int,
        ExprKind::Real(_) => Ty::Real,
        ExprKind::Bool(_) => Ty::Bool,
        ExprKind::Str(_) => Ty::Ptr,
        ExprKind::Char(_) => Ty::Int,
        ExprKind::Path(p) => {
            if p.len() == 1 {
                scopes.lookup(&p[0])
            } else {
                Ty::Unknown
            }
        }
        ExprKind::Unary { op, expr, .. } => match *op {
            "!" => Ty::Bool,
            "*" => Ty::Unknown, // deref of unknown pointee
            "&" => Ty::Ptr,
            _ => infer(expr, scopes, reg),
        },
        ExprKind::Binary { op, lhs, rhs } => match *op {
            "==" | "!=" | "<" | ">" | "<=" | ">=" | "&&" | "||" => Ty::Bool,
            _ => {
                let l = infer(lhs, scopes, reg);
                let r = infer(rhs, scopes, reg);
                match (l, r) {
                    (Ty::Real, _) | (_, Ty::Real) => Ty::Real,
                    (Ty::Int, Ty::Int) => Ty::Int,
                    (Ty::Ptr, _) | (_, Ty::Ptr) => Ty::Ptr,
                    (Ty::Unknown, _) | (_, Ty::Unknown) => Ty::Unknown,
                    _ => Ty::Other,
                }
            }
        },
        ExprKind::Assign { lhs, .. } => infer(lhs, scopes, reg),
        ExprKind::Ternary { then_e, else_e, .. } => {
            let t = infer(then_e, scopes, reg);
            if t != Ty::Unknown {
                t
            } else {
                infer(else_e, scopes, reg)
            }
        }
        ExprKind::Call { callee, .. } => match &callee.kind {
            ExprKind::Path(p) if p.len() == 1 => reg.return_ty(&p[0]),
            _ => Ty::Unknown,
        },
        ExprKind::KernelLaunch { .. } => Ty::Other,
        ExprKind::Index { .. } | ExprKind::Member { .. } => Ty::Unknown,
        ExprKind::Lambda { .. } => Ty::Other,
        ExprKind::Cast { ty, .. } | ExprKind::Construct { ty, .. } => Ty::of(ty),
        ExprKind::InitList(_) => Ty::Other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pp::{preprocess, PpOptions};
    use crate::source::SourceSet;

    fn build(srcs: &[(&str, &str, bool)]) -> (Program, Registry) {
        let mut ss = SourceSet::new();
        for (p, t, sys) in srcs {
            if *sys {
                ss.add_system(*p, *t);
            } else {
                ss.add(*p, *t);
            }
        }
        let m = ss.lookup(srcs[0].0).unwrap();
        let out = preprocess(&ss, m, &PpOptions::default()).unwrap();
        let prog = crate::parse::parse(out.tokens, m, srcs[0].0).unwrap();
        let reg = Registry::build(&prog, &out.system_files);
        (prog, reg)
    }

    #[test]
    fn registry_collects_functions_and_records() {
        let (_, reg) = build(&[(
            "m.cpp",
            "struct P { double x; double get() { return x; } };\n\
             double f(double a) { return a; }\n\
             int g();",
            false,
        )]);
        assert!(reg.function("f").is_some());
        assert!(reg.function("g").is_none(), "prototype has no body");
        assert!(reg.function("P::get").is_some());
        assert!(reg.is_record("P"));
        assert!(!reg.is_record("Q"));
        assert_eq!(reg.return_ty("f"), Ty::Real);
    }

    #[test]
    fn system_header_functions_not_inlinable() {
        let (_, reg) = build(&[
            ("m.cpp", "#include <k.hpp>\nint use() { return lib_fn(); }", false),
            ("k.hpp", "int lib_fn() { return 1; }", true),
        ]);
        assert!(reg.function("lib_fn").is_some());
        assert!(reg.inlinable("lib_fn").is_none());
        assert!(reg.inlinable("use").is_some());
    }

    #[test]
    fn user_header_functions_inlinable() {
        let (_, reg) = build(&[
            ("m.cpp", "#include \"util.h\"\nint use() { return helper(); }", false),
            ("util.h", "int helper() { return 1; }", false),
        ]);
        assert!(reg.inlinable("helper").is_some());
    }

    #[test]
    fn scopes_shadowing() {
        let mut s = Scopes::new();
        s.declare("x", Ty::Int);
        s.push();
        assert_eq!(s.lookup("x"), Ty::Int);
        s.declare("x", Ty::Real);
        assert_eq!(s.lookup("x"), Ty::Real);
        s.pop();
        assert_eq!(s.lookup("x"), Ty::Int);
        assert_eq!(s.lookup("missing"), Ty::Unknown);
    }

    #[test]
    fn inference_basics() {
        let (prog, reg) = build(&[(
            "m.cpp",
            "double h(double v) { return v; }\nint main() { return 0; }",
            false,
        )]);
        let _ = prog;
        let mut scopes = Scopes::new();
        scopes.declare("i", Ty::Int);
        scopes.declare("d", Ty::Real);
        let e = |src: &str| -> Expr {
            // parse `src` as an initialiser expression
            let mut ss = SourceSet::new();
            let m = ss.add("e.cpp", format!("int probe = {src};"));
            let out = preprocess(&ss, m, &PpOptions::default()).unwrap();
            let p = crate::parse::parse(out.tokens, m, "e.cpp").unwrap();
            let Item::Global(v) = &p.items[0] else { panic!() };
            v.init.clone().unwrap()
        };
        assert_eq!(infer(&e("1 + 2"), &scopes, &reg), Ty::Int);
        assert_eq!(infer(&e("i + d"), &scopes, &reg), Ty::Real);
        assert_eq!(infer(&e("i < d"), &scopes, &reg), Ty::Bool);
        assert_eq!(infer(&e("h(i)"), &scopes, &reg), Ty::Real);
        assert_eq!(infer(&e("static_cast<double>(i)"), &scopes, &reg), Ty::Real);
        assert_eq!(infer(&e("unknown_fn(i)"), &scopes, &reg), Ty::Unknown);
    }
}
