//! Preprocessor for the C/C++-family dialect.
//!
//! Handles `#include` (quoted and angle-bracket forms resolved against the
//! [`SourceSet`]), object- and function-like `#define`/`#undef`,
//! `#ifdef`/`#ifndef`/`#if`/`#elif`/`#else`/`#endif` with a small constant
//! expression evaluator (`defined(X)`, integers, comparisons, `!`, `&&`,
//! `||`), `#error`, and `#pragma`.
//!
//! Two behaviours matter for the productivity metrics:
//!
//! * **pragmas are retained**: a `#pragma omp …` line becomes a single
//!   [`TokKind::Pragma`] token carrying its content tokens, so OpenMP
//!   semantics survive preprocessing and normalisation — the paper makes
//!   "special provisions for language that store semantic-bearing
//!   information in unusual places".
//! * **expansion bookkeeping**: macro-expanded tokens take the *use site*
//!   location, and the output records every file that was pulled in, so the
//!   `+preprocessor` metric variants can reconstruct the post-pp view of a
//!   unit (this is what makes the SYCL giant-header artefact measurable).

use crate::lex::{lex, LexOptions, TokKind, Token};
use crate::source::{FileId, LangError, Loc, Result, SourceSet};
use std::collections::{HashMap, HashSet};

/// A macro definition.
#[derive(Debug, Clone)]
enum Macro {
    Object(Vec<Token>),
    Function { params: Vec<String>, body: Vec<Token> },
}

/// Preprocessor options: the `-D` flags of a compile command.
#[derive(Debug, Clone, Default)]
pub struct PpOptions {
    /// `(name, replacement)` — replacement text is lexed; `None` ⇒ `1`.
    pub defines: Vec<(String, Option<String>)>,
}

/// Result of preprocessing one main file.
#[derive(Debug, Clone)]
pub struct PpOutput {
    /// The post-preprocessing token stream (pragmas folded into
    /// [`TokKind::Pragma`] tokens).
    pub tokens: Vec<Token>,
    /// Every file that contributed tokens, in first-contribution order
    /// (main file first).  This is the unit's dependency closure.
    pub included: Vec<FileId>,
    /// Files whose tokens were included and are system headers.
    pub system_files: HashSet<FileId>,
}

impl PpOutput {
    /// Reconstruct the post-preprocessing source as lines: consecutive
    /// output tokens from the same `(file, line)` join into one line of
    /// text.  This is the view the `Source+pp` and `SLOC+pp` variants
    /// measure.
    pub fn lines(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let mut cur_key: Option<(FileId, u32)> = None;
        for t in &self.tokens {
            let key = (t.loc.file, t.loc.line);
            if cur_key != Some(key) {
                cur_key = Some(key);
                out.push(String::new());
            }
            let line = out.last_mut().unwrap();
            if !line.is_empty() {
                line.push(' ');
            }
            line.push_str(&render_token(&t.kind));
        }
        out
    }
}

/// Render a token back to text (used for post-pp source reconstruction).
pub fn render_token(kind: &TokKind) -> String {
    match kind {
        TokKind::Ident(s) => s.clone(),
        TokKind::Int(v) => v.to_string(),
        TokKind::Real(v) => {
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        TokKind::Str(s) => format!("{s:?}"),
        TokKind::Char(c) => format!("'{c}'"),
        TokKind::Punct(p) => (*p).to_string(),
        TokKind::Hash => "#".to_string(),
        TokKind::Comment(s) => s.clone(),
        TokKind::Newline => String::new(),
        TokKind::Pragma(toks) => {
            let mut s = "#pragma".to_string();
            for t in toks {
                s.push(' ');
                s.push_str(&render_token(&t.kind));
            }
            s
        }
    }
}

/// Run the preprocessor on `main` within `sources`.
pub fn preprocess(sources: &SourceSet, main: FileId, opts: &PpOptions) -> Result<PpOutput> {
    let mut pp = Pp {
        sources,
        macros: HashMap::new(),
        out: Vec::new(),
        included: Vec::new(),
        include_stack: Vec::new(),
        once: HashSet::new(),
        system_files: HashSet::new(),
    };
    for (name, repl) in &opts.defines {
        let body = match repl {
            None => vec![Token::new(TokKind::Int(1), Loc::new(main, 0))],
            Some(text) => lex(text, main, "<command line>", LexOptions::default())?,
        };
        pp.macros.insert(name.clone(), Macro::Object(body));
    }
    pp.process_file(main)?;
    Ok(PpOutput { tokens: pp.out, included: pp.included, system_files: pp.system_files })
}

struct Pp<'s> {
    sources: &'s SourceSet,
    macros: HashMap<String, Macro>,
    out: Vec<Token>,
    included: Vec<FileId>,
    include_stack: Vec<FileId>,
    once: HashSet<FileId>,
    system_files: HashSet<FileId>,
}

/// State of one conditional-block level.
#[derive(Debug, Clone, Copy)]
struct CondState {
    /// Are we currently emitting tokens in this level?
    active: bool,
    /// Has any branch at this level already been taken?
    taken: bool,
}

impl Pp<'_> {
    fn process_file(&mut self, file: FileId) -> Result<()> {
        if self.once.contains(&file) {
            return Ok(());
        }
        if self.include_stack.contains(&file) {
            let f = self.sources.file(file);
            return Err(LangError::new(&f.path, 1, "circular #include"));
        }
        self.include_stack.push(file);
        if !self.included.contains(&file) {
            self.included.push(file);
        }
        let sf = self.sources.file(file);
        if sf.system {
            self.system_files.insert(file);
        }
        let path = sf.path.clone();
        let toks =
            lex(&sf.text, file, &path, LexOptions { keep_comments: false, keep_newlines: true })?;

        let mut i = 0usize;
        let mut conds: Vec<CondState> = Vec::new();
        while i < toks.len() {
            let t = &toks[i];
            match &t.kind {
                TokKind::Hash => {
                    // Directive: consume through end of line.
                    let line_end = toks[i..]
                        .iter()
                        .position(|t| t.kind == TokKind::Newline)
                        .map(|k| i + k)
                        .unwrap_or(toks.len());
                    let dir = &toks[i + 1..line_end];
                    self.directive(&path, t.loc, dir, &mut conds, file)?;
                    i = line_end + 1;
                }
                TokKind::Newline => {
                    i += 1;
                }
                _ => {
                    let active = conds.iter().all(|c| c.active);
                    if active {
                        i = self.emit_expanded(&toks, i, &path, &mut HashSet::new())?;
                    } else {
                        i += 1;
                    }
                }
            }
        }
        if !conds.is_empty() {
            return Err(LangError::new(&path, 0, "unterminated conditional block"));
        }
        self.include_stack.pop();
        Ok(())
    }

    /// Expand and emit the token at `i`; returns the next input index.
    fn emit_expanded(
        &mut self,
        toks: &[Token],
        i: usize,
        path: &str,
        expanding: &mut HashSet<String>,
    ) -> Result<usize> {
        let t = &toks[i];
        if let TokKind::Ident(name) = &t.kind {
            if !expanding.contains(name) {
                match self.macros.get(name).cloned() {
                    Some(Macro::Object(body)) => {
                        expanding.insert(name.clone());
                        self.emit_body(&body, t.loc, path, expanding)?;
                        expanding.remove(name);
                        return Ok(i + 1);
                    }
                    Some(Macro::Function { params, body }) => {
                        // Function-like macros require an argument list; a
                        // bare reference passes through untouched.
                        let mut j = i + 1;
                        while j < toks.len() && toks[j].kind == TokKind::Newline {
                            j += 1;
                        }
                        if j < toks.len() && toks[j].kind.is_punct("(") {
                            let (args, after) = collect_macro_args(toks, j, path)?;
                            if args.len() != params.len()
                                && !(params.is_empty() && args.len() == 1 && args[0].is_empty())
                            {
                                return Err(LangError::new(
                                    path,
                                    t.loc.line,
                                    format!(
                                        "macro {name} expects {} args, got {}",
                                        params.len(),
                                        args.len()
                                    ),
                                ));
                            }
                            let map: HashMap<&str, &Vec<Token>> =
                                params.iter().map(String::as_str).zip(args.iter()).collect();
                            let mut substituted = Vec::new();
                            for bt in &body {
                                match &bt.kind {
                                    TokKind::Ident(p) if map.contains_key(p.as_str()) => {
                                        substituted.extend(map[p.as_str()].iter().cloned());
                                    }
                                    _ => substituted.push(bt.clone()),
                                }
                            }
                            expanding.insert(name.clone());
                            self.emit_body(&substituted, t.loc, path, expanding)?;
                            expanding.remove(name);
                            return Ok(after);
                        }
                    }
                    None => {}
                }
            }
        }
        self.out.push(t.clone());
        Ok(i + 1)
    }

    /// Emit a macro body, rewriting locations to the expansion site and
    /// recursively expanding nested macros.
    fn emit_body(
        &mut self,
        body: &[Token],
        use_loc: Loc,
        path: &str,
        expanding: &mut HashSet<String>,
    ) -> Result<()> {
        // Rewrite locations, then walk with expansion.
        let rewritten: Vec<Token> =
            body.iter().map(|t| Token::new(t.kind.clone(), use_loc)).collect();
        let mut k = 0usize;
        while k < rewritten.len() {
            k = self.emit_expanded(&rewritten, k, path, expanding)?;
        }
        Ok(())
    }

    fn directive(
        &mut self,
        path: &str,
        loc: Loc,
        dir: &[Token],
        conds: &mut Vec<CondState>,
        _file: FileId,
    ) -> Result<()> {
        let name = dir
            .first()
            .and_then(|t| t.kind.ident())
            .ok_or_else(|| LangError::new(path, loc.line, "empty preprocessor directive"))?
            .to_string();
        let rest = &dir[1..];
        let active = conds.iter().all(|c| c.active);

        match name.as_str() {
            "include" if active => self.include(path, loc, rest),
            "define" if active => self.define(path, loc, rest),
            "undef" if active => {
                if let Some(n) = rest.first().and_then(|t| t.kind.ident()) {
                    self.macros.remove(n);
                }
                Ok(())
            }
            "ifdef" | "ifndef" => {
                let defined = rest
                    .first()
                    .and_then(|t| t.kind.ident())
                    .is_some_and(|n| self.macros.contains_key(n));
                let hold = if name == "ifdef" { defined } else { !defined };
                let on = active && hold;
                conds.push(CondState { active: on, taken: on });
                Ok(())
            }
            "if" => {
                let v = active && self.eval_cond(path, loc, rest)? != 0;
                conds.push(CondState { active: v, taken: v });
                Ok(())
            }
            "elif" => {
                let level = conds
                    .last_mut()
                    .ok_or_else(|| LangError::new(path, loc.line, "#elif without #if"))?;
                if level.taken {
                    level.active = false;
                } else {
                    let parent_active = conds[..conds.len() - 1].iter().all(|c| c.active);
                    let level = conds.last_mut().unwrap();
                    let v = parent_active && self.eval_cond(path, loc, rest)? != 0;
                    level.active = v;
                    level.taken = v;
                }
                Ok(())
            }
            "else" => {
                let parent_active = conds[..conds.len().saturating_sub(1)].iter().all(|c| c.active);
                let level = conds
                    .last_mut()
                    .ok_or_else(|| LangError::new(path, loc.line, "#else without #if"))?;
                level.active = parent_active && !level.taken;
                level.taken = true;
                Ok(())
            }
            "endif" => {
                conds.pop().ok_or_else(|| LangError::new(path, loc.line, "#endif without #if"))?;
                Ok(())
            }
            "error" if active => {
                let msg: Vec<String> = rest.iter().map(|t| render_token(&t.kind)).collect();
                Err(LangError::new(path, loc.line, format!("#error {}", msg.join(" "))))
            }
            "pragma" if active => {
                // `#pragma once` is consumed; everything else is retained as
                // a Pragma token (semantic-bearing: OpenMP/OpenACC etc.).
                if rest.first().and_then(|t| t.kind.ident()) == Some("once") {
                    self.once.insert(loc.file);
                } else {
                    self.out.push(Token::new(TokKind::Pragma(rest.to_vec()), loc));
                }
                Ok(())
            }
            // Inactive-branch directives other than conditionals are skipped.
            _ => Ok(()),
        }
    }

    fn include(&mut self, path: &str, loc: Loc, rest: &[Token]) -> Result<()> {
        let (target, _system) = match rest.first() {
            Some(Token { kind: TokKind::Str(s), .. }) => (s.clone(), false),
            Some(Token { kind: TokKind::Punct("<"), .. }) => {
                // Reassemble `<a/b.h>` from tokens up to `>`.
                let mut s = String::new();
                for t in &rest[1..] {
                    if t.kind.is_punct(">") {
                        break;
                    }
                    s.push_str(&render_token(&t.kind));
                }
                (s, true)
            }
            _ => return Err(LangError::new(path, loc.line, "malformed #include")),
        };
        let id = self.sources.lookup(&target).ok_or_else(|| {
            LangError::new(path, loc.line, format!("include not found: {target}"))
        })?;
        self.process_file(id)
    }

    fn define(&mut self, path: &str, loc: Loc, rest: &[Token]) -> Result<()> {
        let name = rest
            .first()
            .and_then(|t| t.kind.ident())
            .ok_or_else(|| LangError::new(path, loc.line, "malformed #define"))?
            .to_string();
        let after = &rest[1..];
        // Function-like iff a '(' follows and a well-formed parameter list
        // (idents separated by commas) closes it.
        if after.first().is_some_and(|t| t.kind.is_punct("(")) {
            let mut params = Vec::new();
            let mut k = 1usize;
            let mut ok = false;
            if after.get(k).is_some_and(|t| t.kind.is_punct(")")) {
                ok = true;
                k += 1;
            } else {
                while let Some(TokKind::Ident(p)) = after.get(k).map(|t| &t.kind) {
                    params.push(p.clone());
                    k += 1;
                    match after.get(k).map(|t| &t.kind) {
                        Some(TokKind::Punct(",")) => k += 1,
                        Some(TokKind::Punct(")")) => {
                            ok = true;
                            k += 1;
                            break;
                        }
                        _ => break,
                    }
                }
            }
            if ok {
                let body = after[k..].to_vec();
                self.macros.insert(name, Macro::Function { params, body });
                return Ok(());
            }
        }
        self.macros.insert(name, Macro::Object(after.to_vec()));
        Ok(())
    }

    /// Evaluate a `#if`/`#elif` expression to an integer.
    fn eval_cond(&self, path: &str, loc: Loc, toks: &[Token]) -> Result<i64> {
        // First rewrite: defined(X)/defined X -> 0/1, then expand object
        // macros to their integer bodies where possible, unknowns -> 0.
        let mut vals: Vec<Token> = Vec::new();
        let mut i = 0usize;
        while i < toks.len() {
            match &toks[i].kind {
                TokKind::Ident(id) if id == "defined" => {
                    let (name, next) = if toks.get(i + 1).is_some_and(|t| t.kind.is_punct("(")) {
                        let n = toks
                            .get(i + 2)
                            .and_then(|t| t.kind.ident())
                            .ok_or_else(|| LangError::new(path, loc.line, "bad defined()"))?;
                        if !toks.get(i + 3).is_some_and(|t| t.kind.is_punct(")")) {
                            return Err(LangError::new(path, loc.line, "bad defined()"));
                        }
                        (n.to_string(), i + 4)
                    } else {
                        let n = toks
                            .get(i + 1)
                            .and_then(|t| t.kind.ident())
                            .ok_or_else(|| LangError::new(path, loc.line, "bad defined"))?;
                        (n.to_string(), i + 2)
                    };
                    let v = i64::from(self.macros.contains_key(&name));
                    vals.push(Token::new(TokKind::Int(v), loc));
                    i = next;
                }
                TokKind::Ident(id) => {
                    let v = match self.macros.get(id) {
                        Some(Macro::Object(body)) => match body.first().map(|t| &t.kind) {
                            Some(TokKind::Int(v)) if body.len() == 1 => *v,
                            _ => 0,
                        },
                        _ => 0,
                    };
                    vals.push(Token::new(TokKind::Int(v), loc));
                    i += 1;
                }
                _ => {
                    vals.push(toks[i].clone());
                    i += 1;
                }
            }
        }
        let mut ev = CondEval { toks: &vals, pos: 0, path, line: loc.line };
        let v = ev.or_expr()?;
        Ok(v)
    }
}

/// Gather macro-call arguments starting at the `(` token index; returns the
/// argument token lists and the index just past the closing `)`.
fn collect_macro_args(toks: &[Token], open: usize, path: &str) -> Result<(Vec<Vec<Token>>, usize)> {
    let mut args: Vec<Vec<Token>> = vec![Vec::new()];
    let mut depth = 0usize;
    let mut i = open;
    loop {
        let t = toks
            .get(i)
            .ok_or_else(|| LangError::new(path, toks[open].loc.line, "unterminated macro args"))?;
        match &t.kind {
            TokKind::Punct("(") => {
                if depth > 0 {
                    args.last_mut().unwrap().push(t.clone());
                }
                depth += 1;
            }
            TokKind::Punct(")") => {
                depth -= 1;
                if depth == 0 {
                    return Ok((args, i + 1));
                }
                args.last_mut().unwrap().push(t.clone());
            }
            TokKind::Punct(",") if depth == 1 => args.push(Vec::new()),
            TokKind::Newline => {}
            _ => args.last_mut().unwrap().push(t.clone()),
        }
        i += 1;
    }
}

/// Tiny recursive-descent evaluator for `#if` expressions.
struct CondEval<'a> {
    toks: &'a [Token],
    pos: usize,
    path: &'a str,
    line: u32,
}

impl CondEval<'_> {
    fn err(&self) -> LangError {
        LangError::new(self.path, self.line, "malformed #if expression")
    }

    fn peek_punct(&self, p: &str) -> bool {
        self.toks.get(self.pos).is_some_and(|t| t.kind.is_punct(p))
    }

    fn eat(&mut self, p: &str) -> bool {
        if self.peek_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn or_expr(&mut self) -> Result<i64> {
        let mut v = self.and_expr()?;
        while self.eat("||") {
            let r = self.and_expr()?;
            v = i64::from(v != 0 || r != 0);
        }
        Ok(v)
    }

    fn and_expr(&mut self) -> Result<i64> {
        let mut v = self.cmp_expr()?;
        while self.eat("&&") {
            let r = self.cmp_expr()?;
            v = i64::from(v != 0 && r != 0);
        }
        Ok(v)
    }

    fn cmp_expr(&mut self) -> Result<i64> {
        let v = self.add_expr()?;
        for (op, f) in [
            ("==", (|a: i64, b: i64| i64::from(a == b)) as fn(i64, i64) -> i64),
            ("!=", |a, b| i64::from(a != b)),
            ("<=", |a, b| i64::from(a <= b)),
            (">=", |a, b| i64::from(a >= b)),
            ("<", |a, b| i64::from(a < b)),
            (">", |a, b| i64::from(a > b)),
        ] {
            if self.eat(op) {
                let r = self.add_expr()?;
                return Ok(f(v, r));
            }
        }
        Ok(v)
    }

    fn add_expr(&mut self) -> Result<i64> {
        let mut v = self.unary()?;
        loop {
            if self.eat("+") {
                v += self.unary()?;
            } else if self.eat("-") {
                v -= self.unary()?;
            } else {
                return Ok(v);
            }
        }
    }

    fn unary(&mut self) -> Result<i64> {
        if self.eat("!") {
            return Ok(i64::from(self.unary()? == 0));
        }
        if self.eat("(") {
            let v = self.or_expr()?;
            if !self.eat(")") {
                return Err(self.err());
            }
            return Ok(v);
        }
        match self.toks.get(self.pos).map(|t| &t.kind) {
            Some(TokKind::Int(v)) => {
                self.pos += 1;
                Ok(*v)
            }
            _ => Err(self.err()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(files: &[(&str, &str)], defines: &[(&str, Option<&str>)]) -> PpOutput {
        let mut ss = SourceSet::new();
        for (p, t) in files {
            if p.starts_with("sys/") || p.ends_with(".hpp") && p.contains('/') {
                ss.add_system(*p, *t);
            } else {
                ss.add(*p, *t);
            }
        }
        let main = ss.lookup(files[0].0).unwrap();
        let opts = PpOptions {
            defines: defines.iter().map(|(n, v)| (n.to_string(), v.map(str::to_string))).collect(),
        };
        preprocess(&ss, main, &opts).unwrap()
    }

    fn idents(out: &PpOutput) -> Vec<String> {
        out.tokens.iter().filter_map(|t| t.kind.ident().map(str::to_string)).collect()
    }

    #[test]
    fn plain_passthrough() {
        let out = run(&[("m.cpp", "int main ( ) { return 0 ; }")], &[]);
        assert_eq!(idents(&out), vec!["int", "main", "return"]);
    }

    #[test]
    fn object_macro_expansion() {
        let out = run(&[("m.cpp", "#define N 1024\nint a = N;")], &[]);
        let has_1024 = out.tokens.iter().any(|t| t.kind == TokKind::Int(1024));
        assert!(has_1024);
        assert!(!idents(&out).contains(&"N".to_string()));
    }

    #[test]
    fn function_macro_expansion() {
        let out = run(&[("m.cpp", "#define SQ(x) ((x) * (x))\nint a = SQ(3 + 1);")], &[]);
        let text: Vec<String> = out.tokens.iter().map(|t| render_token(&t.kind)).collect();
        let joined = text.join(" ");
        assert!(joined.contains("( ( 3 + 1 ) * ( 3 + 1 ) )"), "{joined}");
    }

    #[test]
    fn nested_macro_expansion() {
        let out = run(&[("m.cpp", "#define A B\n#define B 7\nint x = A;")], &[]);
        assert!(out.tokens.iter().any(|t| t.kind == TokKind::Int(7)));
    }

    #[test]
    fn recursive_macro_does_not_hang() {
        let out = run(&[("m.cpp", "#define X X\nint X;")], &[]);
        assert!(idents(&out).contains(&"X".to_string()));
    }

    #[test]
    fn include_quoted() {
        let out = run(&[("m.cpp", "#include \"k.h\"\nint b;"), ("k.h", "int a;")], &[]);
        assert_eq!(idents(&out), vec!["int", "a", "int", "b"]);
        assert_eq!(out.included.len(), 2);
    }

    #[test]
    fn include_angle_resolves_and_marks_system() {
        let out =
            run(&[("m.cpp", "#include <sys/omp.h>\nint b;"), ("sys/omp.h", "int omp_get;")], &[]);
        assert_eq!(idents(&out), vec!["int", "omp_get", "int", "b"]);
        assert_eq!(out.system_files.len(), 1);
    }

    #[test]
    fn missing_include_errors() {
        let mut ss = SourceSet::new();
        let m = ss.add("m.cpp", "#include \"gone.h\"\n");
        let e = preprocess(&ss, m, &PpOptions::default()).unwrap_err();
        assert!(e.message.contains("gone.h"));
    }

    #[test]
    fn circular_include_errors() {
        let mut ss = SourceSet::new();
        let a = ss.add("a.h", "#include \"b.h\"\n");
        ss.add("b.h", "#include \"a.h\"\n");
        let e = preprocess(&ss, a, &PpOptions::default()).unwrap_err();
        assert!(e.message.contains("circular"));
    }

    #[test]
    fn pragma_once_allows_diamond() {
        let out = run(
            &[
                ("m.cpp", "#include \"x.h\"\n#include \"x.h\"\nint end;"),
                ("x.h", "#pragma once\nint once_only;"),
            ],
            &[],
        );
        assert_eq!(idents(&out), vec!["int", "once_only", "int", "end"]);
    }

    #[test]
    fn ifdef_branches() {
        let src = "#ifdef GPU\nint gpu;\n#else\nint cpu;\n#endif\n";
        let out = run(&[("m.cpp", src)], &[]);
        assert_eq!(idents(&out), vec!["int", "cpu"]);
        let out = run(&[("m.cpp", src)], &[("GPU", None)]);
        assert_eq!(idents(&out), vec!["int", "gpu"]);
    }

    #[test]
    fn ifndef_guard() {
        let src = "#ifndef H\n#define H\nint body;\n#endif\nint after;";
        let out = run(&[("m.cpp", src)], &[]);
        assert_eq!(idents(&out), vec!["int", "body", "int", "after"]);
    }

    #[test]
    fn if_expression_with_defined_and_arith() {
        let src = "#if defined(A) && VALUE >= 2\nint yes;\n#else\nint no;\n#endif";
        let out = run(&[("m.cpp", src)], &[("A", None), ("VALUE", Some("3"))]);
        assert_eq!(idents(&out), vec!["int", "yes"]);
        let out = run(&[("m.cpp", src)], &[("A", None), ("VALUE", Some("1"))]);
        assert_eq!(idents(&out), vec!["int", "no"]);
    }

    #[test]
    fn elif_chains() {
        let src = "#if defined(A)\nint a;\n#elif defined(B)\nint b;\n#else\nint c;\n#endif";
        assert_eq!(idents(&run(&[("m.cpp", src)], &[("A", None)])), vec!["int", "a"]);
        assert_eq!(idents(&run(&[("m.cpp", src)], &[("B", None)])), vec!["int", "b"]);
        assert_eq!(idents(&run(&[("m.cpp", src)], &[])), vec!["int", "c"]);
    }

    #[test]
    fn nested_conditionals() {
        let src = "#ifdef A\n#ifdef B\nint ab;\n#endif\nint a;\n#endif\nint always;";
        assert_eq!(idents(&run(&[("m.cpp", src)], &[])), vec!["int", "always"]);
        assert_eq!(
            idents(&run(&[("m.cpp", src)], &[("A", None)])),
            vec!["int", "a", "int", "always"]
        );
        assert_eq!(
            idents(&run(&[("m.cpp", src)], &[("A", None), ("B", None)])),
            vec!["int", "ab", "int", "a", "int", "always"]
        );
    }

    #[test]
    fn error_directive_fires_only_when_active() {
        let mut ss = SourceSet::new();
        let m = ss.add("m.cpp", "#ifdef NOPE\n#error should not fire\n#endif\nint ok;");
        assert!(preprocess(&ss, m, &PpOptions::default()).is_ok());
        let m2 = ss.add("m2.cpp", "#error boom\n");
        let e = preprocess(&ss, m2, &PpOptions::default()).unwrap_err();
        assert!(e.message.contains("boom"));
    }

    #[test]
    fn pragma_retained_as_token() {
        let out = run(&[("m.cpp", "#pragma omp parallel for reduction(+:sum)\nfor_loop;")], &[]);
        let prag = out
            .tokens
            .iter()
            .find_map(|t| match &t.kind {
                TokKind::Pragma(inner) => Some(inner.clone()),
                _ => None,
            })
            .expect("pragma token present");
        assert_eq!(prag[0].kind.ident(), Some("omp"));
        assert_eq!(prag[1].kind.ident(), Some("parallel"));
        assert_eq!(prag[2].kind.ident(), Some("for"));
        assert!(prag.iter().any(|t| t.kind.ident() == Some("reduction")));
    }

    #[test]
    fn expansion_uses_use_site_location() {
        let out = run(&[("m.cpp", "#define K 5\n\n\nint x = K;")], &[]);
        let five = out.tokens.iter().find(|t| t.kind == TokKind::Int(5)).unwrap();
        assert_eq!(five.loc.line, 4);
    }

    #[test]
    fn lines_reconstruction_groups_by_source_line() {
        let out = run(&[("m.cpp", "int a;\nint b = 2 +\n 3;")], &[]);
        let lines = out.lines();
        assert_eq!(lines, vec!["int a ;", "int b = 2 +", "3 ;"]);
    }

    #[test]
    fn undef_removes_macro() {
        let out = run(&[("m.cpp", "#define N 9\n#undef N\nint x = N;")], &[]);
        assert!(idents(&out).contains(&"N".to_string()));
    }
}
