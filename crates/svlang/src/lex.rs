//! Lexer for the C/C++-family dialect.
//!
//! Produces a flat token stream with per-token locations.  Comments can be
//! retained (the CST/`T_src` path and the SLOC/LLOC counters need to know
//! where they are) or skipped (the preprocessor and AST parser paths).
//! Preprocessor directives are *not* interpreted here: a `#` at the start
//! of a line becomes a [`TokKind::Hash`] token and the preprocessor layer
//! consumes the rest of that logical line.

use crate::source::{FileId, LangError, Loc, Result};

/// Token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// Identifier or keyword (the parser distinguishes).
    Ident(String),
    /// Integer literal (value after parsing; hex/decimal).
    Int(i64),
    /// Floating-point literal.
    Real(f64),
    /// String literal (unescaped content).
    Str(String),
    /// Character literal.
    Char(char),
    /// Operator / punctuation, maximal munch (e.g. `<<=`, `->`, `::`).
    Punct(&'static str),
    /// `#` introducing a preprocessor directive (only at line start).
    Hash,
    /// A comment (only emitted when `keep_comments` is set); the payload is
    /// the raw text including delimiters.
    Comment(String),
    /// End of one source line — emitted only in directive-scanning mode so
    /// the preprocessor can find the end of a directive.  The normal token
    /// stream has no newline tokens.
    Newline,
    /// A retained `#pragma` directive carrying its content tokens.  The
    /// lexer never produces this; the preprocessor synthesises it so that
    /// semantic-bearing pragmas (OpenMP/OpenACC) survive preprocessing.
    Pragma(Vec<Token>),
}

impl TokKind {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this is the given punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, TokKind::Punct(q) if *q == p)
    }
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokKind,
    pub loc: Loc,
}

impl Token {
    pub fn new(kind: TokKind, loc: Loc) -> Self {
        Token { kind, loc }
    }
}

/// Multi-character punctuation, longest first (maximal munch).
const PUNCTS: &[&str] = &[
    "<<<", ">>>", "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "##", "{", "}", "(", ")",
    "[", "]", ";", ",", ".", "<", ">", "+", "-", "*", "/", "%", "=", "!", "&", "|", "^", "~", "?",
    ":", "#",
];

/// Lexer options.
#[derive(Debug, Clone, Copy, Default)]
pub struct LexOptions {
    /// Emit [`TokKind::Comment`] tokens instead of dropping comments.
    pub keep_comments: bool,
    /// Emit [`TokKind::Newline`] at each line break (directive scanning).
    pub keep_newlines: bool,
}

/// Tokenise `text` belonging to `file`.
pub fn lex(text: &str, file: FileId, path: &str, opts: LexOptions) -> Result<Vec<Token>> {
    let mut lx = Lexer {
        src: text.as_bytes(),
        pos: 0,
        line: 1,
        file,
        path,
        opts,
        at_line_start: true,
        out: Vec::new(),
    };
    lx.run()?;
    Ok(lx.out)
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    file: FileId,
    path: &'a str,
    opts: LexOptions,
    at_line_start: bool,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn loc(&self) -> Loc {
        Loc::new(self.file, self.line)
    }

    fn err(&self, msg: impl Into<String>) -> LangError {
        LangError::new(self.path, self.line, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            if self.opts.keep_newlines {
                self.out.push(Token::new(TokKind::Newline, Loc::new(self.file, self.line - 1)));
            }
            self.at_line_start = true;
        }
        Some(b)
    }

    fn push(&mut self, kind: TokKind, loc: Loc) {
        self.out.push(Token::new(kind, loc));
        self.at_line_start = false;
    }

    fn run(&mut self) -> Result<()> {
        while let Some(b) = self.peek() {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'\\' if self.peek2() == Some(b'\n') => {
                    // Line continuation: swallow, keep logical line flowing.
                    self.pos += 1;
                    self.bump();
                }
                b'/' if self.peek2() == Some(b'/') => self.line_comment(),
                b'/' if self.peek2() == Some(b'*') => self.block_comment()?,
                b'"' => self.string_lit()?,
                b'\'' => self.char_lit()?,
                b'0'..=b'9' => self.number()?,
                b'.' if self.peek2().is_some_and(|c| c.is_ascii_digit()) => self.number()?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
                b'#' if self.at_line_start => {
                    let loc = self.loc();
                    self.bump();
                    self.push(TokKind::Hash, loc);
                }
                _ => self.punct()?,
            }
        }
        Ok(())
    }

    fn line_comment(&mut self) {
        let loc = self.loc();
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.pos += 1;
        }
        if self.opts.keep_comments {
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.push(TokKind::Comment(text), loc);
        }
    }

    fn block_comment(&mut self) -> Result<()> {
        let loc = self.loc();
        let start = self.pos;
        self.pos += 2; // consume /*
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated block comment")),
                Some(b'*') if self.peek2() == Some(b'/') => {
                    self.pos += 2;
                    break;
                }
                Some(b'\n') => {
                    self.bump();
                }
                Some(_) => {
                    self.pos += 1;
                }
            }
        }
        if self.opts.keep_comments {
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.push(TokKind::Comment(text), loc);
        }
        Ok(())
    }

    fn string_lit(&mut self) -> Result<()> {
        let loc = self.loc();
        self.pos += 1; // opening quote
        let mut s = String::new();
        loop {
            match self.peek() {
                None | Some(b'\n') => return Err(self.err("unterminated string literal")),
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    s.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        b'0' => '\0',
                        b'\\' => '\\',
                        b'"' => '"',
                        b'\'' => '\'',
                        other => other as char,
                    });
                }
                Some(b) => {
                    self.pos += 1;
                    s.push(b as char);
                }
            }
        }
        self.push(TokKind::Str(s), loc);
        Ok(())
    }

    fn char_lit(&mut self) -> Result<()> {
        let loc = self.loc();
        self.pos += 1;
        let c = match self.peek().ok_or_else(|| self.err("unterminated char literal"))? {
            b'\\' => {
                self.pos += 1;
                let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                self.pos += 1;
                match esc {
                    b'n' => '\n',
                    b't' => '\t',
                    b'0' => '\0',
                    b'\\' => '\\',
                    b'\'' => '\'',
                    other => other as char,
                }
            }
            b => {
                self.pos += 1;
                b as char
            }
        };
        if self.peek() != Some(b'\'') {
            return Err(self.err("unterminated char literal"));
        }
        self.pos += 1;
        self.push(TokKind::Char(c), loc);
        Ok(())
    }

    fn number(&mut self) -> Result<()> {
        let loc = self.loc();
        let start = self.pos;
        // Hex?
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.pos += 2;
            let hs = self.pos;
            while self.peek().is_some_and(|b| b.is_ascii_hexdigit()) {
                self.pos += 1;
            }
            if self.pos == hs {
                return Err(self.err("empty hex literal"));
            }
            let text = std::str::from_utf8(&self.src[hs..self.pos]).unwrap();
            let v =
                i64::from_str_radix(text, 16).map_err(|_| self.err("hex literal out of range"))?;
            self.skip_int_suffix();
            self.push(TokKind::Int(v), loc);
            return Ok(());
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    self.pos += 1;
                }
                b'.' if !is_float && (self.peek2() != Some(b'.')) => {
                    // not the `..`/member case: 1.5 or "1." forms
                    is_float = true;
                    self.pos += 1;
                }
                b'e' | b'E' => {
                    // Exponent only if followed by digit or sign+digit.
                    let sign = self.peek2();
                    let after = self.src.get(self.pos + 2).copied();
                    let has_exp = match sign {
                        Some(d) if d.is_ascii_digit() => true,
                        Some(b'+') | Some(b'-') => after.is_some_and(|d| d.is_ascii_digit()),
                        _ => false,
                    };
                    if !has_exp {
                        break;
                    }
                    is_float = true;
                    self.pos += 2; // e and sign-or-digit
                    while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                        self.pos += 1;
                    }
                    break;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        // Float suffix promotes; integer suffixes are skipped.
        if matches!(self.peek(), Some(b'f') | Some(b'F')) {
            is_float = true;
            self.pos += 1;
        } else {
            self.skip_int_suffix();
        }
        if is_float {
            let v: f64 = text.parse().map_err(|_| self.err("bad float literal"))?;
            self.push(TokKind::Real(v), loc);
        } else {
            let v: i64 = text.parse().map_err(|_| self.err("int literal out of range"))?;
            self.push(TokKind::Int(v), loc);
        }
        Ok(())
    }

    fn skip_int_suffix(&mut self) {
        while matches!(self.peek(), Some(b'u') | Some(b'U') | Some(b'l') | Some(b'L')) {
            self.pos += 1;
        }
    }

    fn ident(&mut self) {
        let loc = self.loc();
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_') {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Ident(text), loc);
    }

    fn punct(&mut self) -> Result<()> {
        let loc = self.loc();
        for p in PUNCTS {
            if self.src[self.pos..].starts_with(p.as_bytes()) {
                self.pos += p.len();
                self.push(TokKind::Punct(p), loc);
                return Ok(());
            }
        }
        Err(self.err(format!("unexpected character '{}'", self.src[self.pos] as char)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<TokKind> {
        lex(text, FileId(0), "test.cpp", LexOptions::default())
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn idents_and_keywords_flow_through() {
        assert_eq!(
            kinds("int foo_1 _bar"),
            vec![
                TokKind::Ident("int".into()),
                TokKind::Ident("foo_1".into()),
                TokKind::Ident("_bar".into())
            ]
        );
    }

    #[test]
    fn integer_literals() {
        assert_eq!(
            kinds("42 0 0x1F 7u 9L"),
            vec![
                TokKind::Int(42),
                TokKind::Int(0),
                TokKind::Int(31),
                TokKind::Int(7),
                TokKind::Int(9),
            ]
        );
    }

    #[test]
    fn float_literals() {
        assert_eq!(
            kinds("1.5 0.4f 2e3 1.0e-5 .5"),
            vec![
                TokKind::Real(1.5),
                TokKind::Real(0.4),
                TokKind::Real(2000.0),
                TokKind::Real(1.0e-5),
                TokKind::Real(0.5),
            ]
        );
    }

    #[test]
    fn float_vs_member_access() {
        // `x.size` must not lex `.size` as a number.
        assert_eq!(
            kinds("x.size"),
            vec![TokKind::Ident("x".into()), TokKind::Punct("."), TokKind::Ident("size".into())]
        );
    }

    #[test]
    fn string_and_char_literals() {
        assert_eq!(
            kinds(r#""hi\n" 'a' '\n'"#),
            vec![TokKind::Str("hi\n".into()), TokKind::Char('a'), TokKind::Char('\n')]
        );
    }

    #[test]
    fn multi_char_puncts_maximal_munch() {
        assert_eq!(
            kinds("a<<<g,b>>>(x); y <<= 2; p->q; s::t"),
            vec![
                TokKind::Ident("a".into()),
                TokKind::Punct("<<<"),
                TokKind::Ident("g".into()),
                TokKind::Punct(","),
                TokKind::Ident("b".into()),
                TokKind::Punct(">>>"),
                TokKind::Punct("("),
                TokKind::Ident("x".into()),
                TokKind::Punct(")"),
                TokKind::Punct(";"),
                TokKind::Ident("y".into()),
                TokKind::Punct("<<="),
                TokKind::Int(2),
                TokKind::Punct(";"),
                TokKind::Ident("p".into()),
                TokKind::Punct("->"),
                TokKind::Ident("q".into()),
                TokKind::Punct(";"),
                TokKind::Ident("s".into()),
                TokKind::Punct("::"),
                TokKind::Ident("t".into()),
            ]
        );
    }

    #[test]
    fn comments_dropped_by_default() {
        assert_eq!(
            kinds("a // hi\nb /* multi\nline */ c"),
            vec![
                TokKind::Ident("a".into()),
                TokKind::Ident("b".into()),
                TokKind::Ident("c".into())
            ]
        );
    }

    #[test]
    fn comments_kept_when_asked() {
        let toks = lex(
            "a // hi\n/* b */",
            FileId(0),
            "t.cpp",
            LexOptions { keep_comments: true, keep_newlines: false },
        )
        .unwrap();
        let kinds: Vec<TokKind> = toks.into_iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TokKind::Ident("a".into()),
                TokKind::Comment("// hi".into()),
                TokKind::Comment("/* b */".into()),
            ]
        );
    }

    #[test]
    fn hash_only_at_line_start() {
        let toks = kinds("#include\nx # y");
        // First # is a directive hash; the inline # lexes as Punct("#").
        assert_eq!(toks[0], TokKind::Hash);
        assert_eq!(toks[1], TokKind::Ident("include".into()));
        assert_eq!(toks[3], TokKind::Punct("#"));
    }

    #[test]
    fn line_numbers_tracked() {
        let toks = lex("a\nb\n\nc", FileId(2), "t.cpp", LexOptions::default()).unwrap();
        let lines: Vec<u32> = toks.iter().map(|t| t.loc.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
        assert!(toks.iter().all(|t| t.loc.file == FileId(2)));
    }

    #[test]
    fn newline_tokens_in_directive_mode() {
        let toks = lex(
            "a\nb",
            FileId(0),
            "t.cpp",
            LexOptions { keep_comments: false, keep_newlines: true },
        )
        .unwrap();
        let kinds: Vec<TokKind> = toks.into_iter().map(|t| t.kind).collect();
        assert_eq!(
            kinds,
            vec![TokKind::Ident("a".into()), TokKind::Newline, TokKind::Ident("b".into())]
        );
    }

    #[test]
    fn line_continuation_joins() {
        let toks = lex("a \\\nb", FileId(0), "t.cpp", LexOptions::default()).unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].loc.line, 2); // physical line still counted
    }

    #[test]
    fn errors_carry_location() {
        let e = lex("\"unterminated", FileId(0), "z.cpp", LexOptions::default()).unwrap_err();
        assert_eq!(e.path, "z.cpp");
        assert_eq!(e.line, 1);
        let e2 = lex("a\n@", FileId(0), "z.cpp", LexOptions::default()).unwrap_err();
        assert_eq!(e2.line, 2);
        assert!(e2.message.contains('@'));
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("/* never ends", FileId(0), "t.cpp", LexOptions::default()).is_err());
    }
}
