//! Abstract syntax tree for the C/C++-family dialect.
//!
//! The AST is the dialect's equivalent of the ClangAST: it retains symbolic
//! relations, template-ish type arguments, lambdas, CUDA kernel-launch
//! syntax, and — crucially — OpenMP/OpenACC pragmas as first-class nodes
//! (the paper's key observation is that "OpenMP pragmas provide additional
//! semantics beyond those of the base language" and appear as dedicated
//! AST tokens in both Clang and GCC).
//!
//! Every node records its starting source line; block-like nodes also
//! record their end line so coverage masks can prune whole regions.

use crate::source::FileId;

/// A parsed translation unit (after preprocessing).
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The main file this unit was parsed from.
    pub main_file: FileId,
    pub items: Vec<Item>,
}

/// Top-level items.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    Function(Function),
    Struct(StructDef),
    Global(VarDecl),
    /// `using namespace foo;` / `using foo::bar;` — recorded for the tree,
    /// no semantic effect in the dialect.
    Using {
        path: Vec<String>,
        line: u32,
    },
    /// A free-standing pragma at file scope (e.g. `#pragma omp declare target`).
    Pragma(Pragma),
}

impl Item {
    /// Starting line of the item.
    pub fn line(&self) -> u32 {
        match self {
            Item::Function(f) => f.line,
            Item::Struct(s) => s.line,
            Item::Global(v) => v.line,
            Item::Using { line, .. } => *line,
            Item::Pragma(p) => p.line,
        }
    }
}

/// A struct/class definition with fields and methods.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// File the definition lives in (header functions keep their header id).
    pub file: FileId,
    pub name: String,
    pub fields: Vec<Param>,
    pub methods: Vec<Function>,
    pub line: u32,
    pub end_line: u32,
}

/// A function definition or declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// File the definition lives in (header functions keep their header id).
    pub file: FileId,
    /// Specifiers and target attributes, in source order: `static`,
    /// `inline`, `__global__`, `__device__`, `__host__`, `constexpr`.
    pub attrs: Vec<String>,
    pub ret: Type,
    pub name: String,
    pub params: Vec<Param>,
    /// `None` for a declaration (prototype).
    pub body: Option<Block>,
    pub line: u32,
    pub end_line: u32,
}

impl Function {
    /// True when the function is a CUDA/HIP device-side entry point.
    pub fn is_kernel(&self) -> bool {
        self.attrs.iter().any(|a| a == "__global__")
    }

    /// True when callable on the device (`__global__` or `__device__`).
    pub fn is_device(&self) -> bool {
        self.attrs.iter().any(|a| a == "__global__" || a == "__device__")
    }
}

/// A typed parameter or struct field.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub ty: Type,
    pub name: String,
    pub line: u32,
}

/// Types in the dialect.
#[derive(Debug, Clone, PartialEq)]
pub enum Type {
    Void,
    Bool,
    Char,
    Int,
    Long,
    /// `size_t`
    Size,
    Float,
    Double,
    /// `auto` (inference is approximated in sema).
    Auto,
    /// Possibly-qualified named type with template arguments:
    /// `std::vector<double>`, `sycl::accessor<double, 1>`.
    Named {
        path: Vec<String>,
        args: Vec<Type>,
    },
    /// Integer template argument, e.g. the `1` in `accessor<double, 1>`.
    IntConst(i64),
    Ptr(Box<Type>),
    Ref(Box<Type>),
    Const(Box<Type>),
}

impl Type {
    /// Canonical display used in tree labels, with names retained only for
    /// builtin/STL-ish types (user names are normalised away separately).
    pub fn label(&self) -> String {
        match self {
            Type::Void => "void".into(),
            Type::Bool => "bool".into(),
            Type::Char => "char".into(),
            Type::Int => "int".into(),
            Type::Long => "long".into(),
            Type::Size => "size_t".into(),
            Type::Float => "float".into(),
            Type::Double => "double".into(),
            Type::Auto => "auto".into(),
            Type::Named { path, args } => {
                let mut s = path.join("::");
                if !args.is_empty() {
                    s.push('<');
                    let parts: Vec<String> = args.iter().map(Type::label).collect();
                    s.push_str(&parts.join(","));
                    s.push('>');
                }
                s
            }
            Type::IntConst(v) => v.to_string(),
            Type::Ptr(t) => format!("{}*", t.label()),
            Type::Ref(t) => format!("{}&", t.label()),
            Type::Const(t) => format!("const {}", t.label()),
        }
    }

    /// Strip const/ref wrappers.
    pub fn decayed(&self) -> &Type {
        match self {
            Type::Const(t) | Type::Ref(t) => t.decayed(),
            other => other,
        }
    }

    /// Is this (after decay) a floating-point scalar?
    pub fn is_float(&self) -> bool {
        matches!(self.decayed(), Type::Float | Type::Double)
    }

    /// Is this (after decay) an integer scalar?
    pub fn is_int(&self) -> bool {
        matches!(self.decayed(), Type::Int | Type::Long | Type::Size | Type::Char)
    }
}

/// A `{}`-delimited statement list.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub stmts: Vec<Stmt>,
    pub line: u32,
    pub end_line: u32,
}

/// A variable declaration (local or global).
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// File the declaration lives in.
    pub file: FileId,
    pub ty: Type,
    pub name: String,
    pub init: Option<Expr>,
    pub line: u32,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    Decl(VarDecl),
    Expr {
        expr: Expr,
        line: u32,
    },
    If {
        cond: Expr,
        then_blk: Block,
        else_blk: Option<Block>,
        line: u32,
    },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Expr>,
        body: Block,
        line: u32,
    },
    While {
        cond: Expr,
        body: Block,
        line: u32,
    },
    Return {
        expr: Option<Expr>,
        line: u32,
    },
    /// `switch (scrutinee) { case K: …; default: … }` — each arm is a
    /// statement list; fallthrough is modelled by arms without `break`.
    Switch {
        scrutinee: Expr,
        arms: Vec<SwitchArm>,
        line: u32,
    },
    Break {
        line: u32,
    },
    Continue {
        line: u32,
    },
    Block(Block),
    /// A pragma, optionally attached to the statement it governs.
    Pragma {
        dir: Pragma,
        stmt: Option<Box<Stmt>>,
        line: u32,
    },
}

impl Stmt {
    /// Starting line.
    pub fn line(&self) -> u32 {
        match self {
            Stmt::Decl(v) => v.line,
            Stmt::Expr { line, .. }
            | Stmt::If { line, .. }
            | Stmt::For { line, .. }
            | Stmt::While { line, .. }
            | Stmt::Return { line, .. }
            | Stmt::Switch { line, .. }
            | Stmt::Break { line }
            | Stmt::Continue { line }
            | Stmt::Pragma { line, .. } => *line,
            Stmt::Block(b) => b.line,
        }
    }
}

/// One arm of a `switch` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchArm {
    /// `None` for `default:`.
    pub value: Option<i64>,
    pub stmts: Vec<Stmt>,
    pub line: u32,
}

/// A parsed `#pragma` directive.
#[derive(Debug, Clone, PartialEq)]
pub struct Pragma {
    /// File the pragma lives in.
    pub file: FileId,
    /// `omp`, `acc`, or any other first identifier.
    pub domain: String,
    /// Directive words, e.g. `["target", "teams", "distribute",
    /// "parallel", "for"]`.
    pub path: Vec<String>,
    pub clauses: Vec<Clause>,
    pub line: u32,
}

/// A pragma clause: `reduction(+:sum)` → name `reduction`,
/// args `["+", ":", "sum"]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Clause {
    pub name: String,
    pub args: Vec<String>,
}

impl Pragma {
    /// OpenMP/OpenACC executable constructs attach to the next statement;
    /// standalone directives (barriers, declare, update…) do not.
    pub fn attaches_to_statement(&self) -> bool {
        const ATTACHABLE: &[&str] = &[
            "parallel",
            "for",
            "simd",
            "target",
            "teams",
            "distribute",
            "taskloop",
            "task",
            "sections",
            "single",
            "atomic",
            "critical",
            "loop",
            "kernels",
            "data",
            "masked",
        ];
        // `target data` attaches (structured block); `target update`,
        // `declare`, `barrier`, `end` do not.
        match self.path.first().map(String::as_str) {
            Some("declare") | Some("barrier") | Some("end") | Some("update") | Some("taskwait")
            | Some("flush") | Some("routine") => false,
            Some(first) => {
                if self.path.iter().any(|w| w == "update" || w == "enter" || w == "exit") {
                    return false;
                }
                ATTACHABLE.contains(&first)
            }
            None => false,
        }
    }

    /// Directive display label, e.g. `OMPTargetTeamsDistributeParallelForDirective`
    /// in the style of Clang's OpenMP AST nodes.
    pub fn ast_label(&self) -> String {
        let domain = match self.domain.as_str() {
            "omp" => "OMP",
            "acc" => "ACC",
            other => return format!("PragmaDirective({other})"),
        };
        let mut s = String::from(domain);
        for w in &self.path {
            let mut cs = w.chars();
            if let Some(c0) = cs.next() {
                s.push(c0.to_ascii_uppercase());
                s.push_str(cs.as_str());
            }
        }
        s.push_str("Directive");
        s
    }
}

/// Expressions: a kind plus the starting line.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub line: u32,
}

impl Expr {
    pub fn new(kind: ExprKind, line: u32) -> Self {
        Expr { kind, line }
    }
}

/// Expression kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    Int(i64),
    Real(f64),
    Str(String),
    Char(char),
    Bool(bool),
    /// Possibly-qualified name: `x`, `std::max`, `sycl::range`.
    Path(Vec<String>),
    Unary {
        op: &'static str,
        expr: Box<Expr>,
        postfix: bool,
    },
    Binary {
        op: &'static str,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Assign {
        op: &'static str,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    Ternary {
        cond: Box<Expr>,
        then_e: Box<Expr>,
        else_e: Box<Expr>,
    },
    Call {
        callee: Box<Expr>,
        targs: Vec<Type>,
        args: Vec<Expr>,
    },
    /// CUDA/HIP triple-chevron launch: `kernel<<<grid, block>>>(args…)`.
    KernelLaunch {
        callee: Box<Expr>,
        grid: Box<Expr>,
        block: Box<Expr>,
        args: Vec<Expr>,
    },
    Index {
        base: Box<Expr>,
        index: Box<Expr>,
    },
    Member {
        base: Box<Expr>,
        member: String,
        arrow: bool,
    },
    /// `[capture](params) { body }`
    Lambda {
        capture: String,
        params: Vec<Param>,
        body: Block,
    },
    /// `(double)x` or `static_cast<double>(x)`.
    Cast {
        ty: Type,
        expr: Box<Expr>,
    },
    /// `Type(args)` / `Type{args}` construction.
    Construct {
        ty: Type,
        args: Vec<Expr>,
        brace: bool,
    },
    /// `{a, b, c}` initialiser list.
    InitList(Vec<Expr>),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_labels() {
        let t = Type::Named {
            path: vec!["sycl".into(), "accessor".into()],
            args: vec![Type::Double, Type::IntConst(1)],
        };
        assert_eq!(t.label(), "sycl::accessor<double,1>");
        assert_eq!(
            Type::Ptr(Box::new(Type::Const(Box::new(Type::Double)))).label(),
            "const double*"
        );
    }

    #[test]
    fn type_classification() {
        assert!(Type::Double.is_float());
        assert!(Type::Ref(Box::new(Type::Const(Box::new(Type::Float)))).is_float());
        assert!(Type::Size.is_int());
        assert!(!Type::Ptr(Box::new(Type::Int)).is_int());
    }

    #[test]
    fn pragma_labels_clang_style() {
        let p = Pragma {
            file: FileId(0),
            domain: "omp".into(),
            path: vec![
                "target".into(),
                "teams".into(),
                "distribute".into(),
                "parallel".into(),
                "for".into(),
            ],
            clauses: vec![],
            line: 1,
        };
        assert_eq!(p.ast_label(), "OMPTargetTeamsDistributeParallelForDirective");
        let a = Pragma {
            file: FileId(0),
            domain: "acc".into(),
            path: vec!["kernels".into()],
            clauses: vec![],
            line: 1,
        };
        assert_eq!(a.ast_label(), "ACCKernelsDirective");
    }

    #[test]
    fn pragma_attachment_rules() {
        let mk = |words: &[&str]| Pragma {
            file: FileId(0),
            domain: "omp".into(),
            path: words.iter().map(|s| s.to_string()).collect(),
            clauses: vec![],
            line: 1,
        };
        assert!(mk(&["parallel", "for"]).attaches_to_statement());
        assert!(mk(&["target", "teams", "distribute", "parallel", "for"]).attaches_to_statement());
        assert!(mk(&["target", "data"]).attaches_to_statement());
        assert!(!mk(&["target", "update"]).attaches_to_statement());
        assert!(!mk(&["target", "enter", "data"]).attaches_to_statement());
        assert!(!mk(&["declare", "target"]).attaches_to_statement());
        assert!(!mk(&["barrier"]).attaches_to_statement());
        assert!(!mk(&["end", "declare", "target"]).attaches_to_statement());
    }

    #[test]
    fn kernel_attr_queries() {
        let f = Function {
            file: FileId(0),
            attrs: vec!["__global__".into()],
            ret: Type::Void,
            name: "k".into(),
            params: vec![],
            body: None,
            line: 1,
            end_line: 1,
        };
        assert!(f.is_kernel());
        assert!(f.is_device());
    }
}
