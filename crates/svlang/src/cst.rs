//! Concrete syntax trees and the `T_src` normalisation.
//!
//! The paper obtains its CST from tree-sitter: a parse tree that "captures
//! all syntactical tokens required to fully reconstruct the source",
//! including low-semantic-value tokens like commas.  `T_src` is then the
//! CST "after normalisation … removes noise such as space, comments, and
//! control tokens", leaving "a tokenised view of the source with nodes that
//! represent syntactic elements — conceptually similar to what syntax
//! highlighters provide".  Notably the CST *cannot* discriminate between
//! function calls and functional-style casts; both are a `Call` token here,
//! exactly as the paper describes.
//!
//! This module builds that pair directly from the token stream:
//!
//! * [`build_cst`] — the raw concrete tree: bracket nesting gives structure,
//!   every token (commas, semicolons, comments when present) is a leaf.
//! * [`t_src`] — the normalised `T_src`: comments and control tokens
//!   dropped, names reduced to token types, literals and operators kept,
//!   pragmas retained as structured nodes.
//!
//! Because the CST layer is independent of the AST parser (like tree-sitter
//! is independent of Clang), `T_src` is comparable across anything that
//! lexes to the same token vocabulary.

use crate::lex::{TokKind, Token};
use std::sync::Arc;
use svtree::{Interner, Span, Tree, TreeBuilder};

/// Keywords that get their own labelled leaf in the highlight view.
const KEYWORDS: &[&str] = &[
    "if",
    "else",
    "for",
    "while",
    "do",
    "return",
    "break",
    "continue",
    "struct",
    "class",
    "using",
    "namespace",
    "const",
    "static",
    "inline",
    "constexpr",
    "auto",
    "void",
    "bool",
    "char",
    "int",
    "long",
    "size_t",
    "float",
    "double",
    "true",
    "false",
    "sizeof",
    "static_cast",
    "reinterpret_cast",
    "const_cast",
    "public",
    "private",
    "extern",
    "__global__",
    "__device__",
    "__host__",
    "mutable",
    "new",
    "delete",
    "template",
    "typename",
    "operator",
    "switch",
    "case",
    "default",
];

/// Control tokens removed by `T_src` normalisation (brackets become group
/// structure, so their leaves are also control tokens).
const CONTROL_PUNCTS: &[&str] = &[",", ";", "(", ")", "[", "]", "{", "}", "::", "#"];

fn classify(kind: &TokKind, next_is_open_paren: bool) -> String {
    match kind {
        TokKind::Ident(id) if KEYWORDS.contains(&id.as_str()) => format!("Kw({id})"),
        // The call-vs-cast ambiguity: any name followed by `(` is a Call.
        TokKind::Ident(_) if next_is_open_paren => "Call".into(),
        TokKind::Ident(_) => "Ident".into(),
        TokKind::Int(v) => format!("IntLit({v})"),
        TokKind::Real(v) => format!("RealLit({v})"),
        TokKind::Str(_) => "StrLit".into(),
        TokKind::Char(_) => "CharLit".into(),
        TokKind::Punct(p) => format!("Op({p})"),
        TokKind::Hash => "Op(#)".into(),
        TokKind::Comment(_) => "Comment".into(),
        TokKind::Newline => "Newline".into(),
        TokKind::Pragma(_) => "Pragma".into(),
    }
}

fn group_label(open: &str) -> &'static str {
    match open {
        "(" => "Parens",
        "[" => "Brackets",
        "{" => "Braces",
        _ => unreachable!(),
    }
}

fn closer(open: &str) -> &'static str {
    match open {
        "(" => ")",
        "[" => "]",
        "{" => "}",
        _ => unreachable!(),
    }
}

/// Build the raw concrete syntax tree from a token stream.
///
/// Structure comes from bracket nesting; every token is a leaf (including
/// the brackets themselves, so the source is fully reconstructible).
/// Unbalanced closers are tolerated (they become plain leaves) so the CST
/// works on macro-mangled or partial sources, as tree-sitter does.
pub fn build_cst(tokens: &[Token]) -> Tree {
    build_cst_in(Arc::new(Interner::new()), tokens)
}

/// [`build_cst`] with the label table shared with other trees of the unit.
pub fn build_cst_in(table: Arc<Interner>, tokens: &[Token]) -> Tree {
    let mut b = TreeBuilder::new_in(table, "Source");
    let mut stack: Vec<&'static str> = Vec::new(); // expected closers
    for (i, t) in tokens.iter().enumerate() {
        let span = Some(Span::line(t.loc.file.0, t.loc.line));
        match &t.kind {
            TokKind::Punct(p) if matches!(*p, "(" | "[" | "{") => {
                b.open_span(group_label(p), span);
                b.leaf_span(format!("Op({p})"), span);
                stack.push(closer(p));
            }
            TokKind::Punct(p) if matches!(*p, ")" | "]" | "}") => {
                if stack.last() == Some(p) {
                    b.leaf_span(format!("Op({p})"), span);
                    b.close();
                    stack.pop();
                } else {
                    b.leaf_span(format!("Op({p})"), span);
                }
            }
            TokKind::Pragma(inner) => {
                b.open_span("Pragma", span);
                for it in inner {
                    let next_open = false;
                    b.leaf_span(classify(&it.kind, next_open), span);
                }
                b.close();
            }
            kind => {
                let next_open = tokens.get(i + 1).is_some_and(|n| n.kind.is_punct("("));
                b.leaf_span(classify(kind, next_open), span);
            }
        }
    }
    // Close any unbalanced groups so the builder finishes cleanly.
    while b.depth() > 1 {
        b.close();
    }
    b.finish()
}

/// `T_src`: the normalised perceived-syntax tree.
///
/// Drops comments and control tokens; keeps keywords, call markers,
/// identifiers (as bare token types — programmer names are already gone),
/// literals, operators, and pragma structure.
pub fn t_src(tokens: &[Token]) -> Tree {
    t_src_in(Arc::new(Interner::new()), tokens)
}

/// [`t_src`] with the label table shared with other trees of the unit (the
/// interning [`TreeBuilder`] puts every tree of one compilation unit on a
/// single string table).
pub fn t_src_in(table: Arc<Interner>, tokens: &[Token]) -> Tree {
    let cst = build_cst_in(table, tokens);
    cst.filter_splice(|t, n| {
        let l = t.label(n);
        if l == "Comment" || l == "Newline" {
            return false;
        }
        if let Some(p) = l.strip_prefix("Op(").and_then(|s| s.strip_suffix(')')) {
            return !CONTROL_PUNCTS.contains(&p);
        }
        true
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::{lex, LexOptions};
    use crate::pp::{preprocess, PpOptions};
    use crate::source::{FileId, SourceSet};

    fn toks(src: &str) -> Vec<Token> {
        lex(src, FileId(0), "t.cpp", LexOptions { keep_comments: true, keep_newlines: false })
            .unwrap()
    }

    fn pp_toks(src: &str) -> Vec<Token> {
        let mut ss = SourceSet::new();
        let m = ss.add("t.cpp", src);
        preprocess(&ss, m, &PpOptions::default()).unwrap().tokens
    }

    #[test]
    fn raw_cst_keeps_everything() {
        let t = build_cst(&toks("f(a, b); // note"));
        let s = t.to_sexpr();
        assert!(s.contains("Call"), "{s}");
        assert!(s.contains("Op(,)"), "{s}");
        assert!(s.contains("Op(;)"), "{s}");
        assert!(s.contains("Comment"), "{s}");
    }

    #[test]
    fn nesting_follows_brackets() {
        let t = build_cst(&toks("a[i] = (b + c);"));
        let s = t.to_sexpr();
        assert!(s.contains("(Brackets"), "{s}");
        assert!(s.contains("(Parens"), "{s}");
    }

    #[test]
    fn call_vs_cast_is_one_token() {
        // Function call and functional-style cast both classify as Call —
        // the CST "cannot discriminate" per the paper.
        let call = build_cst(&toks("foo(x)"));
        let cast = build_cst(&toks("double(x)"));
        assert!(call.to_sexpr().contains("Call"));
        // `double` is a keyword so it stays Kw — use a named type instead:
        let cast2 = build_cst(&toks("T(x)"));
        assert!(cast2.to_sexpr().contains("Call"));
        let _ = cast;
    }

    #[test]
    fn normalisation_drops_noise() {
        let t = t_src(&toks("f(a, b); // note"));
        let s = t.to_sexpr();
        assert!(!s.contains("Comment"), "{s}");
        assert!(!s.contains("Op(,)"), "{s}");
        assert!(!s.contains("Op(;)"), "{s}");
        assert!(s.contains("Call"), "{s}");
        assert!(s.contains("Ident"), "{s}");
        // Group structure survives even though bracket leaves are gone.
        assert!(s.contains("(Parens"), "{s}");
    }

    #[test]
    fn names_are_normalised_away() {
        let a = t_src(&toks("alpha = beta + 1;"));
        let b = t_src(&toks("x = y + 1;"));
        assert_eq!(a.to_sexpr(), b.to_sexpr());
        let c = t_src(&toks("x = y - 1;"));
        assert_ne!(a.to_sexpr(), c.to_sexpr());
    }

    #[test]
    fn literals_and_operators_kept() {
        let t = t_src(&toks("x = 42 * 1.5;"));
        let s = t.to_sexpr();
        assert!(s.contains("IntLit(42)"), "{s}");
        assert!(s.contains("RealLit(1.5)"), "{s}");
        assert!(s.contains("Op(*)"), "{s}");
        assert!(s.contains("Op(=)"), "{s}");
    }

    #[test]
    fn pragma_survives_normalisation() {
        let t =
            t_src(&pp_toks("#pragma omp parallel for\nfor (int i = 0; i < n; i++) a[i] = 0.0;"));
        let s = t.to_sexpr();
        assert!(s.contains("(Pragma"), "{s}");
        assert!(s.contains("Kw(for)"), "{s}");
    }

    #[test]
    fn unbalanced_closers_tolerated() {
        let t = build_cst(&toks(") } ]"));
        assert_eq!(t.size(), 4); // root + three stray closer leaves
        let t2 = build_cst(&toks("( a"));
        assert!(t2.to_sexpr().contains("(Parens"));
    }

    #[test]
    fn spans_recorded() {
        let t = t_src(&toks("x = 1;\ny = 2;"));
        let spans: Vec<u32> =
            t.preorder().filter_map(|n| t.span(n)).map(|s| s.start_line).collect();
        assert!(spans.contains(&1));
        assert!(spans.contains(&2));
    }

    #[test]
    fn identical_sources_identical_trees() {
        let a = t_src(&toks("for (int i = 0; i < n; i++) { c[i] = a[i] + b[i]; }"));
        let b = t_src(&toks("for (int i = 0; i < n; i++) { c[i] = a[i] + b[i]; }"));
        assert_eq!(a.structural_hash(), b.structural_hash());
    }
}
