//! AST → semantic-bearing tree (`T_sem` / `T_sem+i`) emission.
//!
//! Mirrors what the paper extracts from the ClangAST: "we discard all
//! non-semantic nodes and record only the node type, literal, and operator
//! names", programmer names are normalised to token types, and two variants
//! are produced — `T_sem` as written, and `T_sem+i` "which inlines all
//! function invocations that originated from the same source at the tree
//! level (i.e., system headers or libraries are excluded)".
//!
//! Clang-style verbosity is reproduced deliberately: rvalue uses of
//! variables are wrapped in `ImplicitCastExpr(LValueToRValue)` and mixed
//! int/float arithmetic inserts `ImplicitCastExpr(IntegralToFloating)` —
//! "implicit and value category casts are prevalent and visible in most
//! statements".  OpenMP/OpenACC pragmas become dedicated directive nodes
//! with clause children, which is what gives the directive models their
//! characteristic `T_sem > T_src` divergence signature.

use crate::ast::*;
use crate::sema::{infer, Registry, Scopes, Ty};
use crate::source::FileId;
use std::sync::Arc;
use svtree::{Interner, Span, Tree, TreeBuilder};

/// Options for semantic-tree emission.
#[derive(Debug, Clone, Copy, Default)]
pub struct SemOptions {
    /// Maximum call-inlining depth; 0 produces the plain `T_sem`,
    /// anything greater produces `T_sem+i`.
    pub inline_depth: usize,
}

impl SemOptions {
    /// Plain `T_sem`.
    pub const PLAIN: SemOptions = SemOptions { inline_depth: 0 };
    /// `T_sem+i` with the default depth used throughout the evaluation.
    pub const INLINED: SemOptions = SemOptions { inline_depth: 3 };
}

/// Emit the semantic tree for a parsed unit.
pub fn t_sem(prog: &Program, reg: &Registry, opts: SemOptions) -> Tree {
    t_sem_in(Arc::new(Interner::new()), prog, reg, opts)
}

/// [`t_sem`] with the label table shared with other trees of the unit.
pub fn t_sem_in(table: Arc<Interner>, prog: &Program, reg: &Registry, opts: SemOptions) -> Tree {
    let mut e = Emitter {
        b: TreeBuilder::new_in(table, "TranslationUnit"),
        reg,
        opts,
        scopes: Scopes::new(),
        file: prog.main_file,
        inline_stack: Vec::new(),
    };
    for item in &prog.items {
        e.item(item);
    }
    e.b.finish()
}

struct Emitter<'r> {
    b: TreeBuilder,
    reg: &'r Registry,
    opts: SemOptions,
    scopes: Scopes,
    file: FileId,
    /// Names currently being inlined (cycle guard).
    inline_stack: Vec<String>,
}

impl Emitter<'_> {
    fn span(&self, line: u32) -> Option<Span> {
        Some(Span::line(self.file.0, line))
    }

    fn span_range(&self, start: u32, end: u32) -> Option<Span> {
        Some(Span::lines(self.file.0, start, end.max(start)))
    }

    /// Normalise a type label: programmer-defined record names become
    /// `Record`, everything else (builtins and library types) is kept —
    /// library API surface is semantic-bearing, user naming is not.
    fn type_label(&self, t: &Type) -> String {
        match t {
            Type::Named { path, args } => {
                if path.len() == 1 && self.reg.is_record(&path[0]) {
                    "Record".to_string()
                } else {
                    let mut s = path.join("::");
                    if !args.is_empty() {
                        s.push('<');
                        let parts: Vec<String> = args.iter().map(|a| self.type_label(a)).collect();
                        s.push_str(&parts.join(","));
                        s.push('>');
                    }
                    s
                }
            }
            Type::Ptr(inner) => format!("{}*", self.type_label(inner)),
            Type::Ref(inner) => format!("{}&", self.type_label(inner)),
            Type::Const(inner) => format!("const {}", self.type_label(inner)),
            other => other.label(),
        }
    }

    // -- items -------------------------------------------------------------

    fn item(&mut self, item: &Item) {
        match item {
            Item::Function(f) => {
                let prev = std::mem::replace(&mut self.file, f.file);
                self.function(f, "FunctionDecl");
                self.file = prev;
            }
            Item::Struct(s) => {
                let prev = std::mem::replace(&mut self.file, s.file);
                self.b.open_span("RecordDecl", self.span_range(s.line, s.end_line));
                for fld in &s.fields {
                    self.b.leaf_span(
                        format!("FieldDecl({})", self.type_label(&fld.ty)),
                        self.span(fld.line),
                    );
                }
                for m in &s.methods {
                    self.function(m, "CXXMethodDecl");
                }
                self.b.close();
                self.file = prev;
            }
            Item::Global(v) => {
                let prev = std::mem::replace(&mut self.file, v.file);
                self.var_decl(v);
                self.file = prev;
            }
            Item::Using { line, .. } => {
                self.b.leaf_span("UsingDirectiveDecl", self.span(*line));
            }
            Item::Pragma(p) => {
                let prev = std::mem::replace(&mut self.file, p.file);
                self.pragma(p, None);
                self.file = prev;
            }
        }
    }

    fn function(&mut self, f: &Function, label: &str) {
        self.b.open_span(label, self.span_range(f.line, f.end_line));
        for a in &f.attrs {
            let attr = match a.as_str() {
                "__global__" => "CUDAGlobalAttr",
                "__device__" => "CUDADeviceAttr",
                "__host__" => "CUDAHostAttr",
                "static" => "StaticSpec",
                "inline" => "InlineSpec",
                "constexpr" => "ConstexprSpec",
                "extern" => "ExternSpec",
                other => other,
            };
            self.b.leaf_span(attr, self.span(f.line));
        }
        self.b.leaf_span(format!("Type({})", self.type_label(&f.ret)), self.span(f.line));
        self.scopes.push();
        for p in &f.params {
            self.b.leaf_span(format!("ParmVarDecl({})", self.type_label(&p.ty)), self.span(p.line));
            self.scopes.declare(&p.name, Ty::of(&p.ty));
        }
        if let Some(body) = &f.body {
            self.block(body);
        }
        self.scopes.pop();
        self.b.close();
    }

    fn var_decl(&mut self, v: &VarDecl) {
        self.b.open_span(format!("VarDecl({})", self.type_label(&v.ty)), self.span(v.line));
        let declared = match (&v.init, Ty::of(&v.ty)) {
            (Some(init), want) => {
                let got = infer(init, &self.scopes, self.reg);
                // Initialising a float from an int (or vice versa) inserts
                // the conversion Clang would.
                match (want, got) {
                    (Ty::Real, Ty::Int) => {
                        self.b.open_span("ImplicitCastExpr(IntegralToFloating)", self.span(v.line));
                        self.expr(init, false);
                        self.b.close();
                    }
                    (Ty::Int, Ty::Real) => {
                        self.b.open_span("ImplicitCastExpr(FloatingToIntegral)", self.span(v.line));
                        self.expr(init, false);
                        self.b.close();
                    }
                    _ => self.expr(init, false),
                }
                if want == Ty::Unknown {
                    got
                } else {
                    want
                }
            }
            (None, want) => want,
        };
        self.scopes.declare(&v.name, declared);
        self.b.close();
    }

    // -- statements ----------------------------------------------------------

    fn block(&mut self, blk: &Block) {
        self.b.open_span("CompoundStmt", self.span_range(blk.line, blk.end_line));
        self.scopes.push();
        for s in &blk.stmts {
            self.stmt(s);
        }
        self.scopes.pop();
        self.b.close();
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl(v) => {
                self.b.open_span("DeclStmt", self.span(v.line));
                self.var_decl(v);
                self.b.close();
            }
            Stmt::Expr { expr, .. } => self.expr(expr, false),
            Stmt::If { cond, then_blk, else_blk, line } => {
                self.b.open_span("IfStmt", self.span(*line));
                self.expr(cond, false);
                self.block(then_blk);
                if let Some(e) = else_blk {
                    self.block(e);
                }
                self.b.close();
            }
            Stmt::For { init, cond, step, body, line } => {
                self.b.open_span("ForStmt", self.span(*line));
                self.scopes.push();
                match init {
                    Some(s) => self.stmt(s),
                    None => {
                        self.b.leaf_span("NullStmt", self.span(*line));
                    }
                }
                match cond {
                    Some(c) => self.expr(c, false),
                    None => {
                        self.b.leaf_span("NullExpr", self.span(*line));
                    }
                }
                match step {
                    Some(st) => self.expr(st, false),
                    None => {
                        self.b.leaf_span("NullExpr", self.span(*line));
                    }
                }
                self.block(body);
                self.scopes.pop();
                self.b.close();
            }
            Stmt::While { cond, body, line } => {
                self.b.open_span("WhileStmt", self.span(*line));
                self.expr(cond, false);
                self.block(body);
                self.b.close();
            }
            Stmt::Switch { scrutinee, arms, line } => {
                self.b.open_span("SwitchStmt", self.span(*line));
                self.expr(scrutinee, false);
                for arm in arms {
                    let label = match arm.value {
                        Some(v) => format!("CaseStmt({v})"),
                        None => "DefaultStmt".to_string(),
                    };
                    self.b.open_span(label, self.span(arm.line));
                    for st in &arm.stmts {
                        self.stmt(st);
                    }
                    self.b.close();
                }
                self.b.close();
            }
            Stmt::Return { expr, line } => {
                self.b.open_span("ReturnStmt", self.span(*line));
                if let Some(e) = expr {
                    self.expr(e, false);
                }
                self.b.close();
            }
            Stmt::Break { line } => {
                self.b.leaf_span("BreakStmt", self.span(*line));
            }
            Stmt::Continue { line } => {
                self.b.leaf_span("ContinueStmt", self.span(*line));
            }
            Stmt::Block(b) => self.block(b),
            Stmt::Pragma { dir, stmt, .. } => self.pragma(dir, stmt.as_deref()),
        }
    }

    fn pragma(&mut self, dir: &Pragma, attached: Option<&Stmt>) {
        self.b.open_span(dir.ast_label(), self.span(dir.line));
        for c in &dir.clauses {
            self.clause(c, dir);
        }
        if dir.domain == "omp" {
            // Clang materialises substantial implicit semantics for every
            // OpenMP construct — this is the paper's core finding ("the
            // subtree containing an OpenMP token is handled at the compiler
            // level: the semantic meaning is ascribed in a way that is
            // opaque in the source").  Reproduce the shape: implicit
            // data-sharing clauses, captured-region bookkeeping, and for
            // loop directives the distilled iteration space.
            let sp = self.span(dir.line);
            self.b.leaf_span("OMPSharedClause(implicit)", sp);
            self.b.leaf_span("OMPFirstprivateClause(implicit)", sp);
            let is_loop = dir
                .path
                .iter()
                .any(|w| matches!(w.as_str(), "for" | "simd" | "taskloop" | "distribute" | "loop"));
            if is_loop {
                self.b.open_span("OMPLoopIterationSpace", sp);
                self.b.leaf_span("OMPLowerBoundVariable", sp);
                self.b.leaf_span("OMPUpperBoundVariable", sp);
                self.b.leaf_span("OMPStrideVariable", sp);
                self.b.leaf_span("OMPIterationVariable", sp);
                self.b.leaf_span("OMPLastIteration", sp);
                self.b.leaf_span("OMPPreCondition", sp);
                self.b.close();
            }
            if dir.path.iter().any(|w| w == "target") {
                self.b.open_span("OMPTargetDataEnvironment", sp);
                self.b.leaf_span("OMPImplicitDeviceClause", sp);
                self.b.leaf_span("OMPImplicitMapClause", sp);
                self.b.close();
            }
            if let Some(s) = attached {
                self.b.open_span("CapturedStmt", sp);
                self.b.leaf_span("CapturedDecl", sp);
                self.stmt(s);
                self.b.close();
            }
        } else if let Some(s) = attached {
            self.stmt(s);
        }
        self.b.close();
    }

    fn clause(&mut self, c: &Clause, dir: &Pragma) {
        // Clause modifiers that are keywords/operators (not programmer
        // names) stay in the label — `reduction(+:sum)` keeps the `+` but
        // drops `sum`, matching the name-normalisation rule.
        const MODIFIERS: &[&str] = &[
            "+", "*", "-", "max", "min", "static", "dynamic", "guided", "tofrom", "to", "from",
            "alloc", "none", "shared", "present", "seq_cst",
        ];
        let domain = if dir.domain == "acc" { "ACC" } else { "OMP" };
        let mut camel = String::new();
        for part in c.name.split('_') {
            let mut cs = part.chars();
            if let Some(c0) = cs.next() {
                camel.push(c0.to_ascii_uppercase());
                camel.push_str(cs.as_str());
            }
        }
        let label = match c.args.first().map(String::as_str) {
            Some(first) if MODIFIERS.contains(&first) => {
                format!("{domain}{camel}Clause({first})")
            }
            _ => format!("{domain}{camel}Clause"),
        };
        if c.args.is_empty() {
            self.b.leaf_span(label, self.span(dir.line));
        } else {
            self.b.open_span(label, self.span(dir.line));
            // Remaining args appear as normalised token leaves: a clause
            // over 3 variables is semantically bigger than one over 1.
            for a in &c.args {
                if a == ":" || a == "," || MODIFIERS.contains(&a.as_str()) {
                    continue;
                }
                let leaf = if a.chars().next().is_some_and(|ch| ch.is_ascii_digit()) {
                    format!("IntegerLiteral({a})")
                } else if a.chars().all(|ch| ch.is_alphanumeric() || ch == '_') {
                    "DeclRefExpr".to_string()
                } else {
                    format!("Token({a})")
                };
                self.b.leaf_span(leaf, self.span(dir.line));
            }
            self.b.close();
        }
    }

    // -- expressions ----------------------------------------------------------

    /// Emit an expression.  `as_lvalue` suppresses the LValueToRValue
    /// wrapper (assignment targets, address-of operands).
    fn expr(&mut self, e: &Expr, as_lvalue: bool) {
        let line = e.line;
        match &e.kind {
            ExprKind::Int(v) => {
                self.b.leaf_span(format!("IntegerLiteral({v})"), self.span(line));
            }
            ExprKind::Real(v) => {
                self.b.leaf_span(format!("FloatingLiteral({v})"), self.span(line));
            }
            ExprKind::Str(_) => {
                self.b.leaf_span("StringLiteral", self.span(line));
            }
            ExprKind::Char(_) => {
                self.b.leaf_span("CharacterLiteral", self.span(line));
            }
            ExprKind::Bool(v) => {
                self.b.leaf_span(format!("CXXBoolLiteralExpr({v})"), self.span(line));
            }
            ExprKind::Path(_) => {
                if as_lvalue {
                    self.b.leaf_span("DeclRefExpr", self.span(line));
                } else {
                    self.b.open_span("ImplicitCastExpr(LValueToRValue)", self.span(line));
                    self.b.leaf_span("DeclRefExpr", self.span(line));
                    self.b.close();
                }
            }
            ExprKind::Unary { op, expr, postfix } => {
                let label = if *postfix {
                    format!("UnaryOperator(post{op})")
                } else {
                    format!("UnaryOperator({op})")
                };
                self.b.open_span(label, self.span(line));
                // ++/--/& treat the operand as an lvalue.
                let lv = matches!(*op, "++" | "--" | "&");
                self.expr(expr, lv);
                self.b.close();
            }
            ExprKind::Binary { op, lhs, rhs } => {
                self.b.open_span(format!("BinaryOperator({op})"), self.span(line));
                let lt = infer(lhs, &self.scopes, self.reg);
                let rt = infer(rhs, &self.scopes, self.reg);
                let arith = matches!(*op, "+" | "-" | "*" | "/" | "%");
                let promote_l = arith && lt == Ty::Int && rt == Ty::Real;
                let promote_r = arith && rt == Ty::Int && lt == Ty::Real;
                if promote_l {
                    self.b.open_span("ImplicitCastExpr(IntegralToFloating)", self.span(line));
                    self.expr(lhs, false);
                    self.b.close();
                } else {
                    self.expr(lhs, false);
                }
                if promote_r {
                    self.b.open_span("ImplicitCastExpr(IntegralToFloating)", self.span(line));
                    self.expr(rhs, false);
                    self.b.close();
                } else {
                    self.expr(rhs, false);
                }
                self.b.close();
            }
            ExprKind::Assign { op, lhs, rhs } => {
                let label = if *op == "=" {
                    "BinaryOperator(=)".to_string()
                } else {
                    format!("CompoundAssignOperator({op})")
                };
                self.b.open_span(label, self.span(line));
                self.expr(lhs, true);
                let lt = infer(lhs, &self.scopes, self.reg);
                let rt = infer(rhs, &self.scopes, self.reg);
                if lt == Ty::Real && rt == Ty::Int {
                    self.b.open_span("ImplicitCastExpr(IntegralToFloating)", self.span(line));
                    self.expr(rhs, false);
                    self.b.close();
                } else {
                    self.expr(rhs, false);
                }
                self.b.close();
            }
            ExprKind::Ternary { cond, then_e, else_e } => {
                self.b.open_span("ConditionalOperator", self.span(line));
                self.expr(cond, false);
                self.expr(then_e, false);
                self.expr(else_e, false);
                self.b.close();
            }
            ExprKind::Call { callee, targs, args } => {
                self.b.open_span("CallExpr", self.span(line));
                // Callee reference (function names normalised away).
                self.expr(callee, true);
                for t in targs {
                    self.b.leaf_span(
                        format!("TemplateArgument({})", self.type_label(t)),
                        self.span(line),
                    );
                }
                for a in args {
                    self.expr(a, false);
                }
                self.maybe_inline(callee, line);
                self.b.close();
            }
            ExprKind::KernelLaunch { callee, grid, block, args } => {
                self.b.open_span("CUDAKernelCallExpr", self.span(line));
                self.expr(callee, true);
                self.b.open_span("KernelConfig", self.span(line));
                self.expr(grid, false);
                self.expr(block, false);
                self.b.close();
                for a in args {
                    self.expr(a, false);
                }
                self.maybe_inline(callee, line);
                self.b.close();
            }
            ExprKind::Index { base, index } => {
                if as_lvalue {
                    self.b.open_span("ArraySubscriptExpr", self.span(line));
                } else {
                    self.b.open_span("ImplicitCastExpr(LValueToRValue)", self.span(line));
                    self.b.open_span("ArraySubscriptExpr", self.span(line));
                }
                self.expr(base, true);
                self.expr(index, false);
                self.b.close();
                if !as_lvalue {
                    self.b.close();
                }
            }
            ExprKind::Member { base, arrow, .. } => {
                let label = if *arrow { "MemberExpr(->)" } else { "MemberExpr(.)" };
                self.b.open_span(label, self.span(line));
                self.expr(base, true);
                self.b.close();
            }
            ExprKind::Lambda { capture, params, body } => {
                self.b.open_span("LambdaExpr", self.span_range(body.line, body.end_line));
                let cap = match capture.as_str() {
                    "=" => "LambdaCapture(byCopy)".to_string(),
                    "&" => "LambdaCapture(byRef)".to_string(),
                    "" => "LambdaCapture(none)".to_string(),
                    _ => "LambdaCapture(explicit)".to_string(),
                };
                self.b.leaf_span(cap, self.span(line));
                self.scopes.push();
                for p in params {
                    self.b.leaf_span(
                        format!("ParmVarDecl({})", self.type_label(&p.ty)),
                        self.span(p.line),
                    );
                    self.scopes.declare(&p.name, Ty::of(&p.ty));
                }
                self.block(body);
                self.scopes.pop();
                self.b.close();
            }
            ExprKind::Cast { ty, expr } => {
                self.b
                    .open_span(format!("CStyleCastExpr({})", self.type_label(ty)), self.span(line));
                self.expr(expr, false);
                self.b.close();
            }
            ExprKind::Construct { ty, args, .. } => {
                self.b.open_span(
                    format!("CXXConstructExpr({})", self.type_label(ty)),
                    self.span(line),
                );
                for a in args {
                    self.expr(a, false);
                }
                self.b.close();
            }
            ExprKind::InitList(items) => {
                self.b.open_span("InitListExpr", self.span(line));
                for it in items {
                    self.expr(it, false);
                }
                self.b.close();
            }
        }
    }

    /// For `T_sem+i`: if the callee is a same-codebase function, graft its
    /// body into the call node.
    fn maybe_inline(&mut self, callee: &Expr, line: u32) {
        if self.opts.inline_depth == 0 {
            return;
        }
        let ExprKind::Path(p) = &callee.kind else { return };
        if p.len() != 1 {
            return;
        }
        let name = &p[0];
        if self.inline_stack.len() >= self.opts.inline_depth
            || self.inline_stack.iter().any(|n| n == name)
        {
            return;
        }
        let Some(f) = self.reg.inlinable(name).cloned() else { return };
        let Some(body) = &f.body else { return };
        self.inline_stack.push(name.clone());
        self.b.open_span("InlinedCallee", self.span(line));
        let prev_file = std::mem::replace(&mut self.file, f.file);
        self.scopes.push();
        for prm in &f.params {
            self.scopes.declare(&prm.name, Ty::of(&prm.ty));
        }
        self.block(body);
        self.scopes.pop();
        self.file = prev_file;
        self.b.close();
        self.inline_stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pp::{preprocess, PpOptions};
    use crate::sema::Registry;
    use crate::source::SourceSet;

    fn emit(srcs: &[(&str, &str, bool)], opts: SemOptions) -> Tree {
        let mut ss = SourceSet::new();
        for (p, t, sys) in srcs {
            if *sys {
                ss.add_system(*p, *t);
            } else {
                ss.add(*p, *t);
            }
        }
        let m = ss.lookup(srcs[0].0).unwrap();
        let out = preprocess(&ss, m, &PpOptions::default()).unwrap();
        let prog = crate::parse::parse(out.tokens, m, srcs[0].0).unwrap();
        let reg = Registry::build(&prog, &out.system_files);
        t_sem(&prog, &reg, opts)
    }

    fn emit1(src: &str) -> Tree {
        emit(&[("m.cpp", src, false)], SemOptions::PLAIN)
    }

    #[test]
    fn simple_function_shape() {
        let t = emit1("int main() { return 0; }");
        let s = t.to_sexpr();
        assert!(s.starts_with("(TranslationUnit (FunctionDecl"), "{s}");
        assert!(s.contains("Type(int)"), "{s}");
        assert!(s.contains("(ReturnStmt IntegerLiteral(0))"), "{s}");
    }

    #[test]
    fn names_stripped_everywhere() {
        let a = emit1("double f(double alpha) { return alpha * 2.0; }");
        let b = emit1("double g(double beta) { return beta * 2.0; }");
        assert_eq!(a.to_sexpr(), b.to_sexpr());
    }

    #[test]
    fn lvalue_to_rvalue_casts_inserted() {
        let t = emit1("void f(double x) { double y = x; }");
        let s = t.to_sexpr();
        assert!(s.contains("ImplicitCastExpr(LValueToRValue)"), "{s}");
    }

    #[test]
    fn assignment_target_not_rvalue_cast() {
        let t = emit1("void f() { int x; x = 1; }");
        let s = t.to_sexpr();
        // exactly zero LValueToRValue: x is only written.
        assert!(!s.contains("LValueToRValue"), "{s}");
    }

    #[test]
    fn integral_to_floating_promotion() {
        let t = emit1("void f(double d, int i) { double r = d * i; }");
        let s = t.to_sexpr();
        assert!(s.contains("ImplicitCastExpr(IntegralToFloating)"), "{s}");
    }

    #[test]
    fn float_init_from_int_literal_promotes() {
        let t = emit1("double x = 1;");
        assert!(t.to_sexpr().contains("IntegralToFloating"));
        let u = emit1("double x = 1.0;");
        assert!(!u.to_sexpr().contains("IntegralToFloating"));
    }

    #[test]
    fn omp_pragma_becomes_directive_node() {
        let t = emit1(
            "void f(int n) {\n#pragma omp parallel for reduction(+:sum) schedule(static)\nfor (int i = 0; i < n; i++) g(i); }",
        );
        let s = t.to_sexpr();
        assert!(s.contains("(OMPParallelForDirective"), "{s}");
        assert!(s.contains("OMPReductionClause(+)"), "{s}");
        assert!(s.contains("OMPScheduleClause(static)"), "{s}");
        // attached loop nests under the directive
        assert!(s.contains("Directive") && s.contains("ForStmt"), "{s}");
    }

    #[test]
    fn omp_directive_carries_semantics_beyond_source() {
        // The paper's observation: one pragma line yields a rich subtree.
        let with = emit1(
            "void f(int n) {\n#pragma omp parallel for\nfor (int i = 0; i < n; i++) a[i] = 0.0; }",
        );
        let without = emit1("void f(int n) {\nfor (int i = 0; i < n; i++) a[i] = 0.0; }");
        assert!(with.size() > without.size());
    }

    #[test]
    fn cuda_kernel_launch_nodes() {
        let t = emit1(
            "__global__ void k(double* a) { a[0] = 1.0; }\nvoid host() { k<<<64, 256>>>(p); }",
        );
        let s = t.to_sexpr();
        assert!(s.contains("CUDAGlobalAttr"), "{s}");
        assert!(s.contains("(CUDAKernelCallExpr"), "{s}");
        assert!(s.contains("(KernelConfig"), "{s}");
    }

    #[test]
    fn lambda_and_template_args() {
        let t = emit1("void f(int n) { q.parallel_for<class K>(n, [=](int i) { c[i] = a[i]; }); }");
        let s = t.to_sexpr();
        assert!(s.contains("(LambdaExpr"), "{s}");
        assert!(s.contains("LambdaCapture(byCopy)"), "{s}");
    }

    #[test]
    fn record_names_normalised_but_library_types_kept() {
        let t = emit(
            &[("m.cpp", "struct Mine { double v; };\nvoid f() { Mine m; sycl::queue q; }", false)],
            SemOptions::PLAIN,
        );
        let s = t.to_sexpr();
        assert!(s.contains("VarDecl(Record)"), "{s}");
        assert!(s.contains("VarDecl(sycl::queue)"), "{s}");
    }

    #[test]
    fn inlining_grafts_same_codebase_bodies() {
        let srcs: &[(&str, &str, bool)] = &[(
            "m.cpp",
            "double helper(double x) { return x * 2.0; }\nvoid f() { double y = helper(1.0); }",
            false,
        )];
        let plain = emit(srcs, SemOptions::PLAIN);
        let inlined = emit(srcs, SemOptions::INLINED);
        assert!(inlined.size() > plain.size());
        assert!(inlined.to_sexpr().contains("InlinedCallee"));
        assert!(!plain.to_sexpr().contains("InlinedCallee"));
    }

    #[test]
    fn inlining_skips_system_headers() {
        let srcs: &[(&str, &str, bool)] = &[
            ("m.cpp", "#include <lib.hpp>\nvoid f() { double y = lib_fn(1.0); }", false),
            ("lib.hpp", "double lib_fn(double x) { return x; }", true),
        ];
        let inlined = emit(srcs, SemOptions::INLINED);
        assert!(!inlined.to_sexpr().contains("InlinedCallee"));
    }

    #[test]
    fn recursive_inlining_terminates() {
        let srcs: &[(&str, &str, bool)] = &[(
            "m.cpp",
            "double rec(double x) { return rec(x - 1.0); }\nvoid f() { rec(9.0); }",
            false,
        )];
        let t = emit(srcs, SemOptions::INLINED);
        assert!(t.size() > 0); // terminates and produces a tree
    }

    #[test]
    fn spans_track_files_across_headers() {
        let srcs: &[(&str, &str, bool)] = &[
            ("m.cpp", "#include \"h.h\"\nvoid f() { helper(); }", false),
            ("h.h", "void helper() { }", false),
        ];
        let t = emit(srcs, SemOptions::PLAIN);
        let files: std::collections::HashSet<u32> =
            t.preorder().filter_map(|n| t.span(n)).map(|sp| sp.file).collect();
        assert!(files.len() >= 2, "nodes must reference both files: {files:?}");
    }

    #[test]
    fn acc_pragma_domain() {
        let t = emit1(
            "void f(int n) {\n#pragma acc kernels\nfor (int i = 0; i < n; i++) a[i] = 0.0; }",
        );
        assert!(t.to_sexpr().contains("ACCKernelsDirective"));
    }

    #[test]
    fn switch_emits_case_structure() {
        let t = emit1("int f(int x) { switch (x) { case 1: return 10; default: return 0; } }");
        let s = t.to_sexpr();
        assert!(s.contains("(SwitchStmt"), "{s}");
        assert!(s.contains("CaseStmt(1)"), "{s}");
        assert!(s.contains("DefaultStmt"), "{s}");
    }

    #[test]
    fn identical_programs_identical_trees() {
        let a = emit1("void f(int n) { for (int i = 0; i < n; i++) c[i] = a[i] + b[i]; }");
        let b = emit1("void f(int n) { for (int i = 0; i < n; i++) c[i] = a[i] + b[i]; }");
        assert_eq!(a.structural_hash(), b.structural_hash());
    }
}
