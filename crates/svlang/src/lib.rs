//! # svlang — miniature C/C++ and Fortran frontends
//!
//! The paper's SilverVale framework extracts semantic-bearing trees through
//! Clang/GCC plugins and tree-sitter.  In this reproduction the compiler
//! substrate is built from scratch as two dialect frontends:
//!
//! * **C/C++ dialect** — [`lex`] → [`pp`] (preprocessor with pragma
//!   retention) → [`parse`] (AST with OpenMP/OpenACC/CUDA constructs) →
//!   [`sema`] (registry + coarse typing) → [`emit`] (`T_sem`, `T_sem+i`);
//!   [`cst`] independently produces the `T_src` perceived-syntax tree and
//!   [`measure`] the SLOC/LLOC counts.
//! * **Fortran dialect** — [`fortran`] provides the free-form lexer, parser
//!   and semantic emitter for the BabelStream Fortran ports, sharing the
//!   token vocabulary so `cst` and `measure` work unchanged.
//!
//! The `unit` module bundles the end-to-end per-unit pipeline used by the
//! metrics layer.

pub mod ast;
pub mod cst;
pub mod emit;
pub mod fortran;
pub mod gimple;
pub mod lex;
pub mod measure;
pub mod parse;
pub mod pp;
pub mod sema;
pub mod source;
pub mod unit;
