//! # svcluster — hierarchical clustering, dendrograms, heatmaps
//!
//! The paper visualises model divergence as clustered heatmaps and
//! dendrograms: "We generate the associated dendrogram around the map
//! using complete linkage and Euclidean distance between points."  This
//! crate provides that pipeline:
//!
//! * [`cluster`] — agglomerative hierarchical clustering over a
//!   [`DistanceMatrix`] with complete / single / average linkage,
//! * [`cluster_rows`] — the paper's exact recipe: Euclidean distance
//!   between the divergence matrix's *rows* (each model's divergence
//!   profile is its feature vector), then complete-linkage HAC,
//! * [`Dendrogram`] — merge tree with heights, `cut(k)` flat clusters,
//!   Newick export, and an ASCII rendering for terminal reports,
//! * [`Heatmap`] — shaded text rendering of a divergence matrix (the
//!   Fig. 4/7/8 visual), plus CSV export.

use svdist::DistanceMatrix;

/// Linkage criteria for agglomerative clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Maximum pairwise distance between members (the paper's choice).
    Complete,
    /// Minimum pairwise distance.
    Single,
    /// Unweighted average (UPGMA).
    Average,
}

/// Reference to a dendrogram node: an original item or a prior merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRef {
    Leaf(usize),
    Cluster(usize),
}

/// One agglomeration step.
#[derive(Debug, Clone, PartialEq)]
pub struct Merge {
    pub a: NodeRef,
    pub b: NodeRef,
    /// Linkage distance at which the merge happened.
    pub height: f64,
}

/// The result of hierarchical clustering: `n-1` merges over `n` items.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    pub labels: Vec<String>,
    pub merges: Vec<Merge>,
}

/// Cluster a distance matrix directly.
///
/// Nearest-neighbour-chain agglomeration with Lance–Williams distance
/// updates: O(n²) time and memory, against the O(n⁴)-ish
/// recompute-all-cross-member-distances loop it replaced (kept as
/// [`cluster_greedy`], the equivalence oracle).  All three [`Linkage`]
/// criteria are *reducible*, so the chain's reciprocal-nearest-neighbour
/// merges produce exactly the greedy closest-pair-first dendrogram
/// (proptested); merges are emitted in chain order and then canonicalised
/// — sorted by height (stable, so children precede parents: reducible
/// linkages are monotone), indices remapped, and each merge oriented so
/// the side containing the smallest leaf comes first.
pub fn cluster(matrix: &DistanceMatrix, linkage: Linkage) -> Dendrogram {
    let n = matrix.len();
    let labels = matrix.labels().to_vec();
    if n == 0 {
        return Dendrogram { labels, merges: Vec::new() };
    }
    // Working linkage distances between active clusters, Lance–Williams
    // updated in place in the kept slot.  Same O(n²) footprint as the
    // input matrix itself.
    let mut d: Vec<f64> = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            d.push(matrix.get(i, j));
        }
    }
    let mut active = vec![true; n];
    let mut size = vec![1usize; n];
    let mut node: Vec<NodeRef> = (0..n).map(NodeRef::Leaf).collect();
    let mut merges: Vec<Merge> = Vec::with_capacity(n - 1);
    let mut chain: Vec<usize> = Vec::new();
    while merges.len() + 1 < n {
        if chain.is_empty() {
            chain.push((0..n).find(|&i| active[i]).expect("an active cluster"));
        }
        loop {
            let c = *chain.last().expect("non-empty chain");
            let prev = chain.len().checked_sub(2).map(|k| chain[k]);
            // Nearest active neighbour; ties prefer the chain predecessor
            // (termination: chain distances strictly decrease otherwise),
            // then the lowest index (determinism).
            let mut nn = usize::MAX;
            let mut best = f64::INFINITY;
            for j in 0..n {
                if j == c || !active[j] {
                    continue;
                }
                let dj = d[c * n + j];
                if dj < best || (dj == best && Some(j) == prev) {
                    best = dj;
                    nn = j;
                }
            }
            if Some(nn) == prev {
                // Reciprocal nearest neighbours: merge into the lower slot.
                chain.pop();
                chain.pop();
                let (i, j) = (c.min(nn), c.max(nn));
                for k in 0..n {
                    if !active[k] || k == i || k == j {
                        continue;
                    }
                    let (dik, djk) = (d[i * n + k], d[j * n + k]);
                    let nd = match linkage {
                        Linkage::Complete => dik.max(djk),
                        Linkage::Single => dik.min(djk),
                        Linkage::Average => {
                            let (si, sj) = (size[i] as f64, size[j] as f64);
                            (si * dik + sj * djk) / (si + sj)
                        }
                    };
                    d[i * n + k] = nd;
                    d[k * n + i] = nd;
                }
                merges.push(Merge { a: node[i], b: node[j], height: d[i * n + j] });
                active[j] = false;
                size[i] += size[j];
                node[i] = NodeRef::Cluster(merges.len() - 1);
                break;
            }
            chain.push(nn);
        }
    }
    Dendrogram { labels, merges: canonical_merges(merges) }
}

/// Canonicalise chain-order merges: stable-sort by height (children come
/// before parents — reducible linkages are monotone, and stability keeps
/// creation order within equal heights), remap [`NodeRef::Cluster`]
/// indices, and orient each merge smallest-leaf-first.
fn canonical_merges(merges: Vec<Merge>) -> Vec<Merge> {
    let m = merges.len();
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&x, &y| merges[x].height.total_cmp(&merges[y].height));
    let mut remap = vec![0usize; m];
    for (new, &old) in order.iter().enumerate() {
        remap[old] = new;
    }
    let fix = |r: NodeRef| match r {
        NodeRef::Cluster(k) => NodeRef::Cluster(remap[k]),
        leaf => leaf,
    };
    let mut out: Vec<Merge> = order
        .iter()
        .map(|&old| Merge {
            a: fix(merges[old].a),
            b: fix(merges[old].b),
            height: merges[old].height,
        })
        .collect();
    let mut min_leaf = vec![usize::MAX; m];
    for idx in 0..m {
        let leaf_min = |r: NodeRef, min_leaf: &[usize]| match r {
            NodeRef::Leaf(l) => l,
            NodeRef::Cluster(k) => min_leaf[k], // k < idx: children precede parents
        };
        let la = leaf_min(out[idx].a, &min_leaf);
        let lb = leaf_min(out[idx].b, &min_leaf);
        if lb < la {
            let m = &mut out[idx];
            std::mem::swap(&mut m.a, &mut m.b);
        }
        min_leaf[idx] = la.min(lb);
    }
    out
}

/// The pre-PR 8 greedy implementation: scan all cluster pairs, merge the
/// closest, recompute linkage over member cross-products.  O(n⁴)-ish and
/// kept only as the equivalence oracle for [`cluster`] (the proptests pin
/// identical dendrograms on random matrices with distinct distances).
#[doc(hidden)]
pub fn cluster_greedy(matrix: &DistanceMatrix, linkage: Linkage) -> Dendrogram {
    let n = matrix.len();
    let labels = matrix.labels().to_vec();
    if n == 0 {
        return Dendrogram { labels, merges: Vec::new() };
    }
    // active clusters: member leaf sets + current NodeRef
    struct Cl {
        members: Vec<usize>,
        node: NodeRef,
    }
    let mut clusters: Vec<Cl> =
        (0..n).map(|i| Cl { members: vec![i], node: NodeRef::Leaf(i) }).collect();
    let mut merges: Vec<Merge> = Vec::new();

    let link = |a: &Cl, b: &Cl| -> f64 {
        let mut dists =
            a.members.iter().flat_map(|&x| b.members.iter().map(move |&y| matrix.get(x, y)));
        match linkage {
            Linkage::Complete => dists.fold(0.0f64, f64::max),
            Linkage::Single => dists.fold(f64::INFINITY, f64::min),
            Linkage::Average => {
                let (sum, count) =
                    dists.try_fold((0.0f64, 0usize), |(s, c), d| Some((s + d, c + 1))).unwrap();
                if count == 0 {
                    0.0
                } else {
                    sum / count as f64
                }
            }
        }
    };

    while clusters.len() > 1 {
        // Find the closest pair (deterministic tie-break on indices).
        let mut best = (0usize, 1usize, f64::INFINITY);
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                let d = link(&clusters[i], &clusters[j]);
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        let (i, j, h) = best;
        let cj = clusters.swap_remove(j); // j > i, so i stays valid
        let ci = std::mem::replace(
            &mut clusters[i],
            Cl { members: Vec::new(), node: NodeRef::Leaf(usize::MAX) },
        );
        let mut members = ci.members;
        members.extend(cj.members);
        merges.push(Merge { a: ci.node, b: cj.node, height: h });
        clusters[i] = Cl { members, node: NodeRef::Cluster(merges.len() - 1) };
    }
    Dendrogram { labels, merges: canonical_merges(merges) }
}

/// The paper's clustering recipe: treat each item's row of the divergence
/// matrix as a feature vector, build Euclidean distances between rows, and
/// run complete-linkage HAC.
pub fn cluster_rows(matrix: &DistanceMatrix) -> Dendrogram {
    let n = matrix.len();
    let mut rowd = DistanceMatrix::new(matrix.labels().to_vec());
    for i in 0..n {
        for j in (i + 1)..n {
            rowd.set(i, j, matrix.row_euclidean(i, j));
        }
    }
    cluster(&rowd, Linkage::Complete)
}

impl Dendrogram {
    /// Number of items.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Leaf indices of a node's subtree, left to right.
    fn leaves_of(&self, node: NodeRef, out: &mut Vec<usize>) {
        match node {
            NodeRef::Leaf(i) => out.push(i),
            NodeRef::Cluster(m) => {
                self.leaves_of(self.merges[m].a, out);
                self.leaves_of(self.merges[m].b, out);
            }
        }
    }

    fn root(&self) -> Option<NodeRef> {
        if self.merges.is_empty() {
            if self.labels.len() == 1 {
                Some(NodeRef::Leaf(0))
            } else {
                None
            }
        } else {
            Some(NodeRef::Cluster(self.merges.len() - 1))
        }
    }

    /// Leaf ordering induced by the merge tree (used to reorder heatmaps).
    pub fn leaf_order(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.len());
        if let Some(r) = self.root() {
            self.leaves_of(r, &mut out);
        } else {
            out.extend(0..self.len());
        }
        out
    }

    /// Cut into `k` flat clusters (undo the last `k-1` merges).  Each
    /// cluster is a sorted list of leaf indices.
    ///
    /// Expansion goes in *reverse merge order*, not by height: for the
    /// monotone dendrograms [`cluster`] emits the two coincide, but a
    /// dendrogram with merge-height inversions (hand-built, or imported
    /// from a centroid/median linkage) would otherwise split a child
    /// merge while its later parent still stands — un-doing merges out
    /// of order.
    pub fn cut(&self, k: usize) -> Vec<Vec<usize>> {
        let n = self.len();
        if n == 0 {
            return Vec::new();
        }
        let k = k.clamp(1, n);
        // Nodes that remain as cluster roots after removing the top k-1
        // merges: start from the root set and expand the latest merges.
        let mut roots: Vec<NodeRef> = match self.root() {
            Some(r) => vec![r],
            None => (0..n).map(NodeRef::Leaf).collect(),
        };
        while roots.len() < k {
            // Expand the most recent merge still standing.
            let (idx, _) = match roots
                .iter()
                .enumerate()
                .filter_map(|(i, r)| match r {
                    NodeRef::Cluster(m) => Some((i, *m)),
                    NodeRef::Leaf(_) => None,
                })
                .max_by_key(|&(_, m)| m)
            {
                Some(x) => x,
                None => break, // all leaves already
            };
            let NodeRef::Cluster(m) = roots.swap_remove(idx) else { unreachable!() };
            roots.push(self.merges[m].a);
            roots.push(self.merges[m].b);
        }
        let mut out: Vec<Vec<usize>> = roots
            .into_iter()
            .map(|r| {
                let mut leaves = Vec::new();
                self.leaves_of(r, &mut leaves);
                leaves.sort_unstable();
                leaves
            })
            .collect();
        out.sort();
        out
    }

    /// True if the given labels end up in the same flat cluster at cut `k`.
    ///
    /// Unknown labels and an empty `names` slice answer `false` (the
    /// question "are these together" has no witnesses), matching
    /// [`cophenetic`](Self::cophenetic)'s `Option` discipline instead of
    /// panicking.
    pub fn together_at(&self, k: usize, names: &[&str]) -> bool {
        if names.is_empty() {
            return false;
        }
        let mut idx = Vec::with_capacity(names.len());
        for n in names {
            match self.labels.iter().position(|l| l == n) {
                Some(i) => idx.push(i),
                None => return false,
            }
        }
        self.cut(k).iter().any(|c| idx.iter().all(|i| c.contains(i)))
    }

    /// Cophenetic distance between two labelled items: the height of their
    /// lowest common merge.
    ///
    /// Two parent-pointer walks — O(merges) total — instead of the old
    /// re-enumeration of both leaf sets for every merge (O(merges·n) with
    /// per-merge allocations): mark the path from `a` to the root, then
    /// the first marked merge on `b`'s path is their lowest common merge.
    pub fn cophenetic(&self, a: &str, b: &str) -> Option<f64> {
        let ia = self.labels.iter().position(|l| l == a)?;
        let ib = self.labels.iter().position(|l| l == b)?;
        if ia == ib {
            return Some(0.0);
        }
        let nm = self.merges.len();
        let mut leaf_parent = vec![usize::MAX; self.len()];
        let mut merge_parent = vec![usize::MAX; nm];
        for (mi, m) in self.merges.iter().enumerate() {
            for side in [m.a, m.b] {
                match side {
                    NodeRef::Leaf(l) => leaf_parent[l] = mi,
                    NodeRef::Cluster(c) => merge_parent[c] = mi,
                }
            }
        }
        let mut on_path = vec![false; nm];
        let mut cur = leaf_parent[ia];
        while cur != usize::MAX {
            on_path[cur] = true;
            cur = merge_parent[cur];
        }
        cur = leaf_parent[ib];
        while cur != usize::MAX {
            if on_path[cur] {
                return Some(self.merges[cur].height);
            }
            cur = merge_parent[cur];
        }
        None
    }

    /// Newick tree string with branch heights, e.g.
    /// `((CUDA,HIP):0.12,Serial):0.80;`.
    pub fn to_newick(&self) -> String {
        fn rec(d: &Dendrogram, node: NodeRef, out: &mut String) {
            match node {
                NodeRef::Leaf(i) => out.push_str(&d.labels[i].replace([' ', ','], "_")),
                NodeRef::Cluster(m) => {
                    out.push('(');
                    rec(d, d.merges[m].a, out);
                    out.push(',');
                    rec(d, d.merges[m].b, out);
                    out.push_str(&format!("):{:.4}", d.merges[m].height));
                }
            }
        }
        let mut s = String::new();
        if let Some(r) = self.root() {
            rec(self, r, &mut s);
        }
        s.push(';');
        s
    }

    /// ASCII rendering of the merge tree for terminal reports.
    pub fn render(&self) -> String {
        fn rec(d: &Dendrogram, node: NodeRef, prefix: &str, last: bool, out: &mut String) {
            let branch = if last { "└── " } else { "├── " };
            match node {
                NodeRef::Leaf(i) => {
                    out.push_str(prefix);
                    out.push_str(branch);
                    out.push_str(&d.labels[i]);
                    out.push('\n');
                }
                NodeRef::Cluster(m) => {
                    out.push_str(prefix);
                    out.push_str(branch);
                    out.push_str(&format!("[{:.3}]\n", d.merges[m].height));
                    let child_prefix = format!("{prefix}{}", if last { "    " } else { "│   " });
                    rec(d, d.merges[m].a, &child_prefix, false, out);
                    rec(d, d.merges[m].b, &child_prefix, true, out);
                }
            }
        }
        let mut s = String::new();
        match self.root() {
            Some(NodeRef::Cluster(m)) => {
                s.push_str(&format!("[{:.3}]\n", self.merges[m].height));
                rec(self, self.merges[m].a, "", false, &mut s);
                rec(self, self.merges[m].b, "", true, &mut s);
            }
            Some(NodeRef::Leaf(i)) => {
                s.push_str(&self.labels[i]);
                s.push('\n');
            }
            None => {}
        }
        s
    }
}

/// Shaded text heatmap of a distance matrix (Figs. 4, 7, 8).
pub struct Heatmap<'m> {
    matrix: &'m DistanceMatrix,
    /// Row/column order (e.g. the dendrogram leaf order).
    order: Vec<usize>,
}

impl<'m> Heatmap<'m> {
    pub fn new(matrix: &'m DistanceMatrix) -> Self {
        Heatmap { matrix, order: (0..matrix.len()).collect() }
    }

    /// Reorder rows/columns by a dendrogram's leaf order, grouping similar
    /// models together visually.
    pub fn ordered_by(matrix: &'m DistanceMatrix, dendro: &Dendrogram) -> Self {
        Heatmap { matrix, order: dendro.leaf_order() }
    }

    /// Render with shade characters (dark = divergent).
    pub fn render(&self) -> String {
        const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];
        let max = self.matrix.max().max(1e-300);
        let w = self.matrix.labels().iter().map(|l| l.len()).max().unwrap_or(4);
        let mut s = String::new();
        for &i in &self.order {
            s.push_str(&format!("{:>w$} ", self.matrix.labels()[i]));
            for &j in &self.order {
                let v = self.matrix.get(i, j) / max;
                let idx = ((v * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
                s.push(SHADES[idx]);
                s.push(SHADES[idx]);
            }
            s.push('\n');
        }
        s
    }

    /// CSV export in the current order.
    pub fn to_csv(&self) -> String {
        let mut s = String::from("item");
        for &j in &self.order {
            s.push(',');
            s.push_str(&self.matrix.labels()[j]);
        }
        s.push('\n');
        for &i in &self.order {
            s.push_str(&self.matrix.labels()[i]);
            for &j in &self.order {
                s.push_str(&format!(",{:.6}", self.matrix.get(i, j)));
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight pairs far apart: (a,b) close, (c,d) close.
    fn two_pairs() -> DistanceMatrix {
        let mut m =
            DistanceMatrix::new(["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect());
        m.set(0, 1, 0.1);
        m.set(2, 3, 0.2);
        m.set(0, 2, 5.0);
        m.set(0, 3, 5.1);
        m.set(1, 2, 5.2);
        m.set(1, 3, 5.3);
        m
    }

    #[test]
    fn clusters_obvious_pairs() {
        let d = cluster(&two_pairs(), Linkage::Complete);
        assert_eq!(d.merges.len(), 3);
        // First two merges are the pairs, at their pair distances.
        assert_eq!(d.merges[0].height, 0.1);
        assert_eq!(d.merges[1].height, 0.2);
        assert!(d.together_at(2, &["a", "b"]));
        assert!(d.together_at(2, &["c", "d"]));
        assert!(!d.together_at(2, &["a", "c"]));
    }

    #[test]
    fn complete_linkage_uses_max() {
        let d = cluster(&two_pairs(), Linkage::Complete);
        // Final merge height = max cross distance = 5.3.
        assert_eq!(d.merges[2].height, 5.3);
        let s = cluster(&two_pairs(), Linkage::Single);
        assert_eq!(s.merges[2].height, 5.0);
        let a = cluster(&two_pairs(), Linkage::Average);
        assert!((a.merges[2].height - 5.15).abs() < 1e-12);
    }

    #[test]
    fn cut_extremes() {
        let d = cluster(&two_pairs(), Linkage::Complete);
        assert_eq!(d.cut(1), vec![vec![0, 1, 2, 3]]);
        let four = d.cut(4);
        assert_eq!(four.len(), 4);
        assert!(four.iter().all(|c| c.len() == 1));
        // k > n clamps
        assert_eq!(d.cut(99).len(), 4);
    }

    #[test]
    fn cophenetic_heights() {
        let d = cluster(&two_pairs(), Linkage::Complete);
        assert_eq!(d.cophenetic("a", "b"), Some(0.1));
        assert_eq!(d.cophenetic("c", "d"), Some(0.2));
        assert_eq!(d.cophenetic("a", "c"), Some(5.3));
        assert_eq!(d.cophenetic("a", "a"), Some(0.0));
        assert_eq!(d.cophenetic("a", "zz"), None);
    }

    #[test]
    fn leaf_order_groups_pairs() {
        let d = cluster(&two_pairs(), Linkage::Complete);
        let order = d.leaf_order();
        let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
        assert_eq!((pos(0) as i64 - pos(1) as i64).abs(), 1, "a next to b");
        assert_eq!((pos(2) as i64 - pos(3) as i64).abs(), 1, "c next to d");
    }

    #[test]
    fn newick_and_render() {
        let d = cluster(&two_pairs(), Linkage::Complete);
        let nw = d.to_newick();
        assert!(nw.ends_with(';'));
        assert!(nw.contains("(a,b):0.1"), "{nw}");
        let r = d.render();
        assert!(r.contains("a"));
        assert!(r.contains("└──"));
        assert_eq!(r.lines().count(), 7, "{r}");
    }

    #[test]
    fn cluster_rows_recipe() {
        // Row-space clustering must also find the pairs: rows of a tight
        // pair are nearly identical vectors.
        let d = cluster_rows(&two_pairs());
        assert!(d.together_at(2, &["a", "b"]));
        assert!(d.together_at(2, &["c", "d"]));
    }

    #[test]
    fn degenerate_inputs() {
        let empty = cluster(&DistanceMatrix::new(vec![]), Linkage::Complete);
        assert!(empty.merges.is_empty());
        assert!(empty.leaf_order().is_empty());
        let one = cluster(&DistanceMatrix::new(vec!["x".into()]), Linkage::Complete);
        assert!(one.merges.is_empty());
        assert_eq!(one.leaf_order(), vec![0]);
        assert_eq!(one.render(), "x\n");
        assert_eq!(one.cut(1), vec![vec![0]]);
    }

    #[test]
    fn ties_are_deterministic() {
        let mut m = DistanceMatrix::new(["p", "q", "r"].iter().map(|s| s.to_string()).collect());
        m.set(0, 1, 1.0);
        m.set(0, 2, 1.0);
        m.set(1, 2, 1.0);
        let d1 = cluster(&m, Linkage::Complete);
        let d2 = cluster(&m, Linkage::Complete);
        assert_eq!(d1, d2);
    }

    #[test]
    fn together_at_unknown_label_is_false_not_panic() {
        let d = cluster(&two_pairs(), Linkage::Complete);
        assert!(!d.together_at(1, &["a", "nope"]));
        assert!(!d.together_at(1, &["nope"]));
        // An empty slice has no witnesses: false, not vacuously true.
        assert!(!d.together_at(1, &[]));
        // Known labels still work.
        assert!(d.together_at(1, &["a", "d"]));
    }

    #[test]
    fn cut_expands_in_reverse_merge_order_under_inversions() {
        // Hand-built dendrogram with a merge-height inversion: the final
        // merge (index 2) sits *below* its first child (index 0).  NN-chain
        // linkages never emit this, but imported/centroid dendrograms can.
        let d = Dendrogram {
            labels: ["w", "x", "y", "z"].iter().map(|s| s.to_string()).collect(),
            merges: vec![
                Merge { a: NodeRef::Leaf(0), b: NodeRef::Leaf(1), height: 5.0 },
                Merge { a: NodeRef::Leaf(2), b: NodeRef::Leaf(3), height: 1.0 },
                Merge { a: NodeRef::Cluster(0), b: NodeRef::Cluster(1), height: 3.0 },
            ],
        };
        // k = 2 undoes merge 2 only.
        assert_eq!(d.cut(2), vec![vec![0, 1], vec![2, 3]]);
        // k = 3 must undo merges 2 then 1 (reverse merge order).  The old
        // by-height rule expanded merge 0 (height 5.0) while its parent
        // merge 2 still stood, yielding [[0], [1], [2, 3]].
        assert_eq!(d.cut(3), vec![vec![0, 1], vec![2], vec![3]]);
        // Cophenetic heights still read through the inversion.
        assert_eq!(d.cophenetic("w", "x"), Some(5.0));
        assert_eq!(d.cophenetic("w", "y"), Some(3.0));
    }

    #[test]
    fn chain_matches_greedy_on_two_pairs() {
        for linkage in [Linkage::Complete, Linkage::Single, Linkage::Average] {
            let a = cluster(&two_pairs(), linkage);
            let b = cluster_greedy(&two_pairs(), linkage);
            assert_eq!(a, b, "{linkage:?}");
        }
    }

    #[test]
    fn heatmap_rendering() {
        let m = two_pairs();
        let d = cluster(&m, Linkage::Complete);
        let h = Heatmap::ordered_by(&m, &d);
        let text = h.render();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains('█'), "{text}");
        let csv = h.to_csv();
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.starts_with("item,"));
    }
}
