//! Runtime values and environments for the dialect interpreter.
//!
//! Values are dynamically typed; variables live in reference-counted cells
//! so that C++ references, lambda captures and array handles alias the way
//! the source expects.  "Library" objects of the programming models (SYCL
//! queues/buffers/accessors, Kokkos views, CUDA dim3…) are [`Native`]
//! values whose behaviour the intrinsics layer implements.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// A shared mutable slot (variable binding, array element store).
pub type Slot = Rc<RefCell<Value>>;

/// A shared array payload.
pub type ArrayRef = Rc<RefCell<Vec<Value>>>;

/// Runtime value.
#[derive(Clone)]
pub enum Value {
    Unit,
    Int(i64),
    Real(f64),
    Bool(bool),
    Str(String),
    /// Heap array (malloc/cudaMalloc/views/buffers all share this).
    Array(ArrayRef),
    /// A user-struct instance: named field slots.
    Object(Rc<RefCell<HashMap<String, Slot>>>),
    /// A lambda closure.
    Closure(Rc<Closure>),
    /// A named free function (function pointer).
    FnRef(String),
    /// Programming-model library object.
    Native(Native),
}

/// A lambda with its captured environment.
pub struct Closure {
    pub params: Vec<(String, bool)>, // (name, by_reference)
    pub body: svlang::ast::Block,
    pub env: Env,
    /// File the lambda's body lives in (for coverage).
    pub file: u32,
}

/// Library objects of the supported programming models.
#[derive(Clone)]
pub enum Native {
    /// SYCL queue / TBB arena / generic execution context.
    Queue,
    /// SYCL command-group handler.
    Handler,
    /// SYCL buffer over a host array.
    Buffer(ArrayRef),
    /// SYCL accessor into a buffer.
    Accessor(ArrayRef),
    /// sycl::range / Kokkos::RangePolicy — an iteration extent.
    Range(i64),
    /// Kokkos::View over an array.
    View(ArrayRef),
    /// CUDA dim3 / threadIdx-style coordinate.
    Dim3 { x: i64 },
    /// std::execution policy (par, par_unseq, seq).
    ExecPolicy(&'static str),
    /// A device handle (sycl::device, hipDevice…).
    Device,
}

impl Value {
    /// Numeric coercion to f64 (ints promote).
    pub fn as_real(&self) -> Option<f64> {
        match self {
            Value::Real(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            Value::Bool(b) => Some(f64::from(*b)),
            _ => None,
        }
    }

    /// Integer view (reals truncate, as C casts do).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Real(v) => Some(*v as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            Value::Native(Native::Dim3 { x }) => Some(*x),
            _ => None,
        }
    }

    /// Truthiness for conditions.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(v) => *v != 0,
            Value::Real(v) => *v != 0.0,
            Value::Unit => false,
            _ => true,
        }
    }

    /// The array handle if this value wraps one (arrays, buffers,
    /// accessors, views all expose their payload).
    pub fn array(&self) -> Option<ArrayRef> {
        match self {
            Value::Array(a) => Some(a.clone()),
            Value::Native(Native::Buffer(a) | Native::Accessor(a) | Native::View(a)) => {
                Some(a.clone())
            }
            _ => None,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Real(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Array(a) => write!(f, "array[{}]", a.borrow().len()),
            Value::Object(_) => write!(f, "object"),
            Value::Closure(_) => write!(f, "closure"),
            Value::FnRef(n) => write!(f, "fn {n}"),
            Value::Native(n) => write!(f, "native {}", n.kind()),
        }
    }
}

impl Native {
    pub fn kind(&self) -> &'static str {
        match self {
            Native::Queue => "queue",
            Native::Handler => "handler",
            Native::Buffer(_) => "buffer",
            Native::Accessor(_) => "accessor",
            Native::Range(_) => "range",
            Native::View(_) => "view",
            Native::Dim3 { .. } => "dim3",
            Native::ExecPolicy(_) => "policy",
            Native::Device => "device",
        }
    }
}

/// A lexical environment: a chain of scopes with shared slots.
#[derive(Clone)]
pub struct Env {
    scopes: Rc<EnvNode>,
}

struct EnvNode {
    vars: RefCell<HashMap<String, Slot>>,
    parent: Option<Rc<EnvNode>>,
}

impl Env {
    /// Fresh root environment.
    pub fn new() -> Env {
        Env { scopes: Rc::new(EnvNode { vars: RefCell::new(HashMap::new()), parent: None }) }
    }

    /// A child environment whose lookups fall through to `self`.
    pub fn child(&self) -> Env {
        Env {
            scopes: Rc::new(EnvNode {
                vars: RefCell::new(HashMap::new()),
                parent: Some(self.scopes.clone()),
            }),
        }
    }

    /// Declare (or shadow) a variable in the innermost scope.
    pub fn declare(&self, name: &str, v: Value) -> Slot {
        let slot = Rc::new(RefCell::new(v));
        self.scopes.vars.borrow_mut().insert(name.to_string(), slot.clone());
        slot
    }

    /// Bind an existing slot (reference parameters, captured vars).
    pub fn bind(&self, name: &str, slot: Slot) {
        self.scopes.vars.borrow_mut().insert(name.to_string(), slot);
    }

    /// Find a variable's slot anywhere up the chain.
    pub fn lookup(&self, name: &str) -> Option<Slot> {
        let mut cur = Some(&self.scopes);
        while let Some(node) = cur {
            if let Some(s) = node.vars.borrow().get(name) {
                return Some(s.clone());
            }
            cur = node.parent.as_ref();
        }
        None
    }
}

impl Default for Env {
    fn default() -> Self {
        Env::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercions() {
        assert_eq!(Value::Int(3).as_real(), Some(3.0));
        assert_eq!(Value::Real(2.7).as_int(), Some(2));
        assert_eq!(Value::Bool(true).as_real(), Some(1.0));
        assert!(Value::Str("x".into()).as_real().is_none());
        assert_eq!(Value::Native(Native::Dim3 { x: 5 }).as_int(), Some(5));
    }

    #[test]
    fn truthiness() {
        assert!(Value::Int(1).truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Unit.truthy());
        assert!(Value::Str("".into()).truthy());
    }

    #[test]
    fn env_scoping_and_shadowing() {
        let root = Env::new();
        root.declare("x", Value::Int(1));
        let inner = root.child();
        assert_eq!(inner.lookup("x").unwrap().borrow().as_int(), Some(1));
        inner.declare("x", Value::Int(2));
        assert_eq!(inner.lookup("x").unwrap().borrow().as_int(), Some(2));
        assert_eq!(root.lookup("x").unwrap().borrow().as_int(), Some(1));
        assert!(root.lookup("missing").is_none());
    }

    #[test]
    fn slots_alias() {
        let root = Env::new();
        let slot = root.declare("a", Value::Int(10));
        let inner = root.child();
        inner.bind("alias", slot);
        *inner.lookup("alias").unwrap().borrow_mut() = Value::Int(99);
        assert_eq!(root.lookup("a").unwrap().borrow().as_int(), Some(99));
    }

    #[test]
    fn arrays_share_payload() {
        let arr: ArrayRef = Rc::new(RefCell::new(vec![Value::Real(0.0); 4]));
        let a = Value::Array(arr.clone());
        let buf = Value::Native(Native::Buffer(arr));
        a.array().unwrap().borrow_mut()[0] = Value::Real(42.0);
        assert_eq!(buf.array().unwrap().borrow()[0].as_real(), Some(42.0));
    }
}
