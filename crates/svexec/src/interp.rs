//! Tree-walking interpreter for the C/C++ dialect.
//!
//! Executes parsed programs directly off the AST, recording **line
//! coverage** as it goes — the coverage profile that the `+coverage`
//! metric variants consume is produced by genuinely running the mini-apps
//! (the paper recompiles with coverage flags and runs "a reduced problem
//! set"; here the interpreter plays the role of the instrumented binary).
//!
//! Parallel constructs execute with sequential semantics (loop iterations
//! run in order): the *semantics* of every model are honoured — kernels
//! see `threadIdx`/`blockIdx`, SYCL command groups get handlers, Kokkos
//! reducers accumulate — so verification results and coverage match what
//! the real runtimes produce for deterministic kernels.

use crate::intrinsics;
use crate::value::{ArrayRef, Closure, Env, Native, Slot, Value};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use svlang::ast::*;
use svtree::mask::CoverageMask;

/// Runtime error with source line.
#[derive(Debug, Clone)]
pub struct ExecError {
    pub message: String,
    pub line: u32,
}

impl ExecError {
    pub fn new(message: impl Into<String>, line: u32) -> Self {
        ExecError { message: message.into(), line }
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ExecError {}

pub type ExecResult<T> = Result<T, ExecError>;

/// Statement-level control flow.
pub enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// An assignable place.
enum Place {
    Slot(Slot),
    Elem(ArrayRef, usize),
    Field(Rc<RefCell<HashMap<String, Slot>>>, String),
}

impl Place {
    fn get(&self, line: u32) -> ExecResult<Value> {
        match self {
            Place::Slot(s) => Ok(s.borrow().clone()),
            Place::Elem(a, i) => a
                .borrow()
                .get(*i)
                .cloned()
                .ok_or_else(|| ExecError::new(format!("index {i} out of bounds"), line)),
            Place::Field(o, name) => o
                .borrow()
                .get(name)
                .map(|s| s.borrow().clone())
                .ok_or_else(|| ExecError::new(format!("no field {name}"), line)),
        }
    }

    fn set(&self, v: Value, line: u32) -> ExecResult<()> {
        match self {
            Place::Slot(s) => {
                *s.borrow_mut() = v;
                Ok(())
            }
            Place::Elem(a, i) => {
                let mut arr = a.borrow_mut();
                let len = arr.len();
                let cell = arr.get_mut(*i).ok_or_else(|| {
                    ExecError::new(format!("index {i} out of bounds (len {len})"), line)
                })?;
                *cell = v;
                Ok(())
            }
            Place::Field(o, name) => {
                let obj = o.borrow();
                let slot = obj
                    .get(name)
                    .ok_or_else(|| ExecError::new(format!("no field {name}"), line))?;
                *slot.borrow_mut() = v;
                Ok(())
            }
        }
    }
}

/// The interpreter.
pub struct Interp {
    pub(crate) fns: HashMap<String, Function>,
    pub(crate) structs: HashMap<String, StructDef>,
    pub globals: Env,
    /// Line coverage recorded while running.
    pub coverage: CoverageMask,
    /// Captured `printf` output.
    pub output: String,
    /// Simulated wall clock (advanced by timer intrinsics).
    pub time: f64,
    steps: u64,
    step_limit: u64,
}

impl Interp {
    /// Build an interpreter over a parsed program (globals initialised).
    pub fn new(prog: &Program) -> ExecResult<Interp> {
        let mut it = Interp {
            fns: HashMap::new(),
            structs: HashMap::new(),
            globals: Env::new(),
            coverage: CoverageMask::new(),
            output: String::new(),
            time: 0.0,
            steps: 0,
            step_limit: 400_000_000,
        };
        for item in &prog.items {
            match item {
                Item::Function(f) if f.body.is_some() => {
                    it.fns.insert(f.name.clone(), f.clone());
                }
                Item::Struct(s) => {
                    it.structs.insert(s.name.clone(), s.clone());
                }
                _ => {}
            }
        }
        // Globals second, so initialisers can call functions.
        for item in &prog.items {
            if let Item::Global(v) = item {
                let env = it.globals.clone();
                let val = match &v.init {
                    Some(e) => it.eval(&env, v.file.0, e)?,
                    None => default_value(&v.ty),
                };
                it.globals.declare(&v.name, val);
            }
        }
        Ok(it)
    }

    /// Cap the number of executed statements (runaway-loop guard).
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit;
    }

    /// Run `main()`; returns its exit value.
    pub fn run_main(&mut self) -> ExecResult<i64> {
        let v = self.call_named("main", Vec::new(), 0)?;
        Ok(v.as_int().unwrap_or(0))
    }

    /// Call a named free function with already-evaluated arguments.
    pub fn call_named(&mut self, name: &str, args: Vec<Value>, line: u32) -> ExecResult<Value> {
        let f = self
            .fns
            .get(name)
            .cloned()
            .ok_or_else(|| ExecError::new(format!("undefined function {name}"), line))?;
        self.call_function(&f, args)
    }

    pub(crate) fn call_function(&mut self, f: &Function, args: Vec<Value>) -> ExecResult<Value> {
        let env = self.globals.child();
        for (p, a) in f.params.iter().zip(args) {
            env.declare(&p.name, a);
        }
        let file = f.file.0;
        let Some(body) = f.body.clone() else {
            return Err(ExecError::new(format!("function {} has no body", f.name), f.line));
        };
        self.record(file, f.line);
        match self.exec_block(&env, file, &body)? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Unit),
        }
    }

    /// Call a closure with positional values; reference parameters receive
    /// the provided slots when `slots` supplies one at that position.
    pub(crate) fn call_closure(
        &mut self,
        c: &Closure,
        args: Vec<Value>,
        slots: Vec<Option<Slot>>,
    ) -> ExecResult<Value> {
        let env = c.env.child();
        for (i, (name, by_ref)) in c.params.iter().enumerate() {
            let slot_opt = slots.get(i).cloned().flatten();
            match (by_ref, slot_opt) {
                (true, Some(s)) => env.bind(name, s),
                _ => {
                    env.declare(name, args.get(i).cloned().unwrap_or(Value::Unit));
                }
            }
        }
        match self.exec_block(&env, c.file, &c.body)? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Unit),
        }
    }

    pub(crate) fn record(&mut self, file: u32, line: u32) {
        self.coverage.record(file, line);
    }

    fn tick(&mut self, line: u32) -> ExecResult<()> {
        self.steps += 1;
        if self.steps > self.step_limit {
            return Err(ExecError::new("step limit exceeded (runaway loop?)", line));
        }
        Ok(())
    }

    // -- statements -----------------------------------------------------------

    pub(crate) fn exec_block(&mut self, env: &Env, file: u32, blk: &Block) -> ExecResult<Flow> {
        let inner = env.child();
        for s in &blk.stmts {
            match self.exec_stmt(&inner, file, s)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, env: &Env, file: u32, s: &Stmt) -> ExecResult<Flow> {
        self.tick(s.line())?;
        self.record(file, s.line());
        match s {
            Stmt::Decl(v) => {
                let val = match &v.init {
                    Some(e) => {
                        let raw = self.eval(env, file, e)?;
                        coerce_decl(&v.ty, raw)
                    }
                    // `sycl::queue q;` — named types default-construct.
                    None => match v.ty.decayed() {
                        Type::Named { .. } => self
                            .construct_value(&v.ty, Vec::new(), v.line)
                            .unwrap_or_else(|_| default_value(&v.ty)),
                        _ => default_value(&v.ty),
                    },
                };
                env.declare(&v.name, val);
                Ok(Flow::Normal)
            }
            Stmt::Expr { expr, .. } => {
                self.eval(env, file, expr)?;
                Ok(Flow::Normal)
            }
            Stmt::If { cond, then_blk, else_blk, .. } => {
                if self.eval(env, file, cond)?.truthy() {
                    self.exec_block(env, file, then_blk)
                } else if let Some(e) = else_blk {
                    self.exec_block(env, file, e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::For { init, cond, step, body, .. } => {
                let outer = env.child();
                if let Some(i) = init {
                    self.exec_stmt(&outer, file, i)?;
                }
                loop {
                    self.tick(s.line())?;
                    if let Some(c) = cond {
                        if !self.eval(&outer, file, c)?.truthy() {
                            break;
                        }
                    }
                    match self.exec_block(&outer, file, body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                    if let Some(st) = step {
                        self.eval(&outer, file, st)?;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::While { cond, body, .. } => {
                loop {
                    self.tick(s.line())?;
                    if !self.eval(env, file, cond)?.truthy() {
                        break;
                    }
                    match self.exec_block(env, file, body)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        _ => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Switch { scrutinee, arms, .. } => {
                let v = self
                    .eval(env, file, scrutinee)?
                    .as_int()
                    .ok_or_else(|| ExecError::new("switch scrutinee must be integral", s.line()))?;
                // Find the matching arm (or default), then execute with C
                // fallthrough semantics until a break.
                let start = arms
                    .iter()
                    .position(|a| a.value == Some(v))
                    .or_else(|| arms.iter().position(|a| a.value.is_none()));
                if let Some(start) = start {
                    'arms: for arm in &arms[start..] {
                        for st in &arm.stmts {
                            match self.exec_stmt(env, file, st)? {
                                Flow::Break => break 'arms,
                                Flow::Return(rv) => return Ok(Flow::Return(rv)),
                                Flow::Continue => return Ok(Flow::Continue),
                                Flow::Normal => {}
                            }
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return { expr, .. } => {
                let v = match expr {
                    Some(e) => self.eval(env, file, e)?,
                    None => Value::Unit,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break { .. } => Ok(Flow::Break),
            Stmt::Continue { .. } => Ok(Flow::Continue),
            Stmt::Block(b) => self.exec_block(env, file, b),
            Stmt::Pragma { stmt, .. } => {
                // Directive semantics reduce to sequential execution; the
                // governed statement runs normally (reductions, target
                // regions and parallel loops are all order-insensitive in
                // the corpus).
                match stmt {
                    Some(s) => self.exec_stmt(env, file, s),
                    None => Ok(Flow::Normal),
                }
            }
        }
    }

    // -- expressions -----------------------------------------------------------

    pub(crate) fn eval(&mut self, env: &Env, file: u32, e: &Expr) -> ExecResult<Value> {
        self.record(file, e.line);
        match &e.kind {
            ExprKind::Int(v) => Ok(Value::Int(*v)),
            ExprKind::Real(v) => Ok(Value::Real(*v)),
            ExprKind::Str(s) => Ok(Value::Str(s.clone())),
            ExprKind::Char(c) => Ok(Value::Int(*c as i64)),
            ExprKind::Bool(b) => Ok(Value::Bool(*b)),
            ExprKind::Path(p) => self.eval_path(env, p, e.line),
            ExprKind::Unary { op, expr, postfix } => self.eval_unary(env, file, op, expr, *postfix),
            ExprKind::Binary { op, lhs, rhs } => {
                // Short-circuit logic first.
                match *op {
                    "&&" => {
                        let l = self.eval(env, file, lhs)?;
                        if !l.truthy() {
                            return Ok(Value::Bool(false));
                        }
                        return Ok(Value::Bool(self.eval(env, file, rhs)?.truthy()));
                    }
                    "||" => {
                        let l = self.eval(env, file, lhs)?;
                        if l.truthy() {
                            return Ok(Value::Bool(true));
                        }
                        return Ok(Value::Bool(self.eval(env, file, rhs)?.truthy()));
                    }
                    _ => {}
                }
                let l = self.eval(env, file, lhs)?;
                let r = self.eval(env, file, rhs)?;
                binary_op(op, &l, &r, e.line)
            }
            ExprKind::Assign { op, lhs, rhs } => {
                let rv = self.eval(env, file, rhs)?;
                let place = self.eval_place(env, file, lhs)?;
                let new = if *op == "=" {
                    rv
                } else {
                    let cur = place.get(e.line)?;
                    let base = op.trim_end_matches('=');
                    binary_op(base, &cur, &rv, e.line)?
                };
                place.set(new.clone(), e.line)?;
                Ok(new)
            }
            ExprKind::Ternary { cond, then_e, else_e } => {
                if self.eval(env, file, cond)?.truthy() {
                    self.eval(env, file, then_e)
                } else {
                    self.eval(env, file, else_e)
                }
            }
            ExprKind::Call { callee, targs, args } => {
                self.eval_call(env, file, callee, targs, args, e.line)
            }
            ExprKind::KernelLaunch { callee, grid, block, args } => {
                self.eval_kernel_launch(env, file, callee, grid, block, args, e.line)
            }
            ExprKind::Index { base, index } => {
                let place = self.index_place(env, file, base, index, e.line)?;
                place.get(e.line)
            }
            ExprKind::Member { base, member, .. } => {
                let b = self.eval(env, file, base)?;
                self.member_get(&b, member, e.line)
            }
            ExprKind::Lambda { params, body, .. } => {
                let c = Closure {
                    params: params
                        .iter()
                        .map(|p| (p.name.clone(), matches!(p.ty, Type::Ref(_))))
                        .collect(),
                    body: body.clone(),
                    env: env.clone(),
                    file,
                };
                Ok(Value::Closure(Rc::new(c)))
            }
            ExprKind::Cast { ty, expr } => {
                let v = self.eval(env, file, expr)?;
                Ok(coerce_decl(ty, v))
            }
            ExprKind::Construct { ty, args, .. } => {
                self.eval_construct(env, file, ty, args, e.line)
            }
            ExprKind::InitList(items) => {
                let vals: ExecResult<Vec<Value>> =
                    items.iter().map(|i| self.eval(env, file, i)).collect();
                Ok(Value::Array(Rc::new(RefCell::new(vals?))))
            }
        }
    }

    fn eval_path(&mut self, env: &Env, p: &[String], line: u32) -> ExecResult<Value> {
        if p.len() == 1 {
            if let Some(slot) = env.lookup(&p[0]) {
                return Ok(slot.borrow().clone());
            }
            if self.fns.contains_key(&p[0]) {
                return Ok(Value::FnRef(p[0].clone()));
            }
        }
        intrinsics::path_value(p)
            .ok_or_else(|| ExecError::new(format!("undefined name {}", p.join("::")), line))
    }

    fn eval_unary(
        &mut self,
        env: &Env,
        file: u32,
        op: &str,
        expr: &Expr,
        _postfix: bool,
    ) -> ExecResult<Value> {
        match op {
            "++" | "--" => {
                let place = self.eval_place(env, file, expr)?;
                let cur = place.get(expr.line)?;
                let one = Value::Int(1);
                let next = binary_op(if op == "++" { "+" } else { "-" }, &cur, &one, expr.line)?;
                place.set(next.clone(), expr.line)?;
                // Both pre/post forms appear only as statements or loop
                // steps in the corpus, so the value distinction is moot.
                Ok(next)
            }
            "&" => self.eval(env, file, expr), // arrays/objects are handles already
            "*" => self.eval(env, file, expr),
            "-" => {
                let v = self.eval(env, file, expr)?;
                match v {
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Real(r) => Ok(Value::Real(-r)),
                    other => Err(ExecError::new(format!("cannot negate {other:?}"), expr.line)),
                }
            }
            "!" => {
                let v = self.eval(env, file, expr)?;
                Ok(Value::Bool(!v.truthy()))
            }
            "+" => self.eval(env, file, expr),
            "~" => {
                let v = self.eval(env, file, expr)?;
                Ok(Value::Int(!v.as_int().unwrap_or(0)))
            }
            other => Err(ExecError::new(format!("unsupported unary {other}"), expr.line)),
        }
    }

    fn eval_place(&mut self, env: &Env, file: u32, e: &Expr) -> ExecResult<Place> {
        match &e.kind {
            ExprKind::Path(p) if p.len() == 1 => {
                if let Some(slot) = env.lookup(&p[0]) {
                    Ok(Place::Slot(slot))
                } else {
                    // Auto-declare at global scope is an error; be strict.
                    Err(ExecError::new(format!("undefined variable {}", p[0]), e.line))
                }
            }
            ExprKind::Index { base, index } => self.index_place(env, file, base, index, e.line),
            ExprKind::Member { base, member, .. } => {
                let b = self.eval(env, file, base)?;
                match b {
                    Value::Object(o) => Ok(Place::Field(o, member.clone())),
                    other => Err(ExecError::new(
                        format!("cannot assign member {member} of {other:?}"),
                        e.line,
                    )),
                }
            }
            ExprKind::Unary { op: "*", expr, .. } => self.eval_place(env, file, expr),
            // Kokkos view / accessor call-syntax element access: `a(i) = v`.
            ExprKind::Call { callee, args, .. } if args.len() == 1 => {
                let recv = self.eval(env, file, callee)?;
                let arr = recv
                    .array()
                    .ok_or_else(|| ExecError::new("expression is not assignable", e.line))?;
                let idx = self
                    .eval(env, file, &args[0])?
                    .as_int()
                    .ok_or_else(|| ExecError::new("element index must be integral", e.line))?;
                Ok(Place::Elem(arr, idx as usize))
            }
            _ => Err(ExecError::new("expression is not assignable", e.line)),
        }
    }

    fn index_place(
        &mut self,
        env: &Env,
        file: u32,
        base: &Expr,
        index: &Expr,
        line: u32,
    ) -> ExecResult<Place> {
        let b = self.eval(env, file, base)?;
        let idx = self
            .eval(env, file, index)?
            .as_int()
            .ok_or_else(|| ExecError::new("index is not an integer", line))?;
        let arr = b.array().ok_or_else(|| ExecError::new(format!("cannot index {b:?}"), line))?;
        Ok(Place::Elem(arr, idx as usize))
    }

    fn member_get(&mut self, base: &Value, member: &str, line: u32) -> ExecResult<Value> {
        match base {
            Value::Object(o) => o
                .borrow()
                .get(member)
                .map(|s| s.borrow().clone())
                .ok_or_else(|| ExecError::new(format!("no field {member}"), line)),
            Value::Native(Native::Dim3 { x }) if member == "x" => Ok(Value::Int(*x)),
            Value::Array(a) if member == "size" => Ok(Value::Int(a.borrow().len() as i64)),
            other => Err(ExecError::new(format!("no member {member} on {other:?}"), line)),
        }
    }

    fn eval_call(
        &mut self,
        env: &Env,
        file: u32,
        callee: &Expr,
        targs: &[Type],
        args: &[Expr],
        line: u32,
    ) -> ExecResult<Value> {
        // Special forms that need unevaluated arguments (out-params etc.).
        if let ExprKind::Path(p) = &callee.kind {
            if let Some(v) = intrinsics::special_form(self, env, file, p, targs, args, line)? {
                return Ok(v);
            }
        }

        // Member calls: model-object dispatch.
        if let ExprKind::Member { base, member, .. } = &callee.kind {
            let recv = self.eval(env, file, base)?;
            let argv: ExecResult<Vec<Value>> =
                args.iter().map(|a| self.eval(env, file, a)).collect();
            let argv = argv?;
            return intrinsics::member_call(self, &recv, member, argv, line, env, file, args);
        }

        // Free calls.
        let argv: ExecResult<Vec<Value>> = args.iter().map(|a| self.eval(env, file, a)).collect();
        let argv = argv?;
        match &callee.kind {
            ExprKind::Path(p) => {
                if p.len() == 1 {
                    // Local callable value (closure / view / accessor call syntax)?
                    if let Some(slot) = env.lookup(&p[0]) {
                        let v = slot.borrow().clone();
                        match v {
                            Value::Closure(c) => {
                                let slots = self.arg_slots(env, args);
                                return self.call_closure(&c, argv, slots);
                            }
                            Value::Native(
                                Native::View(a) | Native::Accessor(a) | Native::Buffer(a),
                            ) => {
                                // Kokkos view(i) element read.
                                let idx = argv
                                    .first()
                                    .and_then(Value::as_int)
                                    .ok_or_else(|| ExecError::new("view index", line))?;
                                return Place::Elem(a, idx as usize).get(line);
                            }
                            Value::FnRef(name) => return self.call_named(&name, argv, line),
                            _ => {}
                        }
                    }
                    if self.fns.contains_key(&p[0]) {
                        return self.call_named(&p[0].clone(), argv, line);
                    }
                }
                // `Type(args)` construction is syntactically a call; try the
                // intrinsic functions first, then constructor dispatch.
                match intrinsics::free_call(self, p, targs, argv.clone(), line) {
                    Err(e) if e.message.starts_with("unknown function") => {
                        let ty = Type::Named { path: p.to_vec(), args: targs.to_vec() };
                        self.construct_value(&ty, argv, line)
                    }
                    other => other,
                }
            }
            _ => {
                let f = self.eval(env, file, callee)?;
                match f {
                    Value::Closure(c) => {
                        let slots = self.arg_slots(env, args);
                        self.call_closure(&c, argv, slots)
                    }
                    Value::FnRef(name) => self.call_named(&name, argv, line),
                    other => Err(ExecError::new(format!("cannot call {other:?}"), line)),
                }
            }
        }
    }

    /// Slots of simple-path arguments (for by-reference parameters).
    pub(crate) fn arg_slots(&self, env: &Env, args: &[Expr]) -> Vec<Option<Slot>> {
        args.iter()
            .map(|a| match &a.kind {
                ExprKind::Path(p) if p.len() == 1 => env.lookup(&p[0]),
                _ => None,
            })
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_kernel_launch(
        &mut self,
        env: &Env,
        file: u32,
        callee: &Expr,
        grid: &Expr,
        block: &Expr,
        args: &[Expr],
        line: u32,
    ) -> ExecResult<Value> {
        let g = self
            .eval(env, file, grid)?
            .as_int()
            .ok_or_else(|| ExecError::new("grid dim must be integral", line))?;
        let b = self
            .eval(env, file, block)?
            .as_int()
            .ok_or_else(|| ExecError::new("block dim must be integral", line))?;
        let ExprKind::Path(p) = &callee.kind else {
            return Err(ExecError::new("kernel launch target must be a name", line));
        };
        let f = self
            .fns
            .get(&p[0])
            .cloned()
            .ok_or_else(|| ExecError::new(format!("undefined kernel {}", p[0]), line))?;
        let argv: ExecResult<Vec<Value>> = args.iter().map(|a| self.eval(env, file, a)).collect();
        let argv = argv?;
        for tid in 0..(g * b) {
            self.tick(line)?;
            let kenv = self.globals.child();
            kenv.declare("threadIdx", Value::Native(Native::Dim3 { x: tid % b }));
            kenv.declare("blockIdx", Value::Native(Native::Dim3 { x: tid / b }));
            kenv.declare("blockDim", Value::Native(Native::Dim3 { x: b }));
            kenv.declare("gridDim", Value::Native(Native::Dim3 { x: g }));
            for (prm, a) in f.params.iter().zip(argv.iter()) {
                kenv.declare(&prm.name, a.clone());
            }
            let body = f.body.clone().unwrap();
            self.exec_block(&kenv, f.file.0, &body)?;
        }
        Ok(Value::Unit)
    }

    fn eval_construct(
        &mut self,
        env: &Env,
        file: u32,
        ty: &Type,
        args: &[Expr],
        line: u32,
    ) -> ExecResult<Value> {
        let argv: ExecResult<Vec<Value>> = args.iter().map(|a| self.eval(env, file, a)).collect();
        self.construct_value(ty, argv?, line)
    }

    /// Construct a value of `ty` from evaluated arguments (user struct or
    /// library type).
    pub(crate) fn construct_value(
        &mut self,
        ty: &Type,
        argv: Vec<Value>,
        line: u32,
    ) -> ExecResult<Value> {
        if let Type::Named { path, .. } = ty {
            if path.len() == 1 {
                if let Some(sd) = self.structs.get(&path[0]).cloned() {
                    let mut fields = HashMap::new();
                    for (i, fld) in sd.fields.iter().enumerate() {
                        let v = argv.get(i).cloned().unwrap_or_else(|| default_value(&fld.ty));
                        fields.insert(fld.name.clone(), Rc::new(RefCell::new(v)));
                    }
                    return Ok(Value::Object(Rc::new(RefCell::new(fields))));
                }
            }
        }
        intrinsics::construct(ty, argv, line)
    }
}

/// Default value for a declared type.
pub(crate) fn default_value(ty: &Type) -> Value {
    match ty.decayed() {
        Type::Int | Type::Long | Type::Size | Type::Char => Value::Int(0),
        Type::Float | Type::Double => Value::Real(0.0),
        Type::Bool => Value::Bool(false),
        _ => Value::Unit,
    }
}

/// Coerce a value to a declared type (C-style conversions).
pub(crate) fn coerce_decl(ty: &Type, v: Value) -> Value {
    match ty.decayed() {
        Type::Int | Type::Long | Type::Size => match v.as_int() {
            Some(i) => Value::Int(i),
            None => v,
        },
        Type::Float | Type::Double => match v {
            Value::Int(i) => Value::Real(i as f64),
            other => other,
        },
        Type::Bool => Value::Bool(v.truthy()),
        _ => v,
    }
}

/// Numeric binary operators.
pub(crate) fn binary_op(op: &str, l: &Value, r: &Value, line: u32) -> ExecResult<Value> {
    use Value::*;
    let both_int = matches!((l, r), (Int(_) | Bool(_), Int(_) | Bool(_)));
    let err = || ExecError::new(format!("invalid operands for {op}: {l:?}, {r:?}"), line);
    match op {
        "+" | "-" | "*" | "/" | "%" => {
            if both_int {
                let a = l.as_int().ok_or_else(err)?;
                let b = r.as_int().ok_or_else(err)?;
                let v = match op {
                    "+" => a.wrapping_add(b),
                    "-" => a.wrapping_sub(b),
                    "*" => a.wrapping_mul(b),
                    "/" => {
                        if b == 0 {
                            return Err(ExecError::new("integer division by zero", line));
                        }
                        a / b
                    }
                    _ => {
                        if b == 0 {
                            return Err(ExecError::new("integer modulo by zero", line));
                        }
                        a % b
                    }
                };
                Ok(Int(v))
            } else {
                let a = l.as_real().ok_or_else(err)?;
                let b = r.as_real().ok_or_else(err)?;
                let v = match op {
                    "+" => a + b,
                    "-" => a - b,
                    "*" => a * b,
                    "/" => a / b,
                    _ => a % b,
                };
                Ok(Real(v))
            }
        }
        "<<" | ">>" | "&" | "|" | "^" => {
            let a = l.as_int().ok_or_else(err)?;
            let b = r.as_int().ok_or_else(err)?;
            let v = match op {
                "<<" => a.wrapping_shl(b as u32),
                ">>" => a.wrapping_shr(b as u32),
                "&" => a & b,
                "|" => a | b,
                _ => a ^ b,
            };
            Ok(Int(v))
        }
        "==" | "!=" | "<" | ">" | "<=" | ">=" => {
            let a = l.as_real().ok_or_else(err)?;
            let b = r.as_real().ok_or_else(err)?;
            let v = match op {
                "==" => a == b,
                "!=" => a != b,
                "<" => a < b,
                ">" => a > b,
                "<=" => a <= b,
                _ => a >= b,
            };
            Ok(Bool(v))
        }
        other => Err(ExecError::new(format!("unsupported operator {other}"), line)),
    }
}
