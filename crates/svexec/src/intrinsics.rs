//! Built-in functions and programming-model runtimes.
//!
//! Each heterogeneous model's library surface is implemented here with
//! sequential semantics: CUDA/HIP memory + launch APIs, SYCL queues,
//! buffers, accessors and USM, Kokkos views and parallel patterns, TBB
//! functional loops, C++17 parallel algorithms, OpenMP runtime queries,
//! plus libc/libm basics (`malloc`, `printf`, math).  This is what lets the
//! corpus mini-apps *actually run* and verify in every model — the built-in
//! verification the paper's artefact description requires ("Each mini-app
//! contains built-in verification for correctness").

use crate::interp::{binary_op, ExecError, ExecResult, Interp};
use crate::value::{ArrayRef, Env, Native, Value};
use std::cell::RefCell;
use std::rc::Rc;
use svlang::ast::{Expr, ExprKind, Type};

fn new_array(n: usize) -> ArrayRef {
    Rc::new(RefCell::new(vec![Value::Real(0.0); n]))
}

fn int_arg(args: &[Value], i: usize, line: u32) -> ExecResult<i64> {
    args.get(i)
        .and_then(Value::as_int)
        .ok_or_else(|| ExecError::new(format!("argument {i} must be integral"), line))
}

fn real_arg(args: &[Value], i: usize, line: u32) -> ExecResult<f64> {
    args.get(i)
        .and_then(Value::as_real)
        .ok_or_else(|| ExecError::new(format!("argument {i} must be numeric"), line))
}

/// Size of a dialect type in bytes (for `sizeof` / malloc arithmetic).
fn size_of(ty: &Type) -> i64 {
    match ty.decayed() {
        Type::Char | Type::Bool => 1,
        Type::Int | Type::Float => 4,
        _ => 8,
    }
}

/// Values reachable as bare qualified names.
pub fn path_value(p: &[String]) -> Option<Value> {
    let joined = p.join("::");
    match joined.as_str() {
        "std::execution::par" => Some(Value::Native(Native::ExecPolicy("par"))),
        "std::execution::par_unseq" => Some(Value::Native(Native::ExecPolicy("par_unseq"))),
        "std::execution::seq" => Some(Value::Native(Native::ExecPolicy("seq"))),
        "sycl::gpu_selector_v" | "sycl::default_selector_v" | "sycl::cpu_selector_v" => {
            Some(Value::Native(Native::Device))
        }
        "M_PI" => Some(Value::Real(std::f64::consts::PI)),
        _ => None,
    }
}

/// Dig through `&x` / casts to find the target variable of an out-param.
fn out_param_slot(env: &Env, e: &Expr) -> Option<crate::value::Slot> {
    match &e.kind {
        ExprKind::Unary { op: "&", expr, .. } => out_param_slot(env, expr),
        ExprKind::Cast { expr, .. } => out_param_slot(env, expr),
        ExprKind::Path(p) if p.len() == 1 => env.lookup(&p[0]),
        _ => None,
    }
}

/// Special forms that need raw argument expressions (out-parameters or
/// reduction targets).  Returns `Ok(None)` when the call is not special.
pub fn special_form(
    it: &mut Interp,
    env: &Env,
    file: u32,
    path: &[String],
    targs: &[Type],
    args: &[Expr],
    line: u32,
) -> ExecResult<Option<Value>> {
    let joined = path.join("::");
    match joined.as_str() {
        // cudaMalloc((void**)&d_a, bytes) / hipMalloc(&d_a, bytes)
        "cudaMalloc" | "hipMalloc" => {
            let slot = out_param_slot(env, &args[0])
                .ok_or_else(|| ExecError::new("cudaMalloc needs &pointer", line))?;
            let bytes = it
                .eval(env, file, &args[1])?
                .as_int()
                .ok_or_else(|| ExecError::new("bad byte count", line))?;
            *slot.borrow_mut() = Value::Array(new_array((bytes / 8) as usize));
            Ok(Some(Value::Int(0)))
        }
        // Kokkos::parallel_reduce(n, lambda(i, &acc), target)
        "Kokkos::parallel_reduce" => {
            let n = range_extent(&it.eval(env, file, &args[0])?, line)?;
            let Value::Closure(c) = it.eval(env, file, &args[1])? else {
                return Err(ExecError::new("parallel_reduce needs a lambda", line));
            };
            let acc = Rc::new(RefCell::new(Value::Real(0.0)));
            for i in 0..n {
                it.call_closure(
                    &c,
                    vec![Value::Int(i), Value::Real(0.0)],
                    vec![None, Some(acc.clone())],
                )?;
            }
            let result = acc.borrow().clone();
            if let Some(target) = args.get(2).and_then(|a| out_param_slot(env, a)) {
                *target.borrow_mut() = result.clone();
            }
            Ok(Some(result))
        }
        // HIP device-query out-params.
        "hipGetDeviceCount" | "cudaGetDeviceCount" => {
            if let Some(slot) = out_param_slot(env, &args[0]) {
                *slot.borrow_mut() = Value::Int(1);
            }
            Ok(Some(Value::Int(0)))
        }
        "hipGetDevice" | "cudaGetDevice" => {
            if let Some(slot) = out_param_slot(env, &args[0]) {
                *slot.borrow_mut() = Value::Int(0);
            }
            Ok(Some(Value::Int(0)))
        }
        // sizeof comes through the parser as a call with a type argument.
        "sizeof" => {
            if let Some(t) = targs.first() {
                Ok(Some(Value::Int(size_of(t))))
            } else {
                let v = it.eval(env, file, &args[0])?;
                Ok(Some(Value::Int(match v {
                    Value::Real(_) => 8,
                    Value::Int(_) => 4,
                    _ => 8,
                })))
            }
        }
        _ => Ok(None),
    }
}

fn range_extent(v: &Value, line: u32) -> ExecResult<i64> {
    match v {
        Value::Int(n) => Ok(*n),
        Value::Native(Native::Range(n)) => Ok(*n),
        other => Err(ExecError::new(format!("not an iteration range: {other:?}"), line)),
    }
}

/// Apply a "binary functor" value: `std::plus` (`FnRef("+")`), a closure,
/// or a named function.
fn apply_functor(it: &mut Interp, f: &Value, a: Value, b: Value, line: u32) -> ExecResult<Value> {
    match f {
        Value::FnRef(op) if op.len() <= 2 => binary_op(op, &a, &b, line),
        Value::FnRef(name) => it.call_named(name, vec![a, b], line),
        Value::Closure(c) => it.call_closure(c, vec![a, b], vec![None, None]),
        other => Err(ExecError::new(format!("not a functor: {other:?}"), line)),
    }
}

fn call_unary(it: &mut Interp, f: &Value, a: Value, line: u32) -> ExecResult<Value> {
    match f {
        Value::Closure(c) => it.call_closure(c, vec![a], vec![None]),
        Value::FnRef(name) => it.call_named(name, vec![a], line),
        other => Err(ExecError::new(format!("not callable: {other:?}"), line)),
    }
}

/// Free-function intrinsics with evaluated arguments.
pub fn free_call(
    it: &mut Interp,
    path: &[String],
    _targs: &[Type],
    args: Vec<Value>,
    line: u32,
) -> ExecResult<Value> {
    let joined = path.join("::");
    let last = path.last().map(String::as_str).unwrap_or("");
    match (joined.as_str(), last) {
        // ---- math -------------------------------------------------------
        (_, "sqrt") => Ok(Value::Real(real_arg(&args, 0, line)?.sqrt())),
        (_, "fabs" | "abs") => match &args[0] {
            Value::Int(v) => Ok(Value::Int(v.abs())),
            other => Ok(Value::Real(
                other.as_real().ok_or_else(|| ExecError::new("abs arg", line))?.abs(),
            )),
        },
        (_, "sin") => Ok(Value::Real(real_arg(&args, 0, line)?.sin())),
        (_, "cos") => Ok(Value::Real(real_arg(&args, 0, line)?.cos())),
        (_, "exp") => Ok(Value::Real(real_arg(&args, 0, line)?.exp())),
        (_, "log") => Ok(Value::Real(real_arg(&args, 0, line)?.ln())),
        (_, "tanh") => Ok(Value::Real(real_arg(&args, 0, line)?.tanh())),
        (_, "floor") => Ok(Value::Real(real_arg(&args, 0, line)?.floor())),
        (_, "ceil") => Ok(Value::Real(real_arg(&args, 0, line)?.ceil())),
        (_, "pow") => Ok(Value::Real(real_arg(&args, 0, line)?.powf(real_arg(&args, 1, line)?))),
        (_, "fmin") => Ok(Value::Real(real_arg(&args, 0, line)?.min(real_arg(&args, 1, line)?))),
        (_, "fmax") => Ok(Value::Real(real_arg(&args, 0, line)?.max(real_arg(&args, 1, line)?))),
        (_, "min") => {
            if let (Value::Int(a), Value::Int(b)) = (&args[0], &args[1]) {
                Ok(Value::Int(*a.min(b)))
            } else {
                Ok(Value::Real(real_arg(&args, 0, line)?.min(real_arg(&args, 1, line)?)))
            }
        }
        (_, "max") => {
            if let (Value::Int(a), Value::Int(b)) = (&args[0], &args[1]) {
                Ok(Value::Int(*a.max(b)))
            } else {
                Ok(Value::Real(real_arg(&args, 0, line)?.max(real_arg(&args, 1, line)?)))
            }
        }

        // ---- libc -------------------------------------------------------
        (_, "printf") => {
            let Value::Str(fmt) = &args[0] else {
                return Err(ExecError::new("printf needs a format string", line));
            };
            let text = format_printf(fmt, &args[1..], line)?;
            it.output.push_str(&text);
            Ok(Value::Int(text.len() as i64))
        }
        ("malloc", _) | ("std::malloc", _) => {
            let bytes = int_arg(&args, 0, line)?;
            Ok(Value::Array(new_array((bytes / 8) as usize)))
        }
        ("free", _) | ("std::free", _) => Ok(Value::Unit),
        (_, "exit") => Err(ExecError::new("program called exit()", line)),

        // ---- OpenMP runtime ----------------------------------------------
        ("omp_get_wtime", _) => {
            it.time += 1.0e-6;
            Ok(Value::Real(it.time))
        }
        ("omp_get_max_threads", _) | ("omp_get_num_threads", _) => Ok(Value::Int(1)),
        ("omp_get_thread_num", _) => Ok(Value::Int(0)),
        ("omp_set_num_threads", _) => Ok(Value::Unit),

        // ---- CUDA / HIP ---------------------------------------------------
        ("cudaMemcpy", _) | ("hipMemcpy", _) => {
            let dst = args[0].array().ok_or_else(|| ExecError::new("memcpy dst", line))?;
            let src = args[1].array().ok_or_else(|| ExecError::new("memcpy src", line))?;
            let n = (int_arg(&args, 2, line)? / 8) as usize;
            let srcv = src.borrow();
            let mut dstv = dst.borrow_mut();
            for i in 0..n.min(srcv.len()).min(dstv.len()) {
                dstv[i] = srcv[i].clone();
            }
            Ok(Value::Int(0))
        }
        ("cudaFree", _)
        | ("hipFree", _)
        | ("cudaDeviceSynchronize", _)
        | ("hipDeviceSynchronize", _)
        | ("hipSetDevice", _)
        | ("cudaSetDevice", _)
        | ("hipDeviceReset", _) => Ok(Value::Int(0)),

        // ---- SYCL USM ------------------------------------------------------
        ("sycl::malloc_shared", _) | ("sycl::malloc_device", _) | ("sycl::malloc_host", _) => {
            let n = int_arg(&args, 0, line)?;
            Ok(Value::Array(new_array(n as usize)))
        }
        ("sycl::free", _) => Ok(Value::Unit),

        // ---- Kokkos ---------------------------------------------------------
        ("Kokkos::initialize", _) | ("Kokkos::finalize", _) | ("Kokkos::fence", _) => {
            Ok(Value::Unit)
        }
        ("Kokkos::parallel_for", _) => {
            let n = range_extent(&args[0], line)?;
            let f = args[1].clone();
            for i in 0..n {
                call_unary(it, &f, Value::Int(i), line)?;
            }
            Ok(Value::Unit)
        }

        // ---- TBB ---------------------------------------------------------------
        ("tbb::parallel_for", _) => {
            let lo = int_arg(&args, 0, line)?;
            let hi = int_arg(&args, 1, line)?;
            let f = args[2].clone();
            for i in lo..hi {
                call_unary(it, &f, Value::Int(i), line)?;
            }
            Ok(Value::Unit)
        }
        ("tbb::parallel_reduce", _) => {
            // tbb::parallel_reduce(lo, hi, init, body(i, acc))
            let lo = int_arg(&args, 0, line)?;
            let hi = int_arg(&args, 1, line)?;
            let mut acc = args[2].clone();
            let f = args[3].clone();
            for i in lo..hi {
                acc = apply_functor(it, &f, Value::Int(i), acc, line)?;
            }
            Ok(acc)
        }

        // ---- C++17 parallel algorithms (StdPar) -------------------------------
        ("std::for_each_n", _) => {
            // (policy, first_index, n, fn)
            let start = int_arg(&args, 1, line)?;
            let n = int_arg(&args, 2, line)?;
            let f = args[3].clone();
            for i in start..start + n {
                call_unary(it, &f, Value::Int(i), line)?;
            }
            Ok(Value::Unit)
        }
        ("std::for_each", _) => {
            // (policy, lo, hi, fn) over counting indices
            let lo = int_arg(&args, 1, line)?;
            let hi = int_arg(&args, 2, line)?;
            let f = args[3].clone();
            for i in lo..hi {
                call_unary(it, &f, Value::Int(i), line)?;
            }
            Ok(Value::Unit)
        }
        ("std::transform_reduce", _) => {
            // (policy, lo, hi, init, reduce, transform) over counting indices
            let lo = int_arg(&args, 1, line)?;
            let hi = int_arg(&args, 2, line)?;
            let mut acc = args[3].clone();
            let red = args[4].clone();
            let tr = args[5].clone();
            for i in lo..hi {
                let t = call_unary(it, &tr, Value::Int(i), line)?;
                acc = apply_functor(it, &red, acc, t, line)?;
            }
            Ok(acc)
        }

        _ => Err(ExecError::new(format!("unknown function {joined}"), line)),
    }
}

/// Method calls on model objects.
#[allow(clippy::too_many_arguments)]
pub fn member_call(
    it: &mut Interp,
    recv: &Value,
    member: &str,
    args: Vec<Value>,
    line: u32,
    _env: &Env,
    _file: u32,
    _arg_exprs: &[Expr],
) -> ExecResult<Value> {
    match (recv, member) {
        // SYCL queue
        (Value::Native(Native::Queue), "submit") => {
            let Value::Closure(c) = &args[0] else {
                return Err(ExecError::new("submit needs a command group lambda", line));
            };
            it.call_closure(c, vec![Value::Native(Native::Handler)], vec![None])
        }
        (Value::Native(Native::Queue | Native::Handler), "parallel_for") => {
            let n = range_extent(&args[0], line)?;
            let f = args
                .get(1)
                .cloned()
                .ok_or_else(|| ExecError::new("parallel_for needs a kernel", line))?;
            for i in 0..n {
                call_unary(it, &f, Value::Int(i), line)?;
            }
            Ok(Value::Unit)
        }
        (Value::Native(Native::Queue | Native::Handler), "single_task") => {
            let Value::Closure(c) = &args[0] else {
                return Err(ExecError::new("single_task needs a lambda", line));
            };
            it.call_closure(c, vec![], vec![])
        }
        (Value::Native(Native::Queue), "wait" | "wait_and_throw") => Ok(Value::Unit),
        (Value::Native(Native::Queue), "memcpy") => {
            let dst = args[0].array().ok_or_else(|| ExecError::new("memcpy dst", line))?;
            let src = args[1].array().ok_or_else(|| ExecError::new("memcpy src", line))?;
            let n = (int_arg(&args, 2, line)? / 8) as usize;
            let srcv = src.borrow();
            let mut dstv = dst.borrow_mut();
            for i in 0..n.min(srcv.len()).min(dstv.len()) {
                dstv[i] = srcv[i].clone();
            }
            Ok(Value::Unit)
        }
        (Value::Native(Native::Queue), "get_device") => Ok(Value::Native(Native::Device)),
        // SYCL buffer
        (Value::Native(Native::Buffer(a)), "get_access") => {
            Ok(Value::Native(Native::Accessor(a.clone())))
        }
        // Arrays
        (Value::Array(a), "size") => Ok(Value::Int(a.borrow().len() as i64)),
        (recv, m) => Err(ExecError::new(format!("no method {m} on {recv:?}"), line)),
    }
}

/// Constructor dispatch for library types.
pub fn construct(ty: &Type, args: Vec<Value>, line: u32) -> ExecResult<Value> {
    let Type::Named { path, .. } = ty.decayed() else {
        // Scalar "constructor" = cast: double(n)
        return Ok(crate::interp::coerce_decl(ty, args.into_iter().next().unwrap_or(Value::Unit)));
    };
    let joined = path.join("::");
    match joined.as_str() {
        "sycl::queue" => Ok(Value::Native(Native::Queue)),
        "sycl::device" | "sycl::gpu_selector" | "sycl::default_selector" => {
            Ok(Value::Native(Native::Device))
        }
        "sycl::range" | "sycl::nd_range" => {
            let n = args
                .first()
                .and_then(Value::as_int)
                .ok_or_else(|| ExecError::new("range extent", line))?;
            Ok(Value::Native(Native::Range(n)))
        }
        "sycl::buffer" => {
            // buffer(host_array, n) shares the host payload; buffer(n)
            // allocates fresh.
            if let Some(a) = args.first().and_then(Value::array) {
                Ok(Value::Native(Native::Buffer(a)))
            } else {
                let n = args
                    .first()
                    .and_then(Value::as_int)
                    .ok_or_else(|| ExecError::new("buffer size", line))?;
                Ok(Value::Native(Native::Buffer(new_array(n as usize))))
            }
        }
        "sycl::accessor" => {
            let a = args
                .first()
                .and_then(Value::array)
                .ok_or_else(|| ExecError::new("accessor needs a buffer", line))?;
            Ok(Value::Native(Native::Accessor(a)))
        }
        "Kokkos::View" => {
            // View("name", n)
            let n = args
                .iter()
                .find_map(Value::as_int)
                .ok_or_else(|| ExecError::new("view extent", line))?;
            Ok(Value::Native(Native::View(new_array(n as usize))))
        }
        "Kokkos::RangePolicy" => {
            let hi = args
                .last()
                .and_then(Value::as_int)
                .ok_or_else(|| ExecError::new("range policy", line))?;
            Ok(Value::Native(Native::Range(hi)))
        }
        "dim3" => {
            let x =
                args.first().and_then(Value::as_int).ok_or_else(|| ExecError::new("dim3", line))?;
            Ok(Value::Native(Native::Dim3 { x }))
        }
        "std::plus" => Ok(Value::FnRef("+".into())),
        "std::multiplies" => Ok(Value::FnRef("*".into())),
        other => Err(ExecError::new(format!("unknown type constructor {other}"), line)),
    }
}

/// Minimal printf: `%d %ld %f %g %e %s %c %%` plus `%.Nf` precision.
fn format_printf(fmt: &str, args: &[Value], line: u32) -> ExecResult<String> {
    let mut out = String::new();
    let mut chars = fmt.chars().peekable();
    let mut next = 0usize;
    let take = |next: &mut usize| -> ExecResult<Value> {
        let v = args
            .get(*next)
            .cloned()
            .ok_or_else(|| ExecError::new("printf: not enough arguments", line))?;
        *next += 1;
        Ok(v)
    };
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        // Parse flags/width/precision (only precision affects output here).
        let mut precision: Option<usize> = None;
        let mut spec = chars.next().ok_or_else(|| ExecError::new("dangling %", line))?;
        while spec.is_ascii_digit() || spec == '.' || spec == '-' || spec == '+' {
            if spec == '.' {
                let mut p = 0usize;
                while chars.peek().is_some_and(|c| c.is_ascii_digit()) {
                    p = p * 10 + chars.next().unwrap().to_digit(10).unwrap() as usize;
                }
                precision = Some(p);
            }
            spec = chars.next().ok_or_else(|| ExecError::new("dangling %", line))?;
        }
        // length modifiers
        while spec == 'l' || spec == 'z' || spec == 'h' {
            spec = chars.next().ok_or_else(|| ExecError::new("dangling %", line))?;
        }
        match spec {
            '%' => out.push('%'),
            'd' | 'i' | 'u' => {
                let v = take(&mut next)?;
                out.push_str(&v.as_int().unwrap_or(0).to_string());
            }
            'f' | 'F' => {
                let v = take(&mut next)?.as_real().unwrap_or(0.0);
                out.push_str(&format!("{:.*}", precision.unwrap_or(6), v));
            }
            'e' | 'E' => {
                let v = take(&mut next)?.as_real().unwrap_or(0.0);
                out.push_str(&format!("{:.*e}", precision.unwrap_or(6), v));
            }
            'g' | 'G' => {
                let v = take(&mut next)?.as_real().unwrap_or(0.0);
                out.push_str(&format!("{v}"));
            }
            's' => {
                let v = take(&mut next)?;
                match v {
                    Value::Str(s) => out.push_str(&s),
                    other => out.push_str(&format!("{other:?}")),
                }
            }
            'c' => {
                let v = take(&mut next)?.as_int().unwrap_or(0);
                out.push(v as u8 as char);
            }
            other => return Err(ExecError::new(format!("printf: bad spec %{other}"), line)),
        }
    }
    Ok(out)
}
