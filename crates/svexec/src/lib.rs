//! # svexec — dialect interpreter with line-coverage recording
//!
//! The paper's `+coverage` metric variants require running each mini-app
//! "with a reduced problem set" under coverage instrumentation and using
//! the line profile as a mask over the semantic trees.  This crate plays
//! the role of the instrumented binary: a tree-walking interpreter for the
//! `svlang` C/C++ dialect that
//!
//! * executes every programming model's code path through built-in model
//!   runtimes ([`intrinsics`]: CUDA/HIP, SYCL buffers + USM, Kokkos, TBB,
//!   C++17 parallel algorithms, OpenMP runtime calls),
//! * records per-line [`svtree::mask::CoverageMask`] data,
//! * captures `printf` output so the mini-apps' built-in verification can
//!   be checked by the test harness.
//!
//! Parallel constructs run with sequential semantics; the corpus kernels
//! are deterministic, so results equal what the real runtimes produce.

pub mod interp;
pub mod intrinsics;
pub mod value;

pub use interp::{ExecError, ExecResult, Interp};
pub use value::{Env, Native, Value};

use svlang::unit::Unit;
use svtree::mask::CoverageMask;

/// Outcome of running a unit's `main()`.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// `main`'s return value (0 = the mini-app's self-verification passed).
    pub exit_code: i64,
    /// Captured `printf` output.
    pub output: String,
    /// Line coverage collected during the run.
    pub coverage: CoverageMask,
}

/// Run a compiled C/C++ unit end to end.
pub fn run_unit(unit: &Unit) -> ExecResult<RunResult> {
    let prog = unit
        .program
        .as_ref()
        .ok_or_else(|| ExecError::new("unit has no C/C++ program (Fortran?)", 0))?;
    let mut it = Interp::new(prog)?;
    let exit_code = it.run_main()?;
    Ok(RunResult { exit_code, output: it.output.clone(), coverage: it.coverage.clone() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use svlang::source::SourceSet;
    use svlang::unit::{compile_unit, UnitOptions};

    fn run(src: &str) -> RunResult {
        run_files(&[("m.cpp", src, false)])
    }

    fn run_files(files: &[(&str, &str, bool)]) -> RunResult {
        let mut ss = SourceSet::new();
        for (p, t, sys) in files {
            if *sys {
                ss.add_system(*p, *t);
            } else {
                ss.add(*p, *t);
            }
        }
        let main = ss.lookup(files[0].0).unwrap();
        let unit = compile_unit(&ss, main, &UnitOptions::default()).unwrap();
        run_unit(&unit).unwrap()
    }

    #[test]
    fn arithmetic_and_return() {
        let r = run("int main() { int x = 6; int y = 7; return x * y - 42; }");
        assert_eq!(r.exit_code, 0);
    }

    #[test]
    fn float_math() {
        let r = run(
            "int main() { double x = 2.0; double y = sqrt(x); if (fabs(y * y - 2.0) < 1e-12) { return 0; } return 1; }",
        );
        assert_eq!(r.exit_code, 0);
    }

    #[test]
    fn loops_and_arrays() {
        let r = run(
            "int main() {\n  double* a = (double*)malloc(100 * sizeof(double));\n  for (int i = 0; i < 100; i++) { a[i] = i * 1.0; }\n  double sum = 0.0;\n  for (int i = 0; i < 100; i++) { sum += a[i]; }\n  if (sum == 4950.0) { return 0; }\n  return 1;\n}",
        );
        assert_eq!(r.exit_code, 0);
    }

    #[test]
    fn printf_output() {
        let r = run("int main() { printf(\"n=%d v=%.2f s=%s\\n\", 5, 1.5, \"ok\"); return 0; }");
        assert_eq!(r.output, "n=5 v=1.50 s=ok\n");
    }

    #[test]
    fn while_break_continue() {
        let r = run(
            "int main() { int i = 0; int hits = 0; while (true) { i++; if (i > 10) break; if (i % 2 == 0) continue; hits++; } return hits - 5; }",
        );
        assert_eq!(r.exit_code, 0);
    }

    #[test]
    fn functions_and_recursion() {
        let r = run(
            "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }\nint main() { return fib(10) - 55; }",
        );
        assert_eq!(r.exit_code, 0);
    }

    #[test]
    fn lambdas_capture_by_reference_semantics() {
        let r = run(
            "int main() { double sum = 0.0; auto add = [&](double v) { sum += v; return 0; }; add(1.5); add(2.5); if (sum == 4.0) { return 0; } return 1; }",
        );
        assert_eq!(r.exit_code, 0);
    }

    #[test]
    fn structs_fields() {
        let r = run(
            "struct P { double x; double y; };\nint main() { P p = P(3.0, 4.0); double d = sqrt(p.x * p.x + p.y * p.y); if (d == 5.0) { return 0; } return 1; }",
        );
        assert_eq!(r.exit_code, 0);
    }

    #[test]
    fn cuda_kernel_launch() {
        let r = run(
            "__global__ void fill(double* a, double v, int n) {\n  int i = threadIdx.x + blockIdx.x * blockDim.x;\n  if (i < n) { a[i] = v; }\n}\nint main() {\n  int n = 100;\n  double* d_a;\n  cudaMalloc((void*)&d_a, n * sizeof(double));\n  fill<<<4, 32>>>(d_a, 7.0, n);\n  cudaDeviceSynchronize();\n  double sum = 0.0;\n  for (int i = 0; i < n; i++) { sum += d_a[i]; }\n  if (sum == 700.0) { return 0; }\n  return 1;\n}",
        );
        assert_eq!(r.exit_code, 0);
    }

    #[test]
    fn sycl_buffers_and_queue() {
        let r = run(
            "int main() {\n  int n = 64;\n  double* h = (double*)malloc(n * sizeof(double));\n  sycl::queue q;\n  sycl::buffer<double> buf(h, n);\n  q.submit([&](sycl::handler& cgh) {\n    sycl::accessor acc(buf, cgh);\n    cgh.parallel_for(sycl::range(n), [=](int i) { acc[i] = 2.0; });\n  });\n  q.wait();\n  double s = 0.0;\n  for (int i = 0; i < n; i++) { s += h[i]; }\n  if (s == 128.0) { return 0; }\n  return 1;\n}",
        );
        assert_eq!(r.exit_code, 0);
    }

    #[test]
    fn sycl_usm() {
        let r = run(
            "int main() {\n  int n = 32;\n  sycl::queue q;\n  double* a = sycl::malloc_shared<double>(n, q);\n  q.parallel_for(sycl::range(n), [=](int i) { a[i] = i * 1.0; });\n  q.wait();\n  double s = 0.0;\n  for (int i = 0; i < n; i++) { s += a[i]; }\n  sycl::free(a, q);\n  if (s == 496.0) { return 0; }\n  return 1;\n}",
        );
        assert_eq!(r.exit_code, 0);
    }

    #[test]
    fn kokkos_view_and_reduce() {
        let r = run(
            "int main() {\n  Kokkos::initialize();\n  int n = 50;\n  Kokkos::View<double> a(\"a\", n);\n  Kokkos::parallel_for(n, [=](int i) { a(i) = 2.0; });\n  double sum = 0.0;\n  Kokkos::parallel_reduce(n, [=](int i, double& acc) { acc += a(i); }, sum);\n  Kokkos::finalize();\n  if (sum == 100.0) { return 0; }\n  return 1;\n}",
        );
        assert_eq!(r.exit_code, 0);
    }

    #[test]
    fn tbb_loops() {
        let r = run(
            "int main() {\n  int n = 40;\n  double* a = (double*)malloc(n * sizeof(double));\n  tbb::parallel_for(0, n, [=](int i) { a[i] = 3.0; });\n  double s = tbb::parallel_reduce(0, n, 0.0, [=](int i, double acc) { return acc + a[i]; });\n  if (s == 120.0) { return 0; }\n  return 1;\n}",
        );
        assert_eq!(r.exit_code, 0);
    }

    #[test]
    fn stdpar_algorithms() {
        let r = run(
            "int main() {\n  int n = 25;\n  double* a = (double*)malloc(n * sizeof(double));\n  std::for_each_n(std::execution::par_unseq, 0, n, [=](int i) { a[i] = i * 2.0; });\n  double s = std::transform_reduce(std::execution::par_unseq, 0, n, 0.0, std::plus<double>(), [=](int i) { return a[i]; });\n  if (s == 600.0) { return 0; }\n  return 1;\n}",
        );
        assert_eq!(r.exit_code, 0);
    }

    #[test]
    fn omp_pragmas_execute_sequentially() {
        let r = run(
            "int main() {\n  int n = 30;\n  double* a = (double*)malloc(n * sizeof(double));\n  double sum = 0.0;\n#pragma omp parallel for\n  for (int i = 0; i < n; i++) { a[i] = 1.0; }\n#pragma omp parallel for reduction(+:sum)\n  for (int i = 0; i < n; i++) { sum += a[i]; }\n  if (sum == 30.0) { return 0; }\n  return 1;\n}",
        );
        assert_eq!(r.exit_code, 0);
    }

    #[test]
    fn coverage_records_executed_lines_only() {
        let r = run(
            "int main() {\n  int x = 1;\n  if (x > 0) {\n    x = 2;\n  } else {\n    x = 3;\n  }\n  return x - 2;\n}",
        );
        assert_eq!(r.exit_code, 0);
        // line 4 (then) covered, line 6 (else) not.
        assert!(r.coverage.covers(Some(svtree::Span::line(0, 4))));
        assert!(!r.coverage.covers(Some(svtree::Span::line(0, 6))));
    }

    #[test]
    fn coverage_masks_semantic_tree() {
        let mut ss = SourceSet::new();
        let src = "int main() {\n  int x = 1;\n  if (x > 0) {\n    x = 2;\n  } else {\n    x = 3;\n  }\n  return x - 2;\n}\nvoid never_called() {\n  int dead = 1;\n}";
        let m = ss.add("m.cpp", src);
        let unit = compile_unit(&ss, m, &UnitOptions::default()).unwrap();
        let r = run_unit(&unit).unwrap();
        let masked = r.coverage.apply(&unit.t_sem);
        assert!(masked.size() < unit.t_sem.size());
        // never_called() must be pruned entirely: only one FunctionDecl left.
        assert_eq!(masked.count_labels(|l| l == "FunctionDecl"), 1);
    }

    #[test]
    fn step_limit_stops_runaway() {
        let mut ss = SourceSet::new();
        let m = ss.add("m.cpp", "int main() { while (true) { int x = 1; } return 0; }");
        let unit = compile_unit(&ss, m, &UnitOptions::default()).unwrap();
        let mut it = Interp::new(unit.program.as_ref().unwrap()).unwrap();
        it.set_step_limit(10_000);
        let e = it.run_main().unwrap_err();
        assert!(e.message.contains("step limit"));
    }

    #[test]
    fn runtime_errors_have_lines() {
        let mut ss = SourceSet::new();
        let m = ss.add("m.cpp", "int main() {\n  int x = 1 / 0;\n  return 0;\n}");
        let unit = compile_unit(&ss, m, &UnitOptions::default()).unwrap();
        let e = run_unit(&unit).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("division by zero"));
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let mut ss = SourceSet::new();
        let m =
            ss.add("m.cpp", "int main() { double* a = (double*)malloc(8); a[5] = 1.0; return 0; }");
        let unit = compile_unit(&ss, m, &UnitOptions::default()).unwrap();
        assert!(run_unit(&unit).is_err());
    }

    #[test]
    fn globals_initialised_before_main() {
        let r =
            run("double scalar = 0.4;\nint main() { if (scalar == 0.4) { return 0; } return 1; }");
        assert_eq!(r.exit_code, 0);
    }

    #[test]
    fn switch_matching_and_fallthrough() {
        let r = run(
            "int classify(int x) {\n  int kind = 0;\n  switch (x) {\n    case 0:\n      kind = 10;\n      break;\n    case 1:\n    case 2:\n      kind = 20;\n      break;\n    default:\n      kind = 99;\n  }\n  return kind;\n}\nint main() {\n  if (classify(0) != 10) { return 1; }\n  if (classify(1) != 20) { return 2; }\n  if (classify(2) != 20) { return 3; }\n  if (classify(7) != 99) { return 4; }\n  return 0;\n}",
        );
        assert_eq!(r.exit_code, 0, "{}", r.output);
    }

    #[test]
    fn switch_without_default_falls_through_silently() {
        let r = run("int main() { int x = 5; switch (x) { case 1: return 1; } return 0; }");
        assert_eq!(r.exit_code, 0);
    }

    #[test]
    fn ternary_and_compound_assign() {
        let r =
            run("int main() { int a = 5; a *= 3; a -= 5; int b = a > 9 ? 1 : 2; return b - 1; }");
        assert_eq!(r.exit_code, 0);
    }
}
