//! Quick SIMD-vs-scalar kernel probe: one timed sweep of the Fig. 8 pair
//! set per mode (`SV_SIMD_LEVEL`/`SV_NO_SIMD` select the lane tier).
//! For tuning iterations only — the gated numbers come from
//! `bench/benches/ted_kernel.rs`.

use silvervale::index_app;
use std::time::Instant;
use svcorpus::App;
use svdist::ted::{dp_cell_estimate, ted_with_mode, KernelMode};
use svdist::{active_kernel_name, CostModel, DistanceMatrix, Strategy};
use svtree::Tree;

fn main() {
    let db = index_app(App::CloverLeaf, false).expect("index cloverleaf");
    let n = db.labels().len();
    let pairs = DistanceMatrix::upper_pairs(n);
    let trees: Vec<Tree> = db.entries.iter().map(|e| e.artifacts.t_sem.tree().clone()).collect();
    let cells: u64 =
        pairs.iter().map(|&(i, j)| dp_cell_estimate(&trees[i], &trees[j], Strategy::Auto)).sum();
    println!("total DP cells: {cells}");

    let sweep = |mode: KernelMode| {
        let t = Instant::now();
        let d: Vec<u64> = pairs
            .iter()
            .map(|&(i, j)| {
                ted_with_mode(&trees[i], &trees[j], CostModel::UNIT, Strategy::Auto, mode)
            })
            .collect();
        (t.elapsed().as_secs_f64() * 1e3, d)
    };

    // Warm up arenas and page cache, then measure.
    let (_, reference) = sweep(KernelMode::Full);
    let iters: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    for _ in 0..iters {
        let (full_ms, _) = sweep(KernelMode::Full);
        let (simd_ms, d) = sweep(KernelMode::Simd);
        assert_eq!(d, reference, "SIMD changed a distance");
        println!(
            "kernel={:<14} full={full_ms:7.1} ms  simd={simd_ms:7.1} ms  speedup={:.3}x",
            active_kernel_name(),
            full_ms / simd_ms
        );
    }
}
