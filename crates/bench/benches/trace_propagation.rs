//! Distributed-tracing overhead snapshot.
//!
//! Measures what the request-scoped tracing machinery costs at each
//! level and writes `BENCH_trace.json`:
//!
//! * the disabled fast path — price of one `span!` site when neither the
//!   collector nor a request context is armed (one atomic + one
//!   thread-local load), over a million iterations;
//! * per-request wall time against a live echo server in three modes:
//!   flight recorder off, recorder self-sampling (the serving default),
//!   and a client-traced request carrying a wire context end to end;
//! * the derived bound on what instrumentation adds to an *untraced*
//!   request, which must stay under 2% — the gate that keeps tracing
//!   free when nobody is looking.

use bench::{criterion, save_figure};
use silvervale::svjson::Json;
use std::time::Instant;
use svserve::{serve_with, Client, Router, ServeConfig};

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn echo_router() -> Router {
    let mut r = Router::new();
    r.register("echo", |p| Ok(p.clone()));
    r
}

/// Median per-request wall time in µs over batched call rounds.
fn req_us(client: &mut Client, rounds: usize, batch: usize) -> f64 {
    let mut times: Vec<f64> = (0..rounds)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                client.call("echo", Json::Null).expect("echo");
            }
            t.elapsed().as_secs_f64() / batch as f64
        })
        .collect();
    median(&mut times) * 1e6
}

fn main() {
    // ── Disabled fast path: the per-site price when tracing is off. ──
    const SPAN_ITERS: u64 = 1_000_000;
    let t = Instant::now();
    for _ in 0..SPAN_ITERS {
        let _g = svtrace::span!("bench.noop");
    }
    let per_span_ns = t.elapsed().as_nanos() as f64 / SPAN_ITERS as f64;

    const ROUNDS: usize = 40;
    const BATCH: usize = 50;

    // ── Baseline: flight recorder off, nothing sampled. ──
    let handle = serve_with(
        "127.0.0.1:0",
        echo_router(),
        ServeConfig { workers: 2, flight_recorder: false, ..ServeConfig::default() },
    )
    .expect("bind recorder-off server");
    let mut client = Client::connect(handle.addr()).expect("connect");
    req_us(&mut client, 4, BATCH); // warm up
    let recorder_off_us = req_us(&mut client, ROUNDS, BATCH);
    handle.shutdown();

    // ── Serving default: the recorder self-samples routed requests. ──
    let handle = serve_with(
        "127.0.0.1:0",
        echo_router(),
        ServeConfig { workers: 2, ..ServeConfig::default() },
    )
    .expect("bind default server");
    let mut client = Client::connect(handle.addr()).expect("connect");
    req_us(&mut client, 4, BATCH);
    let untraced_us = req_us(&mut client, ROUNDS, BATCH);
    // Full propagation: wire context + client span + server-side sink.
    client.set_tracing(true);
    req_us(&mut client, 4, BATCH);
    let traced_us = req_us(&mut client, ROUNDS, BATCH);
    client.set_tracing(false);

    // An untraced echo request crosses two span sites on the server
    // (`serve.request`, `pool.execute`) and one on the client.
    let sites_per_request = 3.0;
    let disabled_overhead_pct = per_span_ns * sites_per_request / (recorder_off_us * 1e3) * 100.0;

    let pct = |a: f64, b: f64| (a - b) / b * 100.0;
    let doc = Json::obj([
        ("rounds", Json::Num(ROUNDS as f64)),
        ("batch", Json::Num(BATCH as f64)),
        (
            "request",
            Json::obj([
                ("recorder_off_us", Json::Num(recorder_off_us)),
                ("untraced_us", Json::Num(untraced_us)),
                ("traced_us", Json::Num(traced_us)),
                ("self_sample_overhead_pct", Json::Num(pct(untraced_us, recorder_off_us))),
                ("traced_overhead_pct", Json::Num(pct(traced_us, recorder_off_us))),
            ]),
        ),
        (
            "disabled_path",
            Json::obj([
                ("span_cost_ns", Json::Num(per_span_ns)),
                ("sites_per_request", Json::Num(sites_per_request)),
                ("overhead_pct", Json::Num(disabled_overhead_pct)),
            ]),
        ),
    ]);
    save_figure("BENCH_trace.json", &doc.to_string_compact());
    assert!(
        disabled_overhead_pct < 2.0,
        "tracing-off instrumentation must stay under 2% of a request \
         ({disabled_overhead_pct:.4}% measured)"
    );

    let mut c = criterion();
    c.bench_function("trace/request_untraced", |b| {
        b.iter(|| client.call("echo", Json::Null).expect("echo"))
    });
    c.bench_function("trace/request_traced", |b| {
        client.set_tracing(true);
        b.iter(|| client.call("echo", Json::Null).expect("echo"));
        client.set_tracing(false);
    });
    handle.shutdown();
    c.final_summary();
}
