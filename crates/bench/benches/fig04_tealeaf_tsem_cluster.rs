//! Fig. 4 — TeaLeaf model clustering heatmap + dendrogram using T_sem.

use bench::{criterion, save_figure};
use silvervale::{index_app, model_dendrogram, model_matrix};
use svcluster::Heatmap;
use svcorpus::App;
use svmetrics::{Metric, Variant};

fn main() {
    let db = index_app(App::TeaLeaf, false).unwrap();
    let matrix = model_matrix(&db, Metric::TSem, Variant::PLAIN);
    let dendro = model_dendrogram(&db, Metric::TSem, Variant::PLAIN);
    let mut out = String::from("Fig. 4 — TeaLeaf model clustering (T_sem)\n\n");
    out.push_str(&Heatmap::ordered_by(&matrix, &dendro).render());
    out.push('\n');
    out.push_str(&dendro.render());
    out.push_str("\nnewick: ");
    out.push_str(&dendro.to_newick());
    out.push('\n');
    save_figure("fig04_tealeaf_tsem_cluster.txt", &out);
    save_figure("fig04_tealeaf_tsem_matrix.csv", &matrix.to_csv());

    let mut c = criterion();
    c.bench_function("fig04/tsem_divergence_matrix", |b| {
        b.iter(|| model_matrix(&db, Metric::TSem, Variant::PLAIN))
    });
    c.bench_function("fig04/clustering", |b| b.iter(|| svcluster::cluster_rows(&matrix)));
    c.final_summary();
}
