//! Zhang–Shasha kernel ablation (the §VII per-pair DP bottleneck),
//! roofline-placed.
//!
//! `BENCH_matrix.json` showed cold divergence-matrix builds are
//! DP-dominated (~47 ms/pair on the CloverLeaf Fig. 8 workload), so this
//! bench isolates the kernel itself: the same 45 `T_sem` pairs are solved
//! by every ablation stage of the kernel —
//!
//! * `baseline` — the PR 4 kernel: fresh zero-initialised `u64` tables
//!   per pair, branchy inner loop,
//! * `arena` — thread-local scratch arena, no per-pair allocation or
//!   zero-initialisation,
//! * `arena+u32` — plus width-adaptive cells (unit costs fit `u32`,
//!   halving DP memory traffic),
//! * `arena+u32+split` — plus branch-split inner loops (the `lld`
//!   whole-tree test leaves the innermost loop, column metadata is hoisted
//!   per tree pair, borders come from cost ramps, and the insert scan is
//!   unrolled 4-wide) — the PR 5 scalar kernel,
//! * `simd` — plus the row-wavefront vector kernel (`svdist::simd`):
//!   a weighted Kogge–Stone prefix-min scan replaces the loop-carried
//!   insert chain, with a lane-width cascade for short rows,
//!
//! and separately measures the structural-hash short-circuit against the
//! full DP on a duplicated-tree workload (S-vs-P ports share many
//! unported units, so hash-equal pairs are common in practice).
//!
//! Each stage is also placed on a roofline (Williams, Waterman &
//! Patterson): `cells_per_sec` is measured, `bytes_per_cell` comes from a
//! documented per-cell traffic model, and the memory-bandwidth ceiling is
//! `peak_bw / bytes_per_cell` with peak DRAM bandwidth measured by a
//! STREAM-triad loop in this same process.  A stage running well below
//! its bandwidth ceiling is compute-bound — the justification for
//! spending vector lanes on the min/add chain rather than on traffic.
//!
//! Every stage must produce identical distances; the gates require the
//! scalar production kernel ≥2× baseline, the SIMD kernel ≥1.5× the
//! scalar production kernel, and the short-circuit ≥2× the full DP.
//! Medians land in `BENCH_ted_kernel.json` at the repository root.

use bench::save_figure;
use silvervale::index_app;
use std::time::Instant;
use svcorpus::App;
use svdist::ted::{dp_cell_estimate, ted_with, ted_with_mode, KernelMode};
use svdist::{active_kernel_name, CostModel, DistanceMatrix, Strategy};
use svtree::Tree;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn time<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t = Instant::now();
    let r = f();
    (t.elapsed().as_secs_f64() * 1e3, r)
}

/// Peak sustainable DRAM bandwidth (bytes/s) via STREAM triad
/// `a[i] = b[i] + s·c[i]` over arrays far larger than LLC; best of
/// several sweeps (bandwidth wants the max, kernels want the median).
fn triad_peak_bw() -> f64 {
    const LEN: usize = 48 << 20; // 3 × 384 MiB of u64 — beyond any LLC
    let b = vec![3u64; LEN];
    let c = vec![5u64; LEN];
    let mut a = vec![0u64; LEN];
    let mut best = 0.0f64;
    for _ in 0..3 {
        let t = Instant::now();
        for i in 0..LEN {
            // u64 adds, same element width as the widest DP cell.
            a[i] = b[i].wrapping_add(3u64.wrapping_mul(c[i]));
        }
        let secs = t.elapsed().as_secs_f64();
        std::hint::black_box(&a);
        // 2 reads + 1 write per element (write-allocate traffic ignored,
        // keeping the ceiling conservative for the kernel comparison).
        best = best.max((3 * 8 * LEN) as f64 / secs);
    }
    best
}

/// Modelled DP traffic per cell, in bytes.  Each inner-loop cell writes
/// its own `fd` slot and reads the cell above, the diagonal, the detach
/// pair (an `fd` gather + a `td` load), and per-column metadata
/// (`lld` + label): 5 reads + 1 write of one cell width, plus ~4 bytes
/// of metadata.  The u64 stages move 8-byte cells, u32 stages 4-byte.
fn bytes_per_cell(mode: KernelMode) -> f64 {
    match mode {
        KernelMode::Baseline | KernelMode::Arena => 6.0 * 8.0 + 4.0,
        _ => 6.0 * 4.0 + 4.0,
    }
}

fn main() {
    const ITERS: usize = 5;
    const DUP_ITERS: usize = 9;

    let db = index_app(App::CloverLeaf, false).expect("index cloverleaf");
    let n = db.labels().len();
    let pairs = DistanceMatrix::upper_pairs(n);
    let trees: Vec<Tree> = db.entries.iter().map(|e| e.artifacts.t_sem.tree().clone()).collect();
    let cells: u64 =
        pairs.iter().map(|&(i, j)| dp_cell_estimate(&trees[i], &trees[j], Strategy::Auto)).sum();

    // -- ablation: all 45 pairs through each kernel stage ------------------
    // `ted_with_mode` skips the hash short-circuit and rebuilds the
    // decompositions per call in every mode, so the stages differ only in
    // the DP kernel itself.  Modes are interleaved round-robin within
    // each iteration so slow machine drift (thermal, co-tenants) lands on
    // every mode equally instead of biasing whichever block ran first.
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); KernelMode::ABLATION.len()];
    let mut reference: Option<Vec<u64>> = None;
    for _ in 0..ITERS {
        for (k, mode) in KernelMode::ABLATION.into_iter().enumerate() {
            let (ms, dists) = time(|| {
                pairs
                    .iter()
                    .map(|&(i, j)| {
                        ted_with_mode(&trees[i], &trees[j], CostModel::UNIT, Strategy::Auto, mode)
                    })
                    .collect::<Vec<u64>>()
            });
            samples[k].push(ms);
            match &reference {
                None => reference = Some(dists),
                Some(r) => assert_eq!(&dists, r, "{mode:?} changed a distance"),
            }
        }
    }
    let med: Vec<f64> = samples.into_iter().map(median).collect();
    let (baseline_ms, arena_ms, narrow_ms, full_ms, simd_ms) =
        (med[0], med[1], med[2], med[3], med[4]);
    for (mode, ms) in KernelMode::ABLATION.iter().zip(&med) {
        eprintln!("{:>18}: {ms:.1} ms", mode.name());
    }
    let kernel_speedup = baseline_ms / full_ms;
    assert!(
        kernel_speedup >= 2.0,
        "production kernel must be >=2x the PR 4 baseline, got {kernel_speedup:.2}x \
         ({baseline_ms:.1} ms -> {full_ms:.1} ms)"
    );
    let simd_speedup = full_ms / simd_ms;
    // On hosts with no usable lane tier the simd mode falls back to the
    // scalar kernel; the >=1.5x gate only binds where lanes are live.
    let simd_live =
        active_kernel_name() != "scalar" && !active_kernel_name().contains("SV_NO_SIMD");
    if simd_live {
        assert!(
            simd_speedup >= 1.5,
            "SIMD kernel must be >=1.5x the PR 5 arena_u32_split kernel, got {simd_speedup:.2}x \
             ({full_ms:.1} ms -> {simd_ms:.1} ms, {})",
            active_kernel_name()
        );
    }

    // -- roofline placement -------------------------------------------------
    let peak_bw = triad_peak_bw();
    eprintln!("triad peak bandwidth: {:.2} GB/s", peak_bw / 1e9);
    let roofline: Vec<String> = KernelMode::ABLATION
        .iter()
        .zip(&med)
        .map(|(mode, ms)| {
            let cps = cells as f64 / (ms / 1e3);
            let bpc = bytes_per_cell(*mode);
            let ceiling = peak_bw / bpc;
            // Running ABOVE the DRAM ceiling is possible only when the
            // traffic is served from cache; running below it does not by
            // itself mean DRAM-bound (see the note's identical-traffic
            // argument) — both cases here resolve to compute-bound.
            let bound = if cps > ceiling {
                "compute (above DRAM ceiling: cache-resident)"
            } else {
                "compute"
            };
            format!(
                "    {{ \"stage\": \"{name}\", \"cells_per_sec\": {cps:.3e}, \
                 \"bytes_per_cell\": {bpc:.1}, \"intensity_cells_per_byte\": {oi:.4}, \
                 \"dram_ceiling_cells_per_sec\": {ceiling:.3e}, \
                 \"dram_ceiling_fraction\": {frac:.2}, \"bound\": \"{bound}\" }}",
                name = mode.name(),
                oi = 1.0 / bpc,
                frac = cps / ceiling,
            )
        })
        .collect();

    // -- short-circuit: duplicated trees, with and without ----------------
    // Each model paired with a clone of itself: structurally hash-equal,
    // exactly the unported-unit case.  `ted_with` answers from the hashes;
    // `ted_with_mode` is forced through the full DP.
    let dups: Vec<Tree> = trees.iter().map(|t| t.clone()).collect();
    let full_dp = |mode_full: bool| {
        (0..trees.len())
            .map(|i| {
                if mode_full {
                    ted_with_mode(
                        &trees[i],
                        &dups[i],
                        CostModel::UNIT,
                        Strategy::Auto,
                        KernelMode::Full,
                    )
                } else {
                    ted_with(&trees[i], &dups[i], CostModel::UNIT, Strategy::Auto)
                }
            })
            .collect::<Vec<u64>>()
    };
    let mut t_dup_dp = Vec::new();
    let mut t_dup_sc = Vec::new();
    for _ in 0..DUP_ITERS {
        let (ms_dp, d_dp) = time(|| full_dp(true));
        let (ms_sc, d_sc) = time(|| full_dp(false));
        assert!(d_dp.iter().all(|&d| d == 0), "duplicated pairs must be distance 0");
        assert_eq!(d_dp, d_sc, "short-circuit changed a distance");
        t_dup_dp.push(ms_dp);
        t_dup_sc.push(ms_sc);
    }
    let dup_dp_ms = median(t_dup_dp);
    let dup_sc_ms = median(t_dup_sc);
    let sc_speedup = dup_dp_ms / dup_sc_ms.max(1e-6);
    assert!(
        sc_speedup >= 2.0,
        "hash short-circuit must be >=2x the full DP on duplicated trees, got {sc_speedup:.2}x"
    );

    let json = format!(
        "{{\n  \"workload\": \"CloverLeaf T_sem pairs (Fig. 8), per-pair Zhang-Shasha kernel\",\n  \
         \"models\": {n},\n  \"pairs\": {np},\n  \
         \"dp_cells\": {cells},\n  \
         \"kernel\": \"{kernel}\",\n  \
         \"baseline_ms\": {baseline_ms:.3},\n  \
         \"arena_ms\": {arena_ms:.3},\n  \
         \"arena_u32_ms\": {narrow_ms:.3},\n  \
         \"arena_u32_split_ms\": {full_ms:.3},\n  \
         \"simd_ms\": {simd_ms:.3},\n  \
         \"speedup_arena\": {sp_arena:.3},\n  \
         \"speedup_arena_u32\": {sp_narrow:.3},\n  \
         \"speedup_full_kernel\": {kernel_speedup:.3},\n  \
         \"speedup_simd\": {simd_speedup:.3},\n  \
         \"dup_full_dp_ms\": {dup_dp_ms:.3},\n  \
         \"dup_short_circuit_ms\": {dup_sc_ms:.3},\n  \
         \"speedup_short_circuit\": {sc_speedup:.3},\n  \
         \"triad_peak_bw_gbs\": {bw:.3},\n  \
         \"roofline\": [\n{roofline}\n  ],\n  \
         \"note\": \"ablation over the same 45 decompose-per-pair solves: the branch-split \
         scalar stage carries 2.2x over the PR 4 baseline; the roofline places every stage \
         compute-bound, two ways — the u64 stages run ABOVE their DRAM-bandwidth ceiling, \
         which is only possible when the DP tables are served from cache (td for these \
         trees is a few MB, well inside LLC), and the three u32 stages move byte-identical \
         traffic yet spread ~4x in cells/s, so traffic cannot be the limiter — the wall is \
         the loop-carried insert min/add chain, which the simd stage replaces with a \
         weighted Kogge-Stone prefix-min scan over row wavefronts (lane cascade for short \
         rows, widest tier first): that is where speedup_simd comes from; bytes_per_cell \
         is the documented traffic model (5 reads + 1 write of one cell plus ~4 B column \
         metadata), not a counter measurement; the short-circuit rows pair each tree with \
         a clone of itself (the unported-unit case) — distance 0 from memoised hashes, \
         no DP\"\n}}\n",
        np = pairs.len(),
        kernel = active_kernel_name(),
        sp_arena = baseline_ms / arena_ms,
        sp_narrow = baseline_ms / narrow_ms,
        bw = peak_bw / 1e9,
        roofline = roofline.join(",\n"),
    );

    let repo_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    std::fs::write(format!("{repo_root}/BENCH_ted_kernel.json"), &json)
        .expect("write BENCH_ted_kernel");
    save_figure("BENCH_ted_kernel.json", &json);
}
