//! Zhang–Shasha kernel ablation (the §VII per-pair DP bottleneck).
//!
//! `BENCH_matrix.json` showed cold divergence-matrix builds are
//! DP-dominated (~47 ms/pair on the CloverLeaf Fig. 8 workload), so this
//! bench isolates the kernel itself: the same 45 `T_sem` pairs are solved
//! by every ablation stage of the kernel —
//!
//! * `baseline` — the PR 4 kernel: fresh zero-initialised `u64` tables
//!   per pair, branchy inner loop,
//! * `arena` — thread-local scratch arena, no per-pair allocation or
//!   zero-initialisation,
//! * `arena+u32` — plus width-adaptive cells (unit costs fit `u32`,
//!   halving DP memory traffic),
//! * `arena+u32+split` — plus branch-split inner loops (the `lld`
//!   whole-tree test leaves the innermost loop, column metadata is hoisted
//!   per tree pair, borders come from cost ramps, and the insert scan is
//!   unrolled 4-wide) — the production kernel,
//!
//! and separately measures the structural-hash short-circuit against the
//! full DP on a duplicated-tree workload (S-vs-P ports share many
//! unported units, so hash-equal pairs are common in practice).
//!
//! Every stage must produce identical distances; the gate requires the
//! production kernel to be ≥2× the baseline on the matrix workload.
//! Medians land in `BENCH_ted_kernel.json` at the repository root.

use bench::save_figure;
use silvervale::index_app;
use std::time::Instant;
use svcorpus::App;
use svdist::ted::{ted_with, ted_with_mode, KernelMode};
use svdist::{CostModel, DistanceMatrix, Strategy};
use svtree::Tree;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn time<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t = Instant::now();
    let r = f();
    (t.elapsed().as_secs_f64() * 1e3, r)
}

fn main() {
    const ITERS: usize = 5;
    const DUP_ITERS: usize = 9;

    let db = index_app(App::CloverLeaf, false).expect("index cloverleaf");
    let n = db.labels().len();
    let pairs = DistanceMatrix::upper_pairs(n);
    let trees: Vec<Tree> = db.entries.iter().map(|e| e.artifacts.t_sem.tree().clone()).collect();

    // -- ablation: all 45 pairs through each kernel stage ------------------
    // `ted_with_mode` skips the hash short-circuit and rebuilds the
    // decompositions per call in every mode, so the stages differ only in
    // the DP kernel itself.  Modes are interleaved round-robin within
    // each iteration so slow machine drift (thermal, co-tenants) lands on
    // every mode equally instead of biasing whichever block ran first.
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); KernelMode::ABLATION.len()];
    let mut reference: Option<Vec<u64>> = None;
    for _ in 0..ITERS {
        for (k, mode) in KernelMode::ABLATION.into_iter().enumerate() {
            let (ms, dists) = time(|| {
                pairs
                    .iter()
                    .map(|&(i, j)| {
                        ted_with_mode(&trees[i], &trees[j], CostModel::UNIT, Strategy::Auto, mode)
                    })
                    .collect::<Vec<u64>>()
            });
            samples[k].push(ms);
            match &reference {
                None => reference = Some(dists),
                Some(r) => assert_eq!(&dists, r, "{mode:?} changed a distance"),
            }
        }
    }
    let med: Vec<f64> = samples.into_iter().map(median).collect();
    let (baseline_ms, arena_ms, narrow_ms, full_ms) = (med[0], med[1], med[2], med[3]);
    for (mode, ms) in KernelMode::ABLATION.iter().zip(&med) {
        eprintln!("{:>18}: {ms:.1} ms", mode.name());
    }
    let kernel_speedup = baseline_ms / full_ms;
    assert!(
        kernel_speedup >= 2.0,
        "production kernel must be >=2x the PR 4 baseline, got {kernel_speedup:.2}x \
         ({baseline_ms:.1} ms -> {full_ms:.1} ms)"
    );

    // -- short-circuit: duplicated trees, with and without ----------------
    // Each model paired with a clone of itself: structurally hash-equal,
    // exactly the unported-unit case.  `ted_with` answers from the hashes;
    // `ted_with_mode` is forced through the full DP.
    let dups: Vec<Tree> = trees.iter().map(|t| t.clone()).collect();
    let full_dp = |mode_full: bool| {
        (0..trees.len())
            .map(|i| {
                if mode_full {
                    ted_with_mode(
                        &trees[i],
                        &dups[i],
                        CostModel::UNIT,
                        Strategy::Auto,
                        KernelMode::Full,
                    )
                } else {
                    ted_with(&trees[i], &dups[i], CostModel::UNIT, Strategy::Auto)
                }
            })
            .collect::<Vec<u64>>()
    };
    let mut t_dup_dp = Vec::new();
    let mut t_dup_sc = Vec::new();
    for _ in 0..DUP_ITERS {
        let (ms_dp, d_dp) = time(|| full_dp(true));
        let (ms_sc, d_sc) = time(|| full_dp(false));
        assert!(d_dp.iter().all(|&d| d == 0), "duplicated pairs must be distance 0");
        assert_eq!(d_dp, d_sc, "short-circuit changed a distance");
        t_dup_dp.push(ms_dp);
        t_dup_sc.push(ms_sc);
    }
    let dup_dp_ms = median(t_dup_dp);
    let dup_sc_ms = median(t_dup_sc);
    let sc_speedup = dup_dp_ms / dup_sc_ms.max(1e-6);
    assert!(
        sc_speedup >= 2.0,
        "hash short-circuit must be >=2x the full DP on duplicated trees, got {sc_speedup:.2}x"
    );

    let json = format!(
        "{{\n  \"workload\": \"CloverLeaf T_sem pairs (Fig. 8), per-pair Zhang-Shasha kernel\",\n  \
         \"models\": {n},\n  \"pairs\": {np},\n  \
         \"baseline_ms\": {baseline_ms:.3},\n  \
         \"arena_ms\": {arena_ms:.3},\n  \
         \"arena_u32_ms\": {narrow_ms:.3},\n  \
         \"arena_u32_split_ms\": {full_ms:.3},\n  \
         \"speedup_arena\": {sp_arena:.3},\n  \
         \"speedup_arena_u32\": {sp_narrow:.3},\n  \
         \"speedup_full_kernel\": {kernel_speedup:.3},\n  \
         \"dup_full_dp_ms\": {dup_dp_ms:.3},\n  \
         \"dup_short_circuit_ms\": {dup_sc_ms:.3},\n  \
         \"speedup_short_circuit\": {sc_speedup:.3},\n  \
         \"note\": \"ablation over the same 45 decompose-per-pair solves: on AST-shaped \
         trees keyroot spans average ~9 nodes, so arena reuse and u32 cells are ~neutral on \
         time (they cut allocation and halve DP memory, which is what matters at \
         memory_estimate scale) and the branch-split stage carries the speedup — hoisted \
         per-keyroot column metadata, ramp-backed borders, reassociated mins and a 4-wide \
         insert-scan unroll that shrink the loop-carried chain; the short-circuit rows pair \
         each tree with a clone of itself (the unported-unit case) — distance 0 from \
         memoised hashes, no DP\"\n}}\n",
        np = pairs.len(),
        sp_arena = baseline_ms / arena_ms,
        sp_narrow = baseline_ms / narrow_ms,
    );

    let repo_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    std::fs::write(format!("{repo_root}/BENCH_ted_kernel.json"), &json)
        .expect("write BENCH_ted_kernel");
    save_figure("BENCH_ted_kernel.json", &json);
}
