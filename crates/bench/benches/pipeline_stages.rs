//! Per-stage pipeline profile + tracing-overhead snapshot.
//!
//! Runs the indexing pipeline and the divergence matrix under `svtrace`
//! and writes `BENCH_pipeline.json`: wall-time per stage (lex, parse,
//! normalise, lower, inline, TED, matrix build) aggregated from spans,
//! plus the cost of tracing itself — matrix wall time with collection
//! disabled vs enabled, and the measured per-span price of the disabled
//! fast path (one relaxed atomic load), which bounds the overhead the
//! instrumentation adds to an untraced run.

use bench::{criterion, save_figure};
use silvervale::index_app;
use silvervale::svjson::Json;
use std::time::Instant;
use svcorpus::App;
use svmetrics::{divergence_matrix, Measured, Metric, Variant};
use svtrace::SpanRecord;

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Aggregate spans into per-stage (count, total_ms, mean_us) rows.
fn stage_rows(spans: &[SpanRecord]) -> Vec<(String, Json)> {
    let mut agg: std::collections::BTreeMap<&str, (u64, u64)> = Default::default();
    for s in spans {
        let e = agg.entry(s.name).or_default();
        e.0 += 1;
        e.1 += s.dur_ns();
    }
    agg.into_iter()
        .map(|(name, (count, total_ns))| {
            (
                name.to_string(),
                Json::obj([
                    ("count", Json::Num(count as f64)),
                    ("total_ms", Json::Num(total_ns as f64 / 1e6)),
                    ("mean_us", Json::Num(total_ns as f64 / 1e3 / count as f64)),
                ]),
            )
        })
        .collect()
}

fn main() {
    // ── Stage profile: index (unit.* spans), then matrix (matrix/ted). ──
    svtrace::reset_spans();
    svtrace::set_enabled(true);
    let db = index_app(App::TeaLeaf, false).expect("index tealeaf");
    let index_spans = svtrace::take_spans();
    svtrace::set_enabled(false);

    let labels = db.labels();
    let measured: Vec<Measured<'_>> =
        db.entries.iter().map(|e| Measured::of(&e.artifacts)).collect();
    let run = || divergence_matrix(Metric::TSem, Variant::PLAIN, &labels, &measured);

    // ── Tracing cost: matrix wall time, collection off vs on. ──
    const REPS: usize = 15;
    run(); // warm up (allocator, thread pool)
    let mut t_off: Vec<f64> = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64()
        })
        .collect();
    svtrace::set_enabled(true);
    svtrace::reset_spans();
    let mut t_on: Vec<f64> = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            run();
            t.elapsed().as_secs_f64()
        })
        .collect();
    let matrix_spans = svtrace::take_spans();
    svtrace::set_enabled(false);
    let (off, on) = (median(&mut t_off), median(&mut t_on));

    // ── Disabled fast path: price of one span when tracing is off. ──
    const SPAN_ITERS: u64 = 1_000_000;
    let t = Instant::now();
    for _ in 0..SPAN_ITERS {
        let _g = svtrace::span!("bench.noop");
    }
    let per_span_ns = t.elapsed().as_nanos() as f64 / SPAN_ITERS as f64;
    let spans_per_matrix = matrix_spans.len() as f64 / REPS as f64;
    // Upper bound on what instrumentation costs an untraced matrix run.
    let disabled_overhead_pct = per_span_ns * spans_per_matrix / (off * 1e9) * 100.0;

    let mut stages = stage_rows(&index_spans);
    stages.extend(stage_rows(&matrix_spans));
    let doc = Json::obj([
        ("app", Json::str("tealeaf")),
        ("metric", Json::str("t_sem")),
        ("reps", Json::Num(REPS as f64)),
        (
            "matrix",
            Json::obj([
                ("median_s_tracing_off", Json::Num(off)),
                ("median_s_tracing_on", Json::Num(on)),
                ("enabled_overhead_pct", Json::Num((on - off) / off * 100.0)),
                ("disabled_span_cost_ns", Json::Num(per_span_ns)),
                ("spans_per_run", Json::Num(spans_per_matrix)),
                ("disabled_overhead_pct", Json::Num(disabled_overhead_pct)),
            ]),
        ),
        ("stages", Json::Object(stages.into_iter().collect())),
    ]);
    save_figure("BENCH_pipeline.json", &doc.to_string_compact());
    assert!(
        disabled_overhead_pct < 2.0,
        "disabled tracing must stay under 2% of matrix wall time \
         ({disabled_overhead_pct:.4}% measured)"
    );

    let mut c = criterion();
    c.bench_function("pipeline/matrix_tracing_off", |b| b.iter(run));
    c.bench_function("pipeline/matrix_tracing_on", |b| {
        svtrace::set_enabled(true);
        b.iter(run);
        svtrace::set_enabled(false);
        svtrace::reset_spans();
    });
    c.final_summary();
}
