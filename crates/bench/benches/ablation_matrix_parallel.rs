//! Ablation: parallel divergence-matrix construction.
//!
//! The full 10-model cartesian TED matrix (45 pairs) is the hot path both
//! of the batch `cluster` workflow and of the `svserve` analysis service;
//! §VII names TED cost as the scaling bottleneck.  This ablation compares
//! the sequential pair loop against the `svpar::par_tasks` fan-out at
//! 1/2/4/8 worker threads, verifying bit-identical results along the way.

use bench::{criterion, save_figure};
use criterion::BenchmarkId;
use silvervale::index_app;
use std::time::Instant;
use svcorpus::App;
use svmetrics::{divergence_matrix, divergence_matrix_seq, Measured, Metric, Variant};

fn main() {
    let db = index_app(App::TeaLeaf, false).expect("index tealeaf");
    let labels = db.labels();
    let measured: Vec<Measured<'_>> =
        db.entries.iter().map(|e| Measured::of(&e.artifacts)).collect();

    let t0 = Instant::now();
    let seq = divergence_matrix_seq(Metric::TSem, Variant::PLAIN, &labels, &measured);
    let t_seq = t0.elapsed().as_secs_f64();

    let mut out =
        String::from("Divergence-matrix parallelism ablation (TeaLeaf, T_sem, 45 TED pairs)\n\n");
    out.push_str(&format!("sequential reference: {:.4} s\n\n", t_seq));
    out.push_str("threads   seconds    speedup   identical\n");

    let hw = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(1);
    for threads in [1usize, 2, 4, 8] {
        svpar::set_threads(threads);
        let t1 = Instant::now();
        let par = divergence_matrix(Metric::TSem, Variant::PLAIN, &labels, &measured);
        let t_par = t1.elapsed().as_secs_f64();
        assert_eq!(par, seq, "parallel matrix must be bit-identical to sequential");
        let note = if threads > hw { " (oversubscribed)" } else { "" };
        out.push_str(&format!("{threads:>7} {t_par:>10.4} {:>9.2}x   yes{note}\n", t_seq / t_par));
    }
    svpar::set_threads(0);
    save_figure("ablation_matrix_parallel.txt", &out);

    let mut c = criterion();
    c.bench_function("matrix/sequential", |b| {
        b.iter(|| divergence_matrix_seq(Metric::TSem, Variant::PLAIN, &labels, &measured))
    });
    let mut group = c.benchmark_group("matrix/par_tasks");
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            svpar::set_threads(t);
            b.iter(|| divergence_matrix(Metric::TSem, Variant::PLAIN, &labels, &measured));
        });
    }
    group.finish();
    svpar::set_threads(0);
    c.final_summary();
}
