//! Table II — mini-app × model inventory, regenerated from the corpus.

use bench::{criterion, save_figure};
use svcorpus::{fortran_unit, unit, App, FortranModel, Model};

fn generate() -> String {
    let mut s = String::from("Table II — corpus inventory\n");
    s.push_str("mini-app      type             models\n");
    let kinds = [
        (App::BabelStream, "Memory BW"),
        (App::MiniBude, "Compute"),
        (App::TeaLeaf, "Structured grid"),
        (App::CloverLeaf, "Memory BW"),
    ];
    for (app, ty) in kinds {
        let models: Vec<&str> = Model::ALL.iter().map(|m| m.name()).collect();
        s.push_str(&format!("{:<13} {:<16} {}\n", app.name(), ty, models.join(", ")));
    }
    let f: Vec<&str> = FortranModel::ALL.iter().map(|m| m.name()).collect();
    s.push_str(&format!("{:<13} {:<16} {}\n", "babelstream", "Fortran", f.join(", ")));
    s.push_str("\nper-model artefact sizes (BabelStream):\n");
    s.push_str("model            sloc  lloc  |t_src| |t_sem| |t_ir|\n");
    for m in Model::ALL {
        let u = unit(App::BabelStream, m).unwrap();
        let ir = svir_size(&u);
        s.push_str(&format!(
            "{:<16} {:>5} {:>5} {:>7} {:>7} {:>6}\n",
            m.name(),
            u.sloc_pre,
            u.lloc_pre,
            u.t_src.size(),
            u.t_sem.size(),
            ir
        ));
    }
    s
}

fn svir_size(u: &svlang::unit::Unit) -> usize {
    svmetrics::Artifacts::from_unit(u).t_ir.size()
}

fn main() {
    save_figure("table2_corpus.txt", &generate());
    let mut c = criterion();
    c.bench_function("table2/compile_one_unit", |b| {
        b.iter(|| unit(App::BabelStream, Model::SyclAcc).unwrap())
    });
    c.bench_function("table2/compile_fortran_unit", |b| {
        b.iter(|| fortran_unit(FortranModel::OpenMp).unwrap())
    });
    c.final_summary();
}
