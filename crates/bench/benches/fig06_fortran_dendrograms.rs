//! Fig. 6 — BabelStream Fortran dendrograms per metric.

use bench::{criterion, save_figure};
use silvervale::{index_fortran, model_dendrogram};
use svmetrics::{Metric, Variant};

fn main() {
    let db = index_fortran().unwrap();
    let mut out = String::from("Fig. 6 — BabelStream Fortran model clustering per metric\n\n");
    for metric in
        [Metric::Lloc, Metric::Sloc, Metric::Source, Metric::TSrc, Metric::TSem, Metric::TIr]
    {
        let d = model_dendrogram(&db, metric, Variant::PLAIN);
        out.push_str(&format!("--- {} ---\n{}\n", metric.name(), d.render()));
    }
    save_figure("fig06_fortran_dendrograms.txt", &out);

    let mut c = criterion();
    c.bench_function("fig06/fortran_index", |b| b.iter(|| index_fortran().unwrap()));
    c.final_summary();
}
