//! Wire-protocol throughput: binary framing vs the JSON compat listener.
//!
//! One server, both listeners, one `tree` blob handler serving a
//! synthetic svpack v2 tree out of the mmap'd artifact store.  Each
//! cycle is a full client lifetime — connect, fetch the tree, close —
//! measured raw on each wire (no retry/negotiation machinery), so the
//! figure isolates what the framing itself costs: the JSON path hex-
//! encodes the payload and re-parses it as a string; the binary path
//! carries the svpack bytes verbatim.
//!
//! Writes `BENCH_serve.json` and asserts at run time that the binary
//! path sustains at least 2x the JSON path's connection rate — the gate
//! CI re-checks against the committed figure.

use bench::save_figure;
use silvervale::svjson::Json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;
use svdist::SharedTree;
use svserve::binproto::{self, BinFrameReader, BinRead};
use svserve::proto::{parse_response, Request};
use svserve::{serve_with, ArtifactStore, Router, ServeConfig};
use svtree::Tree;

/// Synthetic comparison tree: ~20k nodes (a large unit's t_sem), deep
/// and label-diverse enough that svpack's columnar encoding does real
/// work.  Sized so the hex-folded JSON response stays under MAX_FRAME.
fn synthetic_tree() -> Tree {
    fn level(depth: u32, fan: usize, salt: u64) -> Tree {
        let names = ["fn", "for", "if", "call", "block", "assign", "index", "binop"];
        let name = names[(salt as usize) % names.len()];
        if depth == 0 {
            return Tree::leaf(format!("{name}{}", salt % 97));
        }
        let children =
            (0..fan).map(|i| level(depth - 1, fan, salt.wrapping_mul(31).wrapping_add(i as u64)));
        Tree::node(name, children.collect())
    }
    // 6 levels of fan-out 5 → (5^7 - 1) / 4 ≈ 19.5k nodes.
    level(6, 5, 7)
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

/// One JSON-wire cycle: connect, fetch the tree, decode the hex fold.
fn json_cycle(addr: std::net::SocketAddr, expect: &[u8]) {
    let mut stream = TcpStream::connect(addr).expect("connect json");
    stream.write_all(b"{\"id\":1,\"method\":\"tree\",\"params\":null}\n").expect("send");
    let mut line = String::new();
    BufReader::new(&stream).read_line(&mut line).expect("recv");
    let (_, res) = parse_response(&line).expect("parse");
    let result = res.expect("ok response");
    let hex = result.get("svpack_hex").and_then(Json::as_str).expect("hex fold");
    let bytes = binproto::hex_decode(hex).expect("hex payload");
    assert_eq!(bytes, expect, "json wire returns the same svpack bytes");
}

/// One binary-wire cycle: connect, fetch the tree, take the blob verbatim.
fn bin_cycle(addr: std::net::SocketAddr, expect: &[u8]) {
    let stream = TcpStream::connect(addr).expect("connect bin");
    let req = Request { id: 1, method: "tree".into(), params: Json::Null, trace: None };
    (&stream).write_all(&binproto::encode_request(&req, &[])).expect("send");
    let mut reader = BinFrameReader::new(&stream);
    let BinRead::Frame(payload) = reader.read_frame().expect("recv") else {
        panic!("expected a response frame");
    };
    let (_, res) = binproto::decode_response(&payload).expect("decode");
    let (_, blobs) = res.expect("ok response");
    assert_eq!(blobs[0], expect, "binary wire returns the svpack bytes verbatim");
}

fn run(n: usize, mut cycle: impl FnMut()) -> (f64, f64, f64) {
    let mut lat_us: Vec<f64> = Vec::with_capacity(n);
    let t = Instant::now();
    for _ in 0..n {
        let c = Instant::now();
        cycle();
        lat_us.push(c.elapsed().as_secs_f64() * 1e6);
    }
    let total = t.elapsed().as_secs_f64();
    lat_us.sort_by(f64::total_cmp);
    (n as f64 / total, percentile(&lat_us, 0.5), percentile(&lat_us, 0.99))
}

fn main() {
    let store = Arc::new(ArtifactStore::temp().expect("temp store"));
    let tree = SharedTree::new(synthetic_tree());
    let nodes = tree.size();
    let hash = store.append_tree(&tree).expect("append");
    let payload = store.raw(hash).expect("stored payload");
    assert!(
        payload.len() * 2 + 4096 < svserve::MAX_FRAME,
        "hex fold must fit the JSON frame ({} bytes raw)",
        payload.len()
    );

    let mut router = Router::new();
    let handler_store = Arc::clone(&store);
    router.register_blob("tree", move |_| {
        let bytes = handler_store
            .raw(hash)
            .ok_or_else(|| svserve::ServeError::internal("store lost the bench record"))?;
        Ok((Json::obj([("nodes", Json::Num(0.0))]), bytes))
    });
    let handle =
        serve_with("127.0.0.1:0", router, ServeConfig { workers: 2, ..ServeConfig::default() })
            .expect("bind bench server");
    let json_addr = handle.addr();
    let bin_addr = handle.bin_addr().expect("binary listener");

    const WARMUP: usize = 20;
    const CYCLES: usize = 200;
    for _ in 0..WARMUP {
        json_cycle(json_addr, &payload);
        bin_cycle(bin_addr, &payload);
    }
    let (json_cps, json_p50, json_p99) = run(CYCLES, || json_cycle(json_addr, &payload));
    let (bin_cps, bin_p50, bin_p99) = run(CYCLES, || bin_cycle(bin_addr, &payload));
    handle.shutdown();

    let speedup = bin_cps / json_cps;
    // One field per line, like the other committed figures — CI's awk
    // gate greps the conn_speedup line by name.
    let json = format!(
        "{{\n  \"cycles\": {CYCLES},\n  \
         \"tree_nodes\": {nodes},\n  \
         \"svpack_bytes\": {},\n  \
         \"json_conn_per_sec\": {json_cps:.2},\n  \
         \"json_p50_us\": {json_p50:.2},\n  \"json_p99_us\": {json_p99:.2},\n  \
         \"bin_conn_per_sec\": {bin_cps:.2},\n  \
         \"bin_p50_us\": {bin_p50:.2},\n  \"bin_p99_us\": {bin_p99:.2},\n  \
         \"conn_speedup\": {speedup:.2},\n  \
         \"note\": \"full connect-fetch-close cycles against one dual-listener \
         server serving the same svpack payload from the artifact store; the JSON \
         wire pays hex-fold plus re-parse, the binary wire carries the bytes \
         verbatim\"\n}}\n",
        payload.len()
    );
    let repo_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    std::fs::write(format!("{repo_root}/BENCH_serve.json"), &json).expect("write BENCH_serve");
    save_figure("BENCH_serve.json", &json);
    assert!(
        speedup >= 2.0,
        "binary wire must sustain >=2x the JSON connection rate \
         ({bin_cps:.0} vs {json_cps:.0} conn/s = {speedup:.2}x)"
    );
}
