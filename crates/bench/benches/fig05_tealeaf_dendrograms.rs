//! Fig. 5 — TeaLeaf dendrograms under LLOC, SLOC, Source, T_src, T_sem, T_ir.

use bench::{criterion, save_figure};
use silvervale::{index_app, model_dendrogram};
use svcorpus::App;
use svmetrics::{Metric, Variant};

fn main() {
    let db = index_app(App::TeaLeaf, false).unwrap();
    let mut out = String::from("Fig. 5 — TeaLeaf model clustering per metric\n\n");
    for metric in
        [Metric::Lloc, Metric::Sloc, Metric::Source, Metric::TSrc, Metric::TSem, Metric::TIr]
    {
        let d = model_dendrogram(&db, metric, Variant::PLAIN);
        out.push_str(&format!("--- {} ---\n{}\n", metric.name(), d.render()));
    }
    save_figure("fig05_tealeaf_dendrograms.txt", &out);

    let mut c = criterion();
    c.bench_function("fig05/all_metric_dendrograms", |b| {
        b.iter(|| {
            for metric in [Metric::Sloc, Metric::Source, Metric::TSrc] {
                let _ = model_dendrogram(&db, metric, Variant::PLAIN);
            }
        })
    });
    c.final_summary();
}
