//! Figs. 9 & 10 — TeaLeaf offload-model divergence from Serial vs from CUDA.

use bench::{criterion, save_figure};
use silvervale::{divergence_from, index_app};
use svcorpus::{App, Model};
use svmetrics::{Metric, Variant};

fn main() {
    let db = index_app(App::TeaLeaf, false).unwrap();
    let metrics = [Metric::Source, Metric::TSrc, Metric::TSem, Metric::TIr];
    let targets: Vec<&str> =
        Model::ALL.iter().filter(|m| m.is_offload()).map(|m| m.name()).collect();
    let mut out = String::new();
    let mut csv = String::from("base,model,Source,T_src,T_sem,T_ir\n");
    for (fig, base) in [("Fig. 9", "Serial"), ("Fig. 10", "CUDA")] {
        out.push_str(&format!("{fig} — divergence of TeaLeaf offload models from {base}\n"));
        out.push_str(&format!("{:<16}", "model"));
        for m in metrics {
            out.push_str(&format!(" {:>8}", m.name()));
        }
        out.push('\n');
        for t in &targets {
            out.push_str(&format!("{t:<16}"));
            csv.push_str(&format!("{base},{t}"));
            for metric in metrics {
                let divs = divergence_from(&db, metric, Variant::PLAIN, base).unwrap();
                let d = divs.iter().find(|(l, _)| l == t).unwrap().1;
                out.push_str(&format!(" {d:>8.3}"));
                csv.push_str(&format!(",{d:.6}"));
            }
            out.push('\n');
            csv.push('\n');
        }
        out.push('\n');
    }
    save_figure("fig09_fig10_migration.txt", &out);
    save_figure("fig09_fig10_migration.csv", &csv);

    let mut c = criterion();
    c.bench_function("fig09_10/divergence_from_cuda", |b| {
        b.iter(|| divergence_from(&db, Metric::TSem, Variant::PLAIN, "CUDA").unwrap())
    });
    c.final_summary();
}
