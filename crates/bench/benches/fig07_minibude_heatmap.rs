//! Fig. 7 — miniBUDE: divergence from serial per metric × variant, 0..1.

use bench::{criterion, save_figure};
use silvervale::{divergence_from, index_app};
use svcorpus::App;
use svmetrics::{Metric, Variant};

pub fn heatmap_for(app: App, title: &str) -> String {
    let db = index_app(app, true).unwrap();
    let rows: Vec<(String, Metric, Variant)> = vec![
        ("SLOC".into(), Metric::Sloc, Variant::PLAIN),
        ("SLOC+pp".into(), Metric::Sloc, Variant::PP),
        ("SLOC+cov".into(), Metric::Sloc, Variant::COVERAGE),
        ("LLOC".into(), Metric::Lloc, Variant::PLAIN),
        ("LLOC+pp".into(), Metric::Lloc, Variant::PP),
        ("Source".into(), Metric::Source, Variant::PLAIN),
        ("Source+pp".into(), Metric::Source, Variant::PP),
        ("Source+cov".into(), Metric::Source, Variant::COVERAGE),
        ("T_src".into(), Metric::TSrc, Variant::PLAIN),
        ("T_src+pp".into(), Metric::TSrc, Variant::PP),
        ("T_src+cov".into(), Metric::TSrc, Variant::COVERAGE),
        ("T_sem".into(), Metric::TSem, Variant::PLAIN),
        ("T_sem+i".into(), Metric::TSem, Variant::INLINED),
        ("T_sem+cov".into(), Metric::TSem, Variant::COVERAGE),
        ("T_ir".into(), Metric::TIr, Variant::PLAIN),
        ("T_ir+cov".into(), Metric::TIr, Variant::COVERAGE),
    ];
    let labels = db.labels();
    let mut out = format!("{title}\n{:<12}", "metric");
    for l in &labels {
        out.push_str(&format!(" {:>7.7}", l));
    }
    out.push('\n');
    const SHADES: [char; 5] = [' ', '░', '▒', '▓', '█'];
    let mut csv = format!("metric,{}\n", labels.join(","));
    for (name, metric, variant) in rows {
        let divs = divergence_from(&db, metric, variant, "Serial").unwrap();
        out.push_str(&format!("{name:<12}"));
        csv.push_str(&name);
        for (_, d) in &divs {
            let clamped = d.min(1.0);
            let idx = ((clamped * (SHADES.len() - 1) as f64).round() as usize).min(4);
            out.push_str(&format!(" {:>5.2} {}", clamped, SHADES[idx]));
            csv.push_str(&format!(",{d:.6}"));
        }
        out.push('\n');
        csv.push('\n');
    }
    save_figure(&format!("{}_heatmap.csv", app.name()), &csv);
    out
}

fn main() {
    let out = heatmap_for(App::MiniBude, "Fig. 7 — miniBUDE divergence from serial (0..1)");
    save_figure("fig07_minibude_heatmap.txt", &out);

    let db = index_app(App::MiniBude, false).unwrap();
    let mut c = criterion();
    c.bench_function("fig07/divergence_from_serial_tsem", |b| {
        b.iter(|| divergence_from(&db, Metric::TSem, Variant::PLAIN, "Serial").unwrap())
    });
    c.final_summary();
}
