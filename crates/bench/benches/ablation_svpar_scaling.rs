//! Ablation: the svpar data-parallel runtime — kernel correctness of the
//! host calibration path and thread scaling of the STREAM triad.

use bench::{criterion, save_figure};
use criterion::BenchmarkId;
use svperf::host::{measure_host, triad_scaling};

fn main() {
    let n = 1 << 22; // 4M doubles/array: beyond LLC, bandwidth-bound
    let ms = measure_host(n, 5);
    let mut out = String::from("Host calibration (svpar kernels)\n");
    out.push_str("kernel     GB/s     GFLOP/s   seconds\n");
    for m in &ms {
        out.push_str(&format!(
            "{:<9} {:>8.2} {:>9.3} {:>10.6}\n",
            m.kernel, m.bandwidth_gbs, m.gflops, m.seconds
        ));
    }
    let max_threads = std::thread::available_parallelism().map(|v| v.get()).unwrap_or(4);
    let mut counts = vec![1usize];
    let mut t = 2;
    while t <= max_threads {
        counts.push(t);
        t *= 2;
    }
    out.push_str("\nTriad scaling\nthreads  seconds    speedup\n");
    let scaling = triad_scaling(n, &counts);
    let t1 = scaling[0].1;
    for (threads, secs) in &scaling {
        out.push_str(&format!("{threads:>7} {secs:>10.6} {:>8.2}x\n", t1 / secs));
    }
    save_figure("ablation_svpar_scaling.txt", &out);

    let b: Vec<f64> = (0..n).map(|i| 0.5 + (i % 7) as f64).collect();
    let cvec: Vec<f64> = (0..n).map(|i| 0.25 + (i % 5) as f64).collect();
    let mut c = criterion();
    let mut group = c.benchmark_group("svpar_triad");
    let mut bench_counts = vec![1usize];
    if max_threads > 1 {
        bench_counts.push(max_threads);
    }
    for threads in bench_counts {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bch, &t| {
            svpar::set_threads(t);
            let mut a = vec![0.0f64; n];
            bch.iter(|| svpar::kernels::triad(&mut a, &b, &cvec, 0.4));
        });
    }
    group.finish();
    svpar::set_threads(0);
    c.final_summary();
}
