//! Figs. 11 & 12 — TeaLeaf and CloverLeaf cascade plots over Table III.

use bench::{criterion, save_figure};
use svcorpus::App;
use svperf::cascade;

fn main() {
    for (fig, app) in [("fig11", App::TeaLeaf), ("fig12", App::CloverLeaf)] {
        let c = cascade(app);
        save_figure(&format!("{fig}_{}_cascade.txt", app.name()), &c.render());
        save_figure(&format!("{fig}_{}_cascade.csv", app.name()), &c.to_csv());
    }
    let mut c = criterion();
    c.bench_function("fig11_12/cascade_build", |b| b.iter(|| cascade(App::TeaLeaf)));
    c.final_summary();
}
