//! Fig. 15 — the vendor-diversification navigation-chart scenario.

use bench::{criterion, save_figure};
use silvervale::{index_app, navigation_chart};
use svcorpus::App;
use svperf::migration_scenario;

fn main() {
    let app = App::TeaLeaf;
    let scenario = migration_scenario(app);
    let mut out =
        String::from("Fig. 15 — picking the right model, starting from an unportable one\n\n");
    for (desc, platforms, phi) in &scenario.stages {
        out.push_str(&format!("{desc}\n  platforms: {platforms:?}\n  Φ(CUDA) = {phi:.3}\n\n"));
    }
    let db = index_app(app, false).unwrap();
    let chart = navigation_chart(app, &db).unwrap();
    out.push_str("Candidate targets (ranked by Φ × resemblance-to-serial):\n");
    for (i, (model, score)) in chart.ranked().iter().take(5).enumerate() {
        out.push_str(&format!("  {}. {:<14} score {:.3}\n", i + 1, model.name(), score));
    }
    out.push('\n');
    out.push_str(&chart.render());
    save_figure("fig15_migration_scenario.txt", &out);

    let mut c = criterion();
    c.bench_function("fig15/scenario", |b| b.iter(|| migration_scenario(App::TeaLeaf)));
    c.final_summary();
}
