//! Fig. 8 — CloverLeaf: divergence from serial per metric × variant, 0..1.

use bench::{criterion, save_figure};
use silvervale::{divergence_from, index_app};
use svcorpus::App;
use svmetrics::{Metric, Variant};

// Reuses fig07's renderer; its `main` is unused when included as a module.
#[allow(dead_code)]
#[path = "fig07_minibude_heatmap.rs"]
mod fig07;

fn main() {
    let out =
        fig07::heatmap_for(App::CloverLeaf, "Fig. 8 — CloverLeaf divergence from serial (0..1)");
    save_figure("fig08_cloverleaf_heatmap.txt", &out);

    let db = index_app(App::CloverLeaf, false).unwrap();
    let mut c = criterion();
    c.bench_function("fig08/divergence_from_serial_tir", |b| {
        b.iter(|| divergence_from(&db, Metric::TIr, Variant::PLAIN, "Serial").unwrap())
    });
    c.final_summary();
}
