//! Approximate-first corpus matrix: lower-bound prefilter + threshold
//! kernel vs the exact cold path (§VII corpus scale).
//!
//! The exact divergence matrix runs one Zhang–Shasha DP per distinct
//! tree pair — quadratic in units, quartic-ish in tree size — which caps
//! corpora at tens of units.  The approximate engine
//! (`svmetrics::approx_tree_matrix`) buckets hash-equal units, answers
//! far pairs from admissible pq-gram lower bounds and only runs the
//! banded threshold kernel on pairs near the resolution frontier.
//!
//! Workload: a seeded synthetic corpus of 1000 units drawn from 80 base
//! trees (40–80 nodes each, family-specific + shared label palettes);
//! each family contributes its base plus five small relabel mutants,
//! repeated — exactly the duplicate-heavy, cluster-structured shape of a
//! real many-port codebase DB.  Gates:
//!
//! * cold approx build must be ≥5× the cold exact build,
//! * every approx cell is ≤ the exact cell (admissible, never over),
//! * approx cells at or below the frontier equal the exact cells bitwise,
//! * with approx off, `model_matrix` reproduces the sequential oracle
//!   bit-identically on the PR 5 Fig. 8 workload (CloverLeaf `T_sem`).
//!
//! Timings and prefilter accounting land in `BENCH_approx.json`.

use bench::save_figure;
use silvervale::{index_app, model_matrix};
use std::time::Instant;
use svcorpus::App;
use svdist::{ted_shared, CostModel, DistanceMatrix, SharedTree, Strategy};
use svmetrics::{approx_tree_matrix, divergence_matrix_seq, Measured, Metric, Variant};
use svtree::Tree;

fn time<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t = Instant::now();
    let r = f();
    (t.elapsed().as_secs_f64() * 1e3, r)
}

/// splitmix64: the corpus is a pure function of the seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A mutable flat tree: labels index into the family palette, children
/// are node ids.  Mutants relabel a few nodes and re-render.
#[derive(Clone)]
struct SynTree {
    label: Vec<usize>,
    children: Vec<Vec<usize>>,
}

impl SynTree {
    /// Random ordered tree of `size` nodes: each new node attaches to a
    /// recently-added parent (biased, so depth grows like a real AST).
    fn random(rng: &mut Rng, size: usize, palette_len: usize) -> SynTree {
        let mut t = SynTree { label: vec![rng.below(palette_len)], children: vec![Vec::new()] };
        for id in 1..size {
            let lo = id.saturating_sub(8);
            let parent = lo + rng.below(id - lo);
            t.label.push(rng.below(palette_len));
            t.children.push(Vec::new());
            t.children[parent].push(id);
        }
        t
    }

    /// Relabel `edits` random nodes to a different palette entry.
    fn mutated(&self, rng: &mut Rng, edits: usize, palette_len: usize) -> SynTree {
        let mut t = self.clone();
        for _ in 0..edits {
            let node = rng.below(t.label.len());
            let mut l = rng.below(palette_len);
            if l == t.label[node] {
                l = (l + 1) % palette_len;
            }
            t.label[node] = l;
        }
        t
    }

    fn to_sexpr(&self, palette: &[String]) -> String {
        fn rec(t: &SynTree, id: usize, palette: &[String], out: &mut String) {
            let kids = &t.children[id];
            if kids.is_empty() {
                out.push_str(&palette[t.label[id]]);
                return;
            }
            out.push('(');
            out.push_str(&palette[t.label[id]]);
            for &k in kids {
                out.push(' ');
                rec(t, k, palette, out);
            }
            out.push(')');
        }
        let mut s = String::new();
        rec(self, 0, palette, &mut s);
        s
    }
}

const FAMILIES: usize = 80;
const UNITS: usize = 1000;
const VARIANTS: usize = 6; // base + 5 relabel mutants per family

/// Build the corpus as rendered s-expressions: unit `u` is variant
/// `(u / FAMILIES) % VARIANTS` of family `u % FAMILIES`, so every
/// distinct tree recurs ~2× (exercising the bucketing stage) and every
/// family keeps ≥ VARIANTS−1 near neighbours (keeping the frontier at
/// in-family scale).
fn corpus() -> Vec<String> {
    let shared: Vec<String> =
        ["seq", "add", "mul", "cmp", "ld", "st", "br", "phi"].map(str::to_string).into();
    let mut rng = Rng(0x5eed_a99c_0ffe_e001);
    let mut rendered: Vec<Vec<String>> = Vec::with_capacity(FAMILIES);
    for f in 0..FAMILIES {
        // Family-dominant palette: cross-family label histograms barely
        // overlap, so their lower bounds are large and prunable.
        let mut palette = shared.clone();
        for s in 0..12 {
            palette.push(format!("f{f}x{s}"));
        }
        let size = 40 + rng.below(41);
        let base = SynTree::random(&mut rng, size, palette.len());
        let mut family = vec![base.to_sexpr(&palette)];
        for _ in 1..VARIANTS {
            let edits = 1 + rng.below(3);
            family.push(base.mutated(&mut rng, edits, palette.len()).to_sexpr(&palette));
        }
        rendered.push(family);
    }
    (0..UNITS).map(|u| rendered[u % FAMILIES][(u / FAMILIES) % VARIANTS].clone()).collect()
}

/// The exact cold path over pre-extracted trees: one `ted_shared` per
/// pair in LPT order with the structural-hash short-circuit — the same
/// per-cell work as `divergence_matrix` on a tree metric.
fn exact_matrix(labels: &[String], trees: &[SharedTree]) -> DistanceMatrix {
    DistanceMatrix::from_fn_par_lpt(
        labels.to_vec(),
        |i, j| {
            if trees[i].size() == trees[j].size()
                && trees[i].structural_hash() == trees[j].structural_hash()
            {
                0
            } else {
                (trees[i].size() as u64).saturating_mul(trees[j].size() as u64)
            }
        },
        |i, j| {
            let d = ted_shared(&trees[i], &trees[j], CostModel::UNIT, Strategy::Auto);
            d as f64 / trees[i].size().max(trees[j].size()).max(1) as f64
        },
    )
}

fn main() {
    // -- exact fallback stays bit-identical (approx off) ------------------
    let db = index_app(App::CloverLeaf, false).expect("index cloverleaf");
    let measured: Vec<Measured<'_>> =
        db.entries.iter().map(|e| Measured::of(&e.artifacts)).collect();
    let fig8 = model_matrix(&db, Metric::TSem, Variant::PLAIN);
    let fig8_seq = divergence_matrix_seq(Metric::TSem, Variant::PLAIN, &db.labels(), &measured);
    assert_eq!(fig8, fig8_seq, "approx-off matrix must reproduce the sequential oracle exactly");

    // -- synthetic 1k-unit corpus -----------------------------------------
    let sexprs = corpus();
    let labels: Vec<String> = (0..UNITS).map(|u| format!("u{u:04}")).collect();
    let parse = |s: &String| SharedTree::new(Tree::from_sexpr(s).expect("corpus sexpr"));

    // Approx first: every memo (hashes, profiles, decompositions, scratch
    // arenas) is cold.  The exact run gets fresh SharedTrees but inherits
    // warm thread-local arenas — a handicap for the speedup gate, not a
    // boost.
    let approx_trees: Vec<SharedTree> = sexprs.iter().map(parse).collect();
    let (approx_ms, (approx, stats)) = time(|| approx_tree_matrix(&labels, &approx_trees));

    let exact_trees: Vec<SharedTree> = sexprs.iter().map(parse).collect();
    let (exact_ms, exact) = time(|| exact_matrix(&labels, &exact_trees));

    // Accounting: every pair is answered exactly once, somewhere.
    let n_pairs = (UNITS * (UNITS - 1) / 2) as u64;
    assert_eq!(stats.pairs, n_pairs);
    assert_eq!(
        stats.bucketed + stats.lb_pruned + stats.cutoff + stats.exact_solves,
        n_pairs,
        "every pair must be bucketed, pruned, cut off or solved"
    );

    // Admissibility + frontier exactness, cell by cell.
    let mut in_frontier = 0u64;
    for (i, j) in DistanceMatrix::upper_pairs(UNITS) {
        let (a, e) = (approx.get(i, j), exact.get(i, j));
        assert!(a <= e + 1e-12, "approx cell ({i},{j}) = {a} over-estimates exact {e}");
        if a <= stats.frontier {
            assert_eq!(a, e, "in-frontier cell ({i},{j}) must be exact");
            in_frontier += 1;
        }
    }

    let speedup = exact_ms / approx_ms.max(1e-6);
    let prefilter_rate = (stats.bucketed + stats.lb_pruned) as f64 / n_pairs as f64;
    eprintln!(
        "exact {exact_ms:.0} ms, approx {approx_ms:.0} ms ({speedup:.1}x); \
         {} bucketed, {} lb-pruned, {} cutoff, {} exact solves, frontier {:.4}",
        stats.bucketed, stats.lb_pruned, stats.cutoff, stats.exact_solves, stats.frontier
    );
    assert!(
        speedup >= 5.0,
        "approx engine must be >=5x the cold exact matrix, got {speedup:.2}x \
         ({exact_ms:.0} ms -> {approx_ms:.0} ms)"
    );

    let json = format!(
        "{{\n  \"workload\": \"synthetic corpus: {UNITS} units, {FAMILIES} families x \
         {VARIANTS} variants, 40-80 node trees\",\n  \
         \"units\": {UNITS},\n  \"pairs\": {n_pairs},\n  \
         \"exact_cold_ms\": {exact_ms:.3},\n  \
         \"approx_cold_ms\": {approx_ms:.3},\n  \
         \"speedup\": {speedup:.3},\n  \
         \"bucketed\": {},\n  \"lb_pruned\": {},\n  \"cutoff\": {},\n  \
         \"exact_solves\": {},\n  \
         \"prefilter_hit_rate\": {prefilter_rate:.4},\n  \
         \"frontier\": {:.6},\n  \"cells_in_frontier\": {in_frontier},\n  \
         \"note\": \"approx runs first (all memos cold); every approx cell is an \
         admissible lower bound on the exact normalised divergence and cells at or \
         below the frontier are bitwise-exact, so linkage decisions near the merge \
         order see exact distances; the Fig. 8 CloverLeaf matrix with approx off is \
         asserted bit-identical to the sequential oracle before timing\"\n}}\n",
        stats.bucketed, stats.lb_pruned, stats.cutoff, stats.exact_solves, stats.frontier
    );

    let repo_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    std::fs::write(format!("{repo_root}/BENCH_approx.json"), &json).expect("write BENCH_approx");
    save_figure("BENCH_approx.json", &json);
}
