//! Matrix-build cost under the shared artifact layer (Fig. 8 workload).
//!
//! The Fig. 8 CloverLeaf heatmap needs the full 10-model `T_sem`
//! divergence matrix — the §VII scaling bottleneck.  This bench measures
//! four matrix-build modes over the same stored artefacts and writes the
//! medians to `BENCH_matrix.json` at the repository root:
//!
//! * `cold_decompose_per_pair` — the pre-artifact-layer baseline: every
//!   pair rebuilds both LR-keyroot decompositions before its TED.
//! * `cold_decompose_once` — fresh `SharedTree`s each build: within one
//!   matrix the decompositions are built once per tree (O(n), not O(n²))
//!   and reused across its pairs.
//! * `warm_artifact_reuse` — the Codebase-DB steady state: stored
//!   artefacts keep their memoised views, so rebuilding the matrix skips
//!   all decomposition work (the TED dynamic programs still run).
//! * `warm_cached_service` — the `svserve` steady state: memoised
//!   structural hashes key a content-addressed `TedCache`, so a repeated
//!   matrix build is pure cache lookups — no hashing, no decomposition,
//!   no DP.
//!
//! All four modes must produce bit-identical matrices; the headline
//! speedup compares warm service builds against the per-pair baseline.

use bench::save_figure;
use silvervale::index_app;
use std::sync::atomic::AtomicU64;
use std::time::Instant;
use svcorpus::App;
use svdist::{ted, ted_shared, CostModel, DistanceMatrix, SharedTree, Strategy};
use svmetrics::{Measured, Metric, Variant};
use svserve::cached::{matrix_cell, pair_cached, FpArtifact};
use svserve::TedCache;
use svtree::Tree;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn time<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t = Instant::now();
    let r = f();
    (t.elapsed().as_secs_f64() * 1e3, r)
}

fn cell(d: u64, wa: u64, wb: u64) -> f64 {
    d as f64 / wa.max(wb).max(1) as f64
}

fn main() {
    const COLD_ITERS: usize = 5;
    const WARM_ITERS: usize = 9;

    let db = index_app(App::CloverLeaf, false).expect("index cloverleaf");
    let labels = db.labels();
    let n = labels.len();
    assert!(n >= 6, "Fig. 8 workload needs at least 6 models, got {n}");
    let measured: Vec<Measured<'_>> =
        db.entries.iter().map(|e| Measured::of(&e.artifacts)).collect();
    // Detached plain trees: the decompose-per-pair baseline must not touch
    // any memoised state.
    let trees: Vec<Tree> = db.entries.iter().map(|e| e.artifacts.t_sem.tree().clone()).collect();

    // -- cold, decompose per pair, PR 4 kernel (the old old hot path) -----
    // Measured live (not hard-coded from the old JSON) so the ≥2× kernel
    // gate is robust to the machine the bench runs on.
    let mut t_baseline_kernel = Vec::new();
    let mut reference: Option<DistanceMatrix> = None;
    for _ in 0..COLD_ITERS {
        let (ms, m) = time(|| {
            DistanceMatrix::from_fn(labels.clone(), |i, j| {
                let d = svdist::ted::ted_with_mode(
                    &trees[i],
                    &trees[j],
                    CostModel::UNIT,
                    Strategy::Auto,
                    svdist::ted::KernelMode::Baseline,
                );
                cell(d, trees[i].size() as u64, trees[j].size() as u64)
            })
        });
        t_baseline_kernel.push(ms);
        reference.get_or_insert(m);
    }
    let reference = reference.unwrap();

    // -- cold, decompose per pair (current kernel) -------------------------
    let mut t_per_pair = Vec::new();
    for _ in 0..COLD_ITERS {
        let (ms, m) = time(|| {
            DistanceMatrix::from_fn(labels.clone(), |i, j| {
                let d = ted(&trees[i], &trees[j]);
                cell(d, trees[i].size() as u64, trees[j].size() as u64)
            })
        });
        t_per_pair.push(ms);
        assert_eq!(m, reference, "kernel overhaul changed a matrix cell");
    }

    // -- cold, decompose once per tree ------------------------------------
    let mut t_once = Vec::new();
    for _ in 0..COLD_ITERS {
        let shared: Vec<SharedTree> = trees.iter().map(|t| SharedTree::new(t.clone())).collect();
        let (ms, m) = time(|| {
            DistanceMatrix::from_fn(labels.clone(), |i, j| {
                let d = ted_shared(&shared[i], &shared[j], CostModel::UNIT, Strategy::Auto);
                cell(d, shared[i].size() as u64, shared[j].size() as u64)
            })
        });
        t_once.push(ms);
        assert_eq!(m, reference, "decompose-once matrix must be bit-identical");
    }

    // -- warm, stored artefacts (Codebase-DB steady state) -----------------
    let warmup = svmetrics::divergence_matrix_seq(Metric::TSem, Variant::PLAIN, &labels, &measured);
    assert_eq!(warmup, reference);
    let mut t_warm = Vec::new();
    for _ in 0..WARM_ITERS {
        let (ms, m) = time(|| {
            svmetrics::divergence_matrix_seq(Metric::TSem, Variant::PLAIN, &labels, &measured)
        });
        t_warm.push(ms);
        assert_eq!(m, reference);
    }

    // -- warm, cached service (svserve steady state) -----------------------
    let cache = TedCache::new(1 << 22);
    let computes = AtomicU64::new(0);
    let build_cached = |computes: &AtomicU64| {
        let arts: Vec<FpArtifact> =
            measured.iter().map(|m| FpArtifact::of(m, Metric::TSem, Variant::PLAIN)).collect();
        DistanceMatrix::from_fn(labels.clone(), |i, j| {
            let p = pair_cached(&cache, Metric::TSem, Variant::PLAIN, &arts[i], &arts[j], computes);
            matrix_cell(Metric::TSem, &p)
        })
    };
    assert_eq!(build_cached(&computes), reference, "cached matrix must be bit-identical");
    let cold_computes = computes.load(std::sync::atomic::Ordering::Relaxed);
    let mut t_cached = Vec::new();
    for _ in 0..WARM_ITERS {
        let (ms, m) = time(|| build_cached(&computes));
        t_cached.push(ms);
        assert_eq!(m, reference);
    }
    assert_eq!(
        computes.load(std::sync::atomic::Ordering::Relaxed),
        cold_computes,
        "warm service builds must not recompute any TED"
    );

    let med_baseline = median(t_baseline_kernel);
    let med_per_pair = median(t_per_pair);
    let med_once = median(t_once);
    let med_warm = median(t_warm);
    let med_cached = median(t_cached);
    let speedup_kernel = med_baseline / med_per_pair;
    let speedup_once = med_per_pair / med_once;
    let speedup_warm = med_per_pair / med_warm;
    let speedup_cached = med_per_pair / med_cached;
    assert!(
        speedup_kernel >= 2.0,
        "cold matrix builds must be ≥2x the PR 4 kernel, got {speedup_kernel:.2}x \
         ({med_baseline:.0} ms -> {med_per_pair:.0} ms)"
    );
    assert!(
        speedup_cached >= 2.0,
        "steady-state matrix builds must be ≥2x the per-pair baseline, got {speedup_cached:.2}x"
    );

    let json = format!(
        "{{\n  \"workload\": \"CloverLeaf T_sem divergence matrix (Fig. 8)\",\n  \
         \"models\": {n},\n  \"pairs\": {pairs},\n  \
         \"cold_pr4_kernel_ms\": {med_baseline:.3},\n  \
         \"cold_decompose_per_pair_ms\": {med_per_pair:.3},\n  \
         \"cold_decompose_once_ms\": {med_once:.3},\n  \
         \"warm_artifact_reuse_ms\": {med_warm:.3},\n  \
         \"warm_cached_service_ms\": {med_cached:.3},\n  \
         \"speedup_cold_kernel_overhaul\": {speedup_kernel:.3},\n  \
         \"speedup_cold_decompose_once\": {speedup_once:.3},\n  \
         \"speedup_warm_artifact_reuse\": {speedup_warm:.3},\n  \
         \"speedup_warm_cached_service\": {speedup_cached:.3},\n  \
         \"note\": \"cold builds are DP-dominated: the kernel overhaul (scratch arenas, u32 \
         cells, branch-split loops — see BENCH_ted_kernel.json for the per-optimisation \
         ablation) carries the >=2x cold gate; warm builds over stored artefacts then skip \
         decompositions, and the content-addressed TedCache makes repeated service builds \
         pure lookups\"\n}}\n",
        pairs = n * (n - 1) / 2,
    );

    // Committed artefact at the repository root (target/figures is
    // gitignored); also mirrored there for the figure-collection tooling.
    let repo_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    std::fs::write(format!("{repo_root}/BENCH_matrix.json"), &json).expect("write BENCH_matrix");
    save_figure("BENCH_matrix.json", &json);
}
