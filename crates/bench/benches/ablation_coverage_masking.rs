//! Ablation: the +coverage modifier — how much tree survives masking and
//! what it costs (§IV-D / §V-C).

use bench::{criterion, save_figure};
use svcorpus::{unit, App, Model};
use svmetrics::{divergence, tree_of, Measured, Metric, Variant};

fn main() {
    let mut out = String::from("Ablation — coverage masking (BabelStream)\n");
    out.push_str("model            |t_sem|  masked  survival  d(serial)  d+cov\n");
    let serial = unit(App::BabelStream, Model::Serial).unwrap();
    let serial_run = svexec::run_unit(&serial).unwrap();
    for m in Model::ALL {
        let u = unit(App::BabelStream, m).unwrap();
        let run = svexec::run_unit(&u).unwrap();
        let plain = Measured::new(&u);
        let covd = Measured::with_coverage(&u, &run.coverage);
        let full = tree_of(&plain, Metric::TSem, Variant::PLAIN).size();
        let masked = tree_of(&covd, Metric::TSem, Variant::COVERAGE).size();
        let d_plain =
            divergence(Metric::TSem, Variant::PLAIN, &Measured::new(&serial), &plain).normalized();
        let d_cov = divergence(
            Metric::TSem,
            Variant::COVERAGE,
            &Measured::with_coverage(&serial, &serial_run.coverage),
            &covd,
        )
        .normalized();
        out.push_str(&format!(
            "{:<16} {:>7} {:>7} {:>8.2}% {:>10.3} {:>6.3}\n",
            m.name(),
            full,
            masked,
            100.0 * masked as f64 / full as f64,
            d_plain,
            d_cov
        ));
    }
    save_figure("ablation_coverage_masking.txt", &out);

    let u = unit(App::BabelStream, Model::SyclAcc).unwrap();
    let mut c = criterion();
    c.bench_function("coverage/interpret_and_profile", |b| {
        b.iter(|| svexec::run_unit(&u).unwrap())
    });
    c.final_summary();
}
