//! Figs. 13 & 14 — CloverLeaf and TeaLeaf navigation charts (Φ vs TBMD).

use bench::{criterion, save_figure};
use silvervale::{index_app, navigation_chart};
use svcorpus::App;

fn main() {
    for (fig, app) in [("fig13", App::CloverLeaf), ("fig14", App::TeaLeaf)] {
        let db = index_app(app, false).unwrap();
        let chart = navigation_chart(app, &db).unwrap();
        save_figure(&format!("{fig}_{}_navigation.txt", app.name()), &chart.render());
        save_figure(&format!("{fig}_{}_navigation.csv", app.name()), &chart.to_csv());
    }
    let db = index_app(App::TeaLeaf, false).unwrap();
    let mut c = criterion();
    c.bench_function("fig13_14/navigation_chart", |b| {
        b.iter(|| navigation_chart(App::TeaLeaf, &db).unwrap())
    });
    c.final_summary();
}
