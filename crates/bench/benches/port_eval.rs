//! Port-candidate evaluation throughput: cold vs warm fan-out.
//!
//! The `evaluate` method fans one request into one pool job per
//! candidate.  Cold, every unique candidate pays the full pipeline —
//! compile, interpreted gate run against the serial baseline, TED for
//! both TBMD variants.  Warm, the candidate memo answers the gate and
//! the content-addressed `TedCache` answers the divergences, so a
//! repeated evaluation is pure lookups plus ranking.  This bench runs
//! the real TCP service end-to-end, measures candidates/second in both
//! regimes, and writes the medians to `BENCH_port_eval.json` at the
//! repository root.  Warm evaluation must be ≥2× cold.

use bench::save_figure;
use silvervale::serve::AnalysisService;
use silvervale::svjson::Json;
use std::time::Instant;
use svserve::{serve, Client, Router, ServeHandle};

const CANDIDATES: usize = 100;
const SEED: u64 = 17;
const COLD_ITERS: usize = 3;
const WARM_ITERS: usize = 7;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn start_server() -> ServeHandle {
    let service = AnalysisService::new(1 << 22);
    let mut router = Router::new();
    service.register_on(&mut router);
    serve("127.0.0.1:0", router, 4).expect("bind bench server")
}

fn evaluate(client: &mut Client) -> (f64, String) {
    let params = Json::obj([
        ("db", Json::str("babelstream")),
        ("app", Json::str("babelstream")),
        ("candidates", Json::Num(CANDIDATES as f64)),
        ("seed", Json::Num(SEED as f64)),
    ]);
    let t = Instant::now();
    let r = client.call("evaluate", params).expect("evaluate");
    let ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(r.get("candidates").and_then(Json::as_f64), Some(CANDIDATES as f64));
    (ms, r.get("text").and_then(Json::as_str).expect("leaderboard text").to_string())
}

fn main() {
    // Cold: a fresh service per iteration — nothing memoised, nothing
    // cached, every candidate compiled and interpreted.
    let mut t_cold = Vec::new();
    let mut reference: Option<String> = None;
    for _ in 0..COLD_ITERS {
        let handle = start_server();
        let mut client = Client::connect(handle.addr()).unwrap();
        client.call("index", Json::obj([("app", Json::str("babelstream"))])).unwrap();
        let (ms, text) = evaluate(&mut client);
        t_cold.push(ms);
        match &reference {
            Some(r) => assert_eq!(&text, r, "cold evaluation must be deterministic per seed"),
            None => reference = Some(text),
        }
        handle.shutdown();
    }
    let reference = reference.unwrap();

    // Warm: repeated evaluations against one long-lived service — the
    // candidate memo + TED cache steady state.
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.call("index", Json::obj([("app", Json::str("babelstream"))])).unwrap();
    let (_, text) = evaluate(&mut client); // warm-up: populate memo + cache
    assert_eq!(text, reference, "served leaderboard must match across services");
    let mut t_warm = Vec::new();
    for _ in 0..WARM_ITERS {
        let (ms, text) = evaluate(&mut client);
        t_warm.push(ms);
        assert_eq!(text, reference, "warm evaluation must reproduce the cold leaderboard");
    }
    handle.shutdown();

    let med_cold = median(t_cold);
    let med_warm = median(t_warm);
    let cold_cps = CANDIDATES as f64 / (med_cold / 1e3);
    let warm_cps = CANDIDATES as f64 / (med_warm / 1e3);
    let speedup = med_cold / med_warm;
    assert!(
        speedup >= 2.0,
        "warm evaluation must be ≥2x cold, got {speedup:.2}x ({med_cold:.0} ms -> {med_warm:.0} ms)"
    );

    let json = format!(
        "{{\n  \"workload\": \"BabelStream port evaluation, {CANDIDATES} candidates, seed {SEED}\",\n  \
         \"candidates\": {CANDIDATES},\n  \
         \"cold_ms\": {med_cold:.3},\n  \
         \"warm_ms\": {med_warm:.3},\n  \
         \"cold_candidates_per_s\": {cold_cps:.1},\n  \
         \"warm_candidates_per_s\": {warm_cps:.1},\n  \
         \"speedup_warm_over_cold\": {speedup:.3},\n  \
         \"note\": \"one pool job per candidate through the live service; cold pays compile + \
         interpreted gate + TED per unique candidate, warm is served by the candidate memo and \
         the content-addressed TedCache (pure lookups + ranking)\"\n}}\n",
    );

    let repo_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    std::fs::write(format!("{repo_root}/BENCH_port_eval.json"), &json)
        .expect("write BENCH_port_eval");
    save_figure("BENCH_port_eval.json", &json);
}
