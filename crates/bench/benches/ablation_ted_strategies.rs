//! Ablation: TED decomposition strategies (§III-B / §IV-E) and the
//! match()-pairing design decision (§III-C).

use bench::{criterion, save_figure};
use svcorpus::{unit, App, Model};
use svdist::ted::{ted_with, CostModel, Strategy};
use svtree::Tree;

fn main() {
    let a = unit(App::TeaLeaf, Model::Serial).unwrap().t_sem.clone();
    let b = unit(App::TeaLeaf, Model::Kokkos).unwrap().t_sem.clone();

    // All strategies agree on the distance; only runtime differs.
    let mut out = String::from("Ablation — TED strategy agreement on TeaLeaf T_sem pair\n");
    for s in [Strategy::Left, Strategy::Right, Strategy::Auto] {
        let d = ted_with(&a, &b, CostModel::UNIT, s);
        out.push_str(&format!("  {s:?}: d = {d}\n"));
    }

    // Per-operation weights (the paper's future-work knob).
    out.push_str("\nAblation — cost-model weights (delete/insert/relabel)\n");
    for cm in [
        CostModel::UNIT,
        CostModel { delete: 1, insert: 2, relabel: 1 },
        CostModel { delete: 2, insert: 1, relabel: 1 },
        CostModel { delete: 1, insert: 1, relabel: 3 },
    ] {
        let d = ted_with(&a, &b, cm, Strategy::Auto);
        out.push_str(&format!("  d={}/i={}/r={} → {d}\n", cm.delete, cm.insert, cm.relabel));
    }

    // Operation composition of the optimal script (what per-operation
    // weights would act on).
    let stats = svdist::edit_stats(&a, &b);
    out.push_str(&format!(
        "\nAblation — edit-script composition (Serial → Kokkos T_sem): \
         {} inserts, {} deletes, {} relabels (total {})\n",
        stats.inserts,
        stats.deletes,
        stats.relabels,
        stats.total()
    ));

    // match() pairing vs one whole-codebase tree (§III-C: "in practice,
    // this adds significant runtime overhead").
    let paired_start = std::time::Instant::now();
    let d_paired = svdist::ted(&a, &b);
    let paired_t = paired_start.elapsed();
    let whole_a = Tree::node("Codebase", vec![a.clone()]);
    let whole_b = Tree::node("Codebase", vec![b.clone()]);
    let whole_start = std::time::Instant::now();
    let d_whole = svdist::ted(&whole_a, &whole_b);
    let whole_t = whole_start.elapsed();
    out.push_str(&format!(
        "\nAblation — match() pairing: d={d_paired} in {paired_t:?}; \
         whole-codebase tree: d={d_whole} in {whole_t:?}\n"
    ));
    save_figure("ablation_ted_strategies.txt", &out);

    let mut c = criterion();
    c.bench_function("ted/left", |bch| {
        bch.iter(|| ted_with(&a, &b, CostModel::UNIT, Strategy::Left))
    });
    c.bench_function("ted/right", |bch| {
        bch.iter(|| ted_with(&a, &b, CostModel::UNIT, Strategy::Right))
    });
    c.bench_function("ted/auto", |bch| {
        bch.iter(|| ted_with(&a, &b, CostModel::UNIT, Strategy::Auto))
    });
    c.final_summary();
}
