use svdist::ted::{cell_width, naive_ted, ted_with, CellWidth, CostModel, Strategy};
use svtree::TreeBuilder;

fn main() {
    // a: 3 nodes, b: 1 node. ins = 1.5e9: worst = 2*(3*1 + 1*1.5e9) + 1 fits u32,
    // so the narrow kernel is selected, but 3*ins > u32::MAX.
    let mut ba = TreeBuilder::new();
    let r = ba.root("f");
    let c1 = ba.child(r, "a");
    let _ = ba.child(c1, "b");
    let a = ba.finish();
    let mut bb = TreeBuilder::new();
    bb.root("g");
    let b = bb.finish();
    let cm = CostModel { delete: 1, insert: 1_500_000_000, relabel: 1 };
    assert_eq!(cell_width(a.size(), b.size(), cm), CellWidth::U32, "expect narrow kernel");
    let expect = naive_ted(&a, &b, cm);
    let got = ted_with(&a, &b, cm, Strategy::Auto);
    println!("expect={expect} got={got}");
    assert_eq!(got, expect);
    println!("OK");
}
