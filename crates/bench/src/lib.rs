//! # bench — figure/table regeneration harness
//!
//! Every bench target regenerates one table or figure of the paper: it
//! prints the figure to stdout, writes a CSV/text artefact under
//! `target/figures/`, and then Criterion-benchmarks the computation that
//! produces it.  Run everything with `cargo bench` and find the artefacts
//! in `target/figures/`.

use std::fs;
use std::path::PathBuf;

/// Directory where regenerated figures/tables are written.
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures");
    fs::create_dir_all(&dir).expect("create figures dir");
    dir
}

/// Save a regenerated figure artefact and echo it to stdout.
pub fn save_figure(name: &str, content: &str) {
    let path = figures_dir().join(name);
    fs::write(&path, content).expect("write figure");
    println!("── {name} ──");
    // Keep terminal output bounded for very large artefacts.
    let mut lines = 0;
    for line in content.lines() {
        println!("{line}");
        lines += 1;
        if lines > 80 {
            println!("… ({} more lines in {})", content.lines().count() - lines, path.display());
            break;
        }
    }
    println!();
}

/// Small Criterion config used by all figure benches: the figures
/// themselves are deterministic, so a handful of samples suffices.
pub fn criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
}
