//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the subset the `bench` crate uses: `Criterion` with
//! `sample_size` / `warm_up_time` / `measurement_time`, `bench_function`,
//! `benchmark_group` + `bench_with_input(BenchmarkId::from_parameter(..))`,
//! and `final_summary`.  Measurement is a plain wall-clock loop reporting
//! mean / min / max per sample — no bootstrap statistics, HTML reports, or
//! regression baselines, which this repo's figure benches don't rely on.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark harness configuration + runner.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    results: Vec<(String, Duration)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_millis(800),
            results: Vec::new(),
        }
    }
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, called repeatedly; the harness controls the iteration
    /// count through the surrounding sampling loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier for one parameterised benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/parameter` naming, e.g. `triad/8`.
    pub fn from_parameter<D: Display>(parameter: D) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }

    /// Explicit `function/parameter` naming.
    pub fn new<D: Display>(function: &str, parameter: D) -> BenchmarkId {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark and print its timing line.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mean = run_bench(name, self.sample_size, self.warm_up_time, self.measurement_time, f);
        self.results.push((name.to_string(), mean));
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self, name: name.to_string() }
    }

    /// Print the closing summary (upstream writes reports here).
    pub fn final_summary(&self) {
        if self.results.is_empty() {
            return;
        }
        eprintln!("── benchmark summary ──");
        for (name, mean) in &self.results {
            eprintln!("{name:<48} {}", fmt_duration(*mean));
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let (n, w, m) =
            (self.parent.sample_size, self.parent.warm_up_time, self.parent.measurement_time);
        let mean = run_bench(&full, n, w, m, f);
        self.parent.results.push((full, mean));
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        let (n, w, m) =
            (self.parent.sample_size, self.parent.warm_up_time, self.parent.measurement_time);
        let mean = run_bench(&full, n, w, m, |b| f(b, input));
        self.parent.results.push((full, mean));
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    mut f: F,
) -> Duration {
    // Warm-up: run single iterations until the warm-up budget elapses,
    // and use the observed cost to pick a per-sample iteration count that
    // fits the measurement budget.
    let start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    while start.elapsed() < warm_up {
        f(&mut b);
        warm_iters += 1;
        if warm_iters >= 1_000_000 {
            break;
        }
    }
    let per_iter = start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
    let budget = measurement.as_secs_f64() / samples as f64;
    let iters = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

    let mut means = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bench = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut bench);
        means.push(bench.elapsed.as_secs_f64() / iters as f64);
    }
    means.sort_by(|a, b| a.total_cmp(b));
    let mean = means.iter().sum::<f64>() / means.len() as f64;
    let (lo, hi) = (means[0], means[means.len() - 1]);
    eprintln!("{name:<48} time: [{} {} {}]", fmt_secs(lo), fmt_secs(mean), fmt_secs(hi));
    Duration::from_secs_f64(mean)
}

fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.2} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

fn fmt_duration(d: Duration) -> String {
    fmt_secs(d.as_secs_f64())
}

/// Upstream's harness-entry macros, for `harness = true` benches (the
/// repo's benches all define `fn main`, but keep these for parity).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
            c.final_summary();
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10))
    }

    #[test]
    fn bench_function_runs_closure() {
        let mut c = fast();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            calls += 1;
            b.iter(|| black_box(1 + 1));
        });
        assert!(calls >= 3, "sampled at least sample_size times");
        c.final_summary();
    }

    #[test]
    fn groups_and_ids() {
        let mut c = fast();
        let mut group = c.benchmark_group("g");
        for n in [1usize, 2] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| black_box(n * 2));
            });
        }
        group.finish();
        assert_eq!(c.results.len(), 2);
        assert!(c.results[0].0.starts_with("g/1"));
    }

    #[test]
    fn benchmark_id_naming() {
        assert_eq!(BenchmarkId::new("f", 4).id, "f/4");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
