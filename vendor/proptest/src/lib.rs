//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   ranges, tuples, `any::<T>()`, and string-pattern literals,
//! * [`collection::vec`] with either a fixed size or a size range.
//!
//! Differences from upstream proptest: cases are *generated only* — there
//! is no shrinking of failing inputs, and string strategies support just
//! the mini-regex shapes used here (a single `[...]` class or `\PC`
//! followed by `*` or `{m,n}`).  Runs are deterministic per test name so
//! failures reproduce exactly.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator.  Upstream proptest separates strategies from
    /// value trees (for shrinking); generation-only collapses to this.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.in_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident . $i:tt),+)),+ $(,)?) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

    /// `Strategy` for pattern-string literals, e.g. `"[a-z]{0,20}"` or
    /// `"\\PC*"` — parsed by [`crate::string::pattern_chars`].
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_matching(self, rng)
        }
    }

    /// Values with a canonical "any" distribution.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.bits() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.bits() & 1 == 1
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// A strategy that always yields clones of one value (upstream
    /// `Just`); handy for composing.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Size specification for [`vec`]: a fixed length or a half-open range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.in_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod string {
    use crate::test_runner::TestRng;

    /// Generate a string matching the mini-regex `pattern`.
    ///
    /// Supported shapes (everything the workspace's tests use):
    /// one atom — `[...]` character class (with `\n` `\t` `\\` `\[` `\]`
    /// escapes and `a-z` ranges) or `\PC` (printable char) — followed by
    /// an optional quantifier `*` (0..=32) or `{m,n}`.
    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let (chars, rest) = pattern_chars(pattern);
        let (lo, hi) = quantifier(rest);
        let len = rng.in_range(lo..hi + 1);
        (0..len).map(|_| chars[rng.in_range(0..chars.len())]).collect()
    }

    /// Parse the leading atom of `pattern` into its character alphabet;
    /// returns the alphabet and the remaining pattern (the quantifier).
    fn pattern_chars(pattern: &str) -> (Vec<char>, &str) {
        if let Some(rest) = pattern.strip_prefix("\\PC") {
            // Printable characters: ASCII plus a few multi-byte code
            // points so UTF-8 handling gets exercised.
            let mut set: Vec<char> = (0x20u8..0x7f).map(|b| b as char).collect();
            set.extend(['é', 'ß', '—', '中', '🦀']);
            return (set, rest);
        }
        let inner = pattern.strip_prefix('[').expect("unsupported pattern atom");
        let bytes: Vec<char> = inner.chars().collect();
        let mut set = Vec::new();
        let mut i = 0;
        let mut closed = None;
        while i < bytes.len() {
            match bytes[i] {
                ']' => {
                    closed = Some(i);
                    break;
                }
                '\\' => {
                    let c = bytes[i + 1];
                    set.push(match c {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other, // \[ \] \\ \" \. \- \$ …
                    });
                    i += 2;
                }
                c if i + 2 < bytes.len() && bytes[i + 1] == '-' && bytes[i + 2] != ']' => {
                    let (a, b) = (c as u32, bytes[i + 2] as u32);
                    assert!(a <= b, "inverted class range");
                    set.extend((a..=b).filter_map(char::from_u32));
                    i += 3;
                }
                c => {
                    set.push(c);
                    i += 1;
                }
            }
        }
        let end = closed.expect("unterminated character class");
        assert!(!set.is_empty(), "empty character class");
        let rest_start: usize = bytes[..=end].iter().map(|c| c.len_utf8()).sum();
        (set, &inner[rest_start..])
    }

    /// Parse the quantifier suffix into inclusive length bounds.
    fn quantifier(q: &str) -> (usize, usize) {
        match q {
            "" => (1, 1),
            "*" => (0, 32),
            "+" => (1, 32),
            _ => {
                let body = q
                    .strip_prefix('{')
                    .and_then(|s| s.strip_suffix('}'))
                    .unwrap_or_else(|| panic!("unsupported quantifier {q:?}"));
                match body.split_once(',') {
                    Some((m, n)) => (m.parse().unwrap(), n.parse().unwrap()),
                    None => {
                        let n: usize = body.parse().unwrap();
                        (n, n)
                    }
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::test_runner::TestRng;

        #[test]
        fn class_with_escapes_and_ranges() {
            let mut rng = TestRng::deterministic("class");
            for _ in 0..200 {
                let s = generate_matching(
                    "[a-z0-9 \\n\\t{}()\\[\\];,.*+<>=&|!#\"'/-]{0,200}",
                    &mut rng,
                );
                assert!(s.len() <= 200);
                assert!(s.chars().all(|c| {
                    c.is_ascii_lowercase()
                        || c.is_ascii_digit()
                        || " \n\t{}()[];,.*+<>=&|!#\"'/-".contains(c)
                }));
            }
        }

        #[test]
        fn printable_star() {
            let mut rng = TestRng::deterministic("pc");
            let mut nonempty = 0;
            for _ in 0..100 {
                let s = generate_matching("\\PC*", &mut rng);
                assert!(s.chars().all(|c| !c.is_control()));
                nonempty += usize::from(!s.is_empty());
            }
            assert!(nonempty > 50);
        }

        #[test]
        fn literal_backslash_class() {
            let mut rng = TestRng::deterministic("bs");
            let mut saw_backslash = false;
            for _ in 0..500 {
                let s = generate_matching("[\\[\\]{}\",:a-z0-9 .\\\\/-]{0,200}", &mut rng);
                saw_backslash |= s.contains('\\');
            }
            assert!(saw_backslash, "escaped backslash must be in the alphabet");
        }
    }
}

pub mod test_runner {
    /// Per-test deterministic RNG: xorshift64* seeded from the test name,
    /// so a failing case reproduces on re-run without recording seeds.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> TestRng {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h | 1 }
        }

        pub fn bits(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in a half-open range (generic over the numeric
        /// types strategies use).
        pub fn in_range<T: RangeSample>(&mut self, range: std::ops::Range<T>) -> T {
            T::from_bits(self, range)
        }
    }

    /// Numeric types samplable from [`TestRng::in_range`].
    pub trait RangeSample: Sized {
        fn from_bits(rng: &mut TestRng, range: std::ops::Range<Self>) -> Self;
    }

    macro_rules! impl_range_sample_uint {
        ($($t:ty),*) => {$(
            impl RangeSample for $t {
                fn from_bits(rng: &mut TestRng, r: std::ops::Range<$t>) -> $t {
                    assert!(r.start < r.end, "empty range");
                    let span = (r.end as u128) - (r.start as u128);
                    r.start + (((rng.bits() as u128) * span) >> 64) as $t
                }
            }
        )*};
    }
    impl_range_sample_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_sample_int {
        ($($t:ty),*) => {$(
            impl RangeSample for $t {
                fn from_bits(rng: &mut TestRng, r: std::ops::Range<$t>) -> $t {
                    assert!(r.start < r.end, "empty range");
                    let span = (r.end as i128 - r.start as i128) as u128;
                    (r.start as i128 + (((rng.bits() as u128) * span) >> 64) as i128) as $t
                }
            }
        )*};
    }
    impl_range_sample_int!(i8, i16, i32, i64, isize);

    impl RangeSample for f64 {
        fn from_bits(rng: &mut TestRng, r: std::ops::Range<f64>) -> f64 {
            assert!(r.start < r.end, "empty range");
            let unit = (rng.bits() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            r.start + unit * (r.end - r.start)
        }
    }

    impl RangeSample for f32 {
        fn from_bits(rng: &mut TestRng, r: std::ops::Range<f32>) -> f32 {
            assert!(r.start < r.end, "empty range");
            let unit = (rng.bits() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
            r.start + unit * (r.end - r.start)
        }
    }

    /// Test-run configuration (subset: case count).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The test-harness macro: each `#[test] fn name(arg in strategy, ..)`
/// becomes a standard test running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                // A nested closure keeps `?`/control flow inside the body
                // from leaking into the harness loop.
                (|| $body)();
            }
        }
    )*};
}

/// Assertion macros: generation-only proptest has no failure persistence,
/// so these are the std assertions (a panic fails the whole test).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0u8..5, pair in (0usize..3, -1.0f64..1.0)) {
            prop_assert!(x < 5);
            prop_assert!(pair.0 < 3);
            prop_assert!((-1.0..1.0).contains(&pair.1));
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0u8..4, 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        #[test]
        fn mapped_strategy(s in (0u32..100).prop_map(|v| v * 2)) {
            prop_assert_eq!(s % 2, 0);
            prop_assert!(s < 200);
        }

        #[test]
        fn fixed_size_vec(v in crate::collection::vec(0.0f64..10.0, 6)) {
            prop_assert_eq!(v.len(), 6);
        }
    }

    #[test]
    fn determinism_per_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        let s = crate::collection::vec(0u8..255, 0..64);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
