//! Offline stand-in for the `crossbeam` crate.
//!
//! This build environment has no access to crates.io, so the repo vendors
//! the *exact API surface it uses* on top of the standard library (see
//! `vendor/README.md`).  `crossbeam::thread::scope` maps onto
//! `std::thread::scope`, which provides the same structured-concurrency
//! guarantee (all spawned threads join before the scope returns, so
//! borrows of stack data are sound).
//!
//! Differences from real crossbeam, none of which are observable to this
//! workspace's call sites:
//!
//! * a child-thread panic propagates when the scope joins (std semantics)
//!   instead of surfacing as `Err` — every caller here immediately
//!   `.expect(..)`s the result, i.e. panics either way;
//! * `ScopedJoinHandle::join` reports a child panic the same way.

pub mod thread {
    use std::any::Any;

    /// Result of a scope: `Ok` unless a spawned thread panicked.
    pub type ThreadResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle: spawn threads that may borrow stack data of the
    /// enclosing `scope` call.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish.
        pub fn join(self) -> ThreadResult<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope.  The closure receives the
        /// scope itself (crossbeam convention), allowing nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let me = *self;
            ScopedJoinHandle { inner: self.inner.spawn(move || f(&me)) }
        }
    }

    /// Create a scope for spawning threads that borrow from the caller's
    /// stack.  Returns once every spawned thread has joined.
    pub fn scope<'env, F, R>(f: F) -> ThreadResult<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scope_joins_all_threads() {
            let counter = AtomicUsize::new(0);
            let out = super::scope(|s| {
                for _ in 0..8 {
                    s.spawn(|_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
                42
            })
            .unwrap();
            assert_eq!(out, 42);
            assert_eq!(counter.load(Ordering::Relaxed), 8);
        }

        #[test]
        fn spawned_threads_can_borrow_stack_data() {
            let data = vec![1u64, 2, 3, 4];
            let sums: Vec<u64> = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .unwrap();
            assert_eq!(sums, vec![3, 7]);
        }

        #[test]
        fn nested_spawn_through_scope_arg() {
            let hits = AtomicUsize::new(0);
            super::scope(|s| {
                s.spawn(|inner| {
                    inner.spawn(|_| {
                        hits.fetch_add(1, Ordering::Relaxed);
                    });
                });
            })
            .unwrap();
            assert_eq!(hits.load(Ordering::Relaxed), 1);
        }
    }
}
