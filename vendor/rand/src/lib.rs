//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset this workspace uses — `StdRng::seed_from_u64`,
//! `Rng::{gen, gen_range, gen_bool}` over integer and float ranges — on a
//! from-scratch xoshiro256** generator.  The streams differ from upstream
//! `rand`'s StdRng (ChaCha12), which is fine here: every consumer in the
//! workspace only relies on *seed-determinism*, never on specific values.

use std::ops::Range;

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling of a value type from a range.
pub trait SampleUniform: Sized {
    fn sample_range(rng: &mut dyn RngCore, range: &Range<Self>) -> Self;
}

/// Types producible by `Rng::gen`.
pub trait Standard: Sized {
    fn sample(rng: &mut dyn RngCore) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, &range)
    }

    /// Sample a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** — small, fast, and statistically solid; seeded through
    /// SplitMix64 exactly as the xoshiro authors recommend.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 to spread the seed over the full state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample(rng: &mut dyn RngCore) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, range: &Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as u128).wrapping_sub(range.start as u128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias of plain % is avoided by widening to 128 bits.
                let r = rng.next_u64() as u128;
                range.start + ((r * span) >> 64) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, range: &Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range in gen_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let r = rng.next_u64() as u128;
                (range.start as i128 + ((r * span) >> 64) as i128) as $t
            }
        }
    )*};
}

impl_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut dyn RngCore, range: &Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range(rng: &mut dyn RngCore, range: &Range<f32>) -> f32 {
        assert!(range.start < range.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        range.start + unit * (range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let mut d = StdRng::seed_from_u64(42);
        let same =
            (0..100).filter(|_| d.gen_range(0u64..u64::MAX) == c.gen_range(0u64..u64::MAX)).count();
        assert!(same < 5, "different seeds must diverge, {same} collisions");
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-0.03f64..0.03);
            assert!((-0.03..0.03).contains(&f));
            let i = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "{hits}");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
