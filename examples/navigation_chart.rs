//! The §VI combined performance-portability + productivity analysis:
//! cascade plots (Figs. 11–12) and navigation charts (Figs. 13–15).
//!
//! ```sh
//! cargo run --release --example navigation_chart
//! ```

use silvervale::{index_app, navigation_chart};
use svcorpus::App;
use svperf::{cascade, migration_scenario};

fn main() {
    for app in [App::TeaLeaf, App::CloverLeaf] {
        // Figs. 11/12: sorted application-efficiency decay + Φ bars over
        // the six Table III platforms.
        let c = cascade(app);
        println!("{}", c.render());

        // Figs. 13/14: Φ against the TBMD divergence-from-serial, with the
        // linked T_sem / T_src point pair per model.
        let db = index_app(app, false).expect("indexing failed");
        let chart = navigation_chart(app, &db).expect("chart failed");
        println!("{}", chart.render());

        let ranked = chart.ranked();
        println!("Recommended models for {} (Φ × resemblance):", app.name());
        for (i, (model, score)) in ranked.iter().take(3).enumerate() {
            println!("  {}. {:<14} score {:.3}", i + 1, model.name(), score);
        }
        println!();
    }

    // Fig. 15: the vendor-diversification story.
    println!("=== Fig. 15 migration scenario (TeaLeaf) ===");
    let scenario = migration_scenario(App::TeaLeaf);
    for (desc, platforms, phi) in &scenario.stages {
        println!("  {desc}: platforms {platforms:?} → Φ(CUDA) = {phi:.3}");
    }
    println!(
        "  3: pick a replacement from the navigation chart's top-right \
         quadrant (see rankings above)."
    );
}
