//! Port-candidate ranking: generate a seeded population of parallel-port
//! variants of a mini-app, gate each one for correctness against the
//! serial baseline, score the survivors by Φ × TBMD-resemblance, and
//! print the ranked leaderboard with its navigation-chart placement.
//!
//! ```sh
//! cargo run --release --example port_ranking
//! ```

use svcorpus::App;
use svport::{evaluate, GateClass};

fn main() {
    let app = App::BabelStream;
    let (n, seed) = (32, 42);
    let board = evaluate(app, n, seed).expect("evaluation failed");

    println!("{}", board.render());
    println!("{}", board.nav_chart().render());

    let counts = board.class_counts();
    println!("gate summary for {} ({n} candidates, seed {seed}):", app.name());
    for (class, k) in &counts {
        println!("  {:<13} {k:>3}", class.name());
    }

    // The headline: the best correct candidate per model family.
    println!("\nbest correct port per model:");
    let mut seen = Vec::new();
    for row in &board.rows {
        if row.class != GateClass::Correct || seen.contains(&row.model) {
            continue;
        }
        seen.push(row.model);
        println!(
            "  {:<14} {} score {:.3} (Φ {:.3}, TBMD {:.3})",
            row.model.name(),
            row.label,
            row.score,
            row.phi,
            row.tbmd_sem.unwrap_or(f64::NAN),
        );
    }
}
