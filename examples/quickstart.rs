//! Quickstart: index a mini-app across all ten programming models, print
//! the inventory, and cluster the models by semantic divergence.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use silvervale::{index_app, inventory, model_dendrogram, model_matrix};
use svcluster::Heatmap;
use svcorpus::App;
use svmetrics::{Metric, Variant};

fn main() {
    // 1. Index: compile every model of BabelStream through the frontend,
    //    collecting T_src / T_sem / T_ir artefacts per model.
    let db = index_app(App::BabelStream, false).expect("indexing failed");
    println!("{}", inventory(&db));

    // 2. Pairwise semantic divergence (TED over T_sem, dmax-normalised).
    let matrix = model_matrix(&db, Metric::TSem, Variant::PLAIN);
    println!("T_sem divergence matrix:\n{matrix}");

    // 3. Cluster with the paper's recipe (Euclidean over matrix rows,
    //    complete linkage) and render the dendrogram + ordered heatmap.
    let dendro = model_dendrogram(&db, Metric::TSem, Variant::PLAIN);
    println!("Model clustering (T_sem):\n{}", dendro.render());
    println!("Heatmap (dendrogram order):\n{}", Heatmap::ordered_by(&matrix, &dendro).render());

    // 4. The headline numbers: how far is each model from serial?
    let divs = silvervale::divergence_from(&db, Metric::TSem, Variant::PLAIN, "Serial").unwrap();
    println!("Divergence from Serial (T_sem, normalised):");
    let mut sorted = divs.clone();
    sorted.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (label, d) in sorted {
        println!("  {label:<16} {d:.3} {}", "▆".repeat((d * 40.0) as usize));
    }
}
