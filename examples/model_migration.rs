//! The §V-D code-migration case study (Figs. 9–10): is it cheaper to port
//! to a new offload model from the serial baseline, or from an existing
//! CUDA port?
//!
//! ```sh
//! cargo run --release --example model_migration
//! ```

use silvervale::{divergence_from, index_app};
use svcorpus::App;
use svmetrics::{Metric, Variant};

fn main() {
    let db = index_app(App::TeaLeaf, false).expect("indexing failed");

    let metrics = [Metric::Source, Metric::TSrc, Metric::TSem, Metric::TIr];
    let targets = ["OpenMP target", "HIP", "SYCL (USM)", "SYCL (acc)", "Kokkos"];

    for base in ["Serial", "CUDA"] {
        println!("=== Divergence of TeaLeaf offload models from {base} ===");
        print!("{:<16}", "model");
        for m in metrics {
            print!(" {:>8}", m.name());
        }
        println!();
        for target in targets {
            print!("{target:<16}");
            for metric in metrics {
                let divs = divergence_from(&db, metric, Variant::PLAIN, base).unwrap();
                let d = divs.iter().find(|(l, _)| l == target).unwrap().1;
                print!(" {d:>8.3}");
            }
            println!();
        }
        println!();
    }

    // The takeaway the paper draws from this data.
    let from_serial = divergence_from(&db, Metric::TSem, Variant::PLAIN, "Serial").unwrap();
    let from_cuda = divergence_from(&db, Metric::TSem, Variant::PLAIN, "CUDA").unwrap();
    let get = |v: &[(String, f64)], l: &str| v.iter().find(|(x, _)| x == l).unwrap().1;
    let mut cheaper_from_serial = 0;
    for t in targets {
        if get(&from_serial, t) < get(&from_cuda, t) {
            cheaper_from_serial += 1;
        }
    }
    println!(
        "Porting from serial is semantically cheaper than porting from CUDA \
         for {cheaper_from_serial}/{} offload targets.",
        targets.len()
    );
    println!(
        "(\"migrating from CUDA to other offload models may be less productive \
         than porting from a serial one\" — §VIII)"
    );
}
