//! The generic SilverVale workflow on a user codebase (Fig. 2): ingest a
//! `compile_commands.json`, index every invocation, persist the Codebase
//! DB, reload it, and compare configurations — all without the built-in
//! corpus.
//!
//! ```sh
//! cargo run --release --example analyze_codebase
//! ```

use silvervale::{
    index_compilation_db, inventory, model_matrix, parse_compile_commands, CodebaseDb,
};
use svlang::source::SourceSet;
use svmetrics::{Metric, Variant};

fn main() {
    // A small two-configuration project: the same solver compiled with and
    // without an OpenMP build flag, the way real build systems produce
    // multiple entries for one file.
    let mut sources = SourceSet::new();
    sources.add(
        "solver.cpp",
        r#"#include "kernels.h"

int main() {
  int n = 64;
  double* x = (double*)malloc(n * sizeof(double));
  double* y = (double*)malloc(n * sizeof(double));
  init(x, y, n);
  double r = saxpy(x, y, 0.5, n);
  if (r > 0.0) { return 0; }
  return 1;
}
"#,
    );
    sources.add(
        "kernels.h",
        r#"void init(double* x, double* y, int n) {
#ifdef USE_OMP
#pragma omp parallel for
#endif
  for (int i = 0; i < n; i++) {
    x[i] = 1.0;
    y[i] = 2.0;
  }
}

double saxpy(double* x, const double* y, double a, int n) {
  double sum = 0.0;
#ifdef USE_OMP
#pragma omp parallel for reduction(+:sum)
#endif
  for (int i = 0; i < n; i++) {
    x[i] = a * x[i] + y[i];
    sum += x[i];
  }
  return sum;
}
"#,
    );

    let compile_commands = r#"[
      {"directory": "/build", "file": "solver.cpp",
       "arguments": ["clang++", "-O2", "solver.cpp"]},
      {"directory": "/build", "file": "solver.cpp",
       "arguments": ["clang++", "-O2", "-fopenmp", "-DUSE_OMP", "solver.cpp"]}
    ]"#;

    let commands = parse_compile_commands(compile_commands).expect("bad compile_commands.json");
    println!("parsed {} compile commands", commands.len());
    for c in &commands {
        println!("  {} {:?} defines={:?}", c.file, c.compiler(), c.defines());
    }

    let db = index_compilation_db("solver", &sources, &commands).expect("indexing failed");
    println!("\n{}", inventory(&db));

    // Persist + reload the portable Codebase DB.
    let bytes = db.to_bytes();
    println!("codebase DB: {} bytes (svpack + svz)", bytes.len());
    let reloaded = CodebaseDb::from_bytes(&bytes).expect("reload failed");
    assert_eq!(reloaded, db);

    // How much does turning on OpenMP change the code, per metric?
    println!("\nserial-config vs OpenMP-config divergence:");
    for metric in [Metric::Source, Metric::TSrc, Metric::TSem, Metric::TIr] {
        let m = model_matrix(&reloaded, metric, Variant::PLAIN);
        println!("  {:<8} {:.4}", metric.name(), m.get(0, 1));
    }
    println!(
        "\nNote the T_sem jump relative to T_src: the pragma is one source \
         line but a full parallel region semantically."
    );
}
