//! Integration tests for the analysis service: a real TCP server, real
//! clients, full index → compare → cluster sessions, protocol abuse, and
//! the cache/dedup guarantees under concurrency.

use silvervale::serve::AnalysisService;
use silvervale::svjson::Json;
use silvervale::{divergence_from, index_app, model_matrix, pipeline};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use svmetrics::{Metric, Variant};
use svserve::{
    serve, serve_with, Client, Fault, FaultPlan, RetryPolicy, Router, ServeConfig, ServeError,
    ServeHandle,
};

/// Spin up a server on an OS-assigned port with the full handler set.
fn start_server() -> (ServeHandle, Arc<AnalysisService>) {
    let service = AnalysisService::new(1 << 22);
    let mut router = Router::new();
    service.register_on(&mut router);
    let handle = serve("127.0.0.1:0", router, 2).expect("bind test server");
    (handle, service)
}

fn num(v: Option<&Json>) -> f64 {
    v.and_then(Json::as_f64).unwrap_or(f64::NAN)
}

#[test]
fn metrics_request_inspects_a_live_server() {
    let (handle, _service) = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.call("index", Json::obj([("app", Json::str("minibude"))])).unwrap();
    client
        .call("matrix", Json::obj([("db", Json::str("minibude")), ("metric", Json::str("t_sem"))]))
        .unwrap();
    let m = client.call("metrics", Json::Null).unwrap();
    let counters = m.get("counters").expect("counters section");
    // Server, pool, app-service, and cache registries are all merged in.
    assert!(num(counters.get("server.requests")) >= 3.0);
    assert!(num(counters.get("pool.executed")) >= 2.0);
    assert!(num(counters.get("service.pair_computes")) > 0.0);
    assert!(num(counters.get("cache.insertions")) > 0.0);
    assert_eq!(num(counters.get("service.databases")), 1.0);
    // Pool latency histograms carry one sample per executed job.
    let hists = m.get("histograms").expect("histograms section");
    let wait = hists.get("pool.queue_wait_us").expect("queue-wait histogram");
    assert!(num(wait.get("count")) >= 2.0);
    assert!(num(wait.get("p50")) <= num(wait.get("max")));
    let exec = hists.get("pool.exec_us").expect("exec-time histogram");
    assert!(num(exec.get("max")) > 0.0, "matrix job took measurable time");
    // Cache gauges reflect resident entries.
    let gauges = m.get("gauges").expect("gauges section");
    assert!(num(gauges.get("cache.entries")) > 0.0);
    assert!(num(gauges.get("cache.bytes")) > 0.0);
    handle.shutdown();
}

#[test]
fn index_compare_cluster_session_end_to_end() {
    let (handle, _service) = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();

    // index
    let r = client.call("index", Json::obj([("app", Json::str("babelstream"))])).unwrap();
    assert_eq!(r.get("db").and_then(Json::as_str), Some("babelstream"));
    assert_eq!(num(r.get("units")), 10.0);

    // inventory
    let r = client.call("inventory", Json::obj([("db", Json::str("babelstream"))])).unwrap();
    let text = r.get("text").and_then(Json::as_str).unwrap();
    assert!(text.contains("babelstream") && text.contains("CUDA"));

    // compare — must equal the one-shot pipeline, value for value.
    let r = client
        .call(
            "compare",
            Json::obj([
                ("db", Json::str("babelstream")),
                ("metric", Json::str("t_sem")),
                ("from", Json::str("Serial")),
            ]),
        )
        .unwrap();
    let db = index_app(svcorpus::App::BabelStream, false).unwrap();
    let direct = divergence_from(&db, Metric::TSem, Variant::PLAIN, "Serial").unwrap();
    let served = r.get("divergences").and_then(Json::as_array).unwrap();
    assert_eq!(served.len(), direct.len());
    for item in served {
        let label = item.get("label").and_then(Json::as_str).unwrap();
        let d = num(item.get("divergence"));
        let expect = direct.iter().find(|(l, _)| l == label).unwrap().1;
        assert_eq!(d, expect, "{label}: served divergence differs from pipeline");
    }

    // matrix — bit-identical to the pipeline matrix, across the wire.
    let r = client
        .call(
            "matrix",
            Json::obj([("db", Json::str("babelstream")), ("metric", Json::str("t_sem"))]),
        )
        .unwrap();
    let m = model_matrix(&db, Metric::TSem, Variant::PLAIN);
    let labels: Vec<&str> =
        r.get("labels").and_then(Json::as_array).unwrap().iter().filter_map(Json::as_str).collect();
    assert_eq!(labels, m.labels().iter().map(String::as_str).collect::<Vec<_>>());
    let rows = r.get("rows").and_then(Json::as_array).unwrap();
    for (i, row) in rows.iter().enumerate() {
        for (j, cell) in row.as_array().unwrap().iter().enumerate() {
            assert_eq!(cell.as_f64().unwrap(), m.get(i, j), "cell ({i}, {j})");
        }
    }

    // cluster
    let r = client
        .call(
            "cluster",
            Json::obj([("db", Json::str("babelstream")), ("metric", Json::str("t_sem"))]),
        )
        .unwrap();
    let dendro = r.get("dendrogram").and_then(Json::as_str).unwrap();
    let expect = pipeline::model_dendrogram(&db, Metric::TSem, Variant::PLAIN).render();
    assert_eq!(dendro, expect, "served dendrogram differs from pipeline");
    assert!(r.get("heatmap").and_then(Json::as_str).is_some());

    handle.shutdown();
}

#[test]
fn repeated_compare_is_served_from_cache() {
    let (handle, service) = start_server();
    let db = index_app(svcorpus::App::MiniBude, false).unwrap();
    service.insert_db("minibude", db);

    let mut client = Client::connect(handle.addr()).unwrap();
    let params = Json::obj([
        ("db", Json::str("minibude")),
        ("metric", Json::str("t_sem")),
        ("from", Json::str("Serial")),
    ]);

    let first = client.call("compare", params.clone()).unwrap();
    let computes_after_first = service.pair_computes();
    assert!(computes_after_first > 0, "cold compare computed pairs");
    let stats = client.call("stats", Json::Null).unwrap();
    let hits_cold = num(stats.get("app").and_then(|a| a.get("cache")).and_then(|c| c.get("hits")));

    let second = client.call("compare", params).unwrap();
    assert_eq!(second, first, "cache-served response differs");
    assert_eq!(service.pair_computes(), computes_after_first, "repeated compare recomputed pairs");
    let stats = client.call("stats", Json::Null).unwrap();
    let cache = stats.get("app").and_then(|a| a.get("cache")).unwrap();
    assert!(num(cache.get("hits")) > hits_cold, "cache hit counter did not increment");

    handle.shutdown();
}

#[test]
fn malformed_oversized_and_unknown_requests_get_structured_errors() {
    let (handle, _service) = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Malformed JSON frame.
    client.send_raw("this is not json\n").unwrap();
    let (_, res) = client.recv().unwrap();
    assert_eq!(res.unwrap_err().code, "parse_error");

    // Valid JSON, invalid request shape.
    client.send_raw("{\"no\":\"id or method\"}\n").unwrap();
    let (_, res) = client.recv().unwrap();
    assert_eq!(res.unwrap_err().code, "parse_error");

    // Oversized frame: above MAX_FRAME, the server must reject and resync.
    let mut big = String::with_capacity(svserve::MAX_FRAME + 64);
    big.push_str("{\"id\":1,\"method\":\"ping\",\"params\":\"");
    big.push_str(&"x".repeat(svserve::MAX_FRAME));
    big.push_str("\"}\n");
    client.send_raw(&big).unwrap();
    let (_, res) = client.recv().unwrap();
    assert_eq!(res.unwrap_err().code, "frame_too_large");

    // Unknown method.
    let err = client.call("frobnicate", Json::Null).unwrap_err();
    assert_eq!(err.code, "unknown_method");
    assert!(err.message.contains("frobnicate"));

    // Bad params on a real method.
    let err = client.call("inventory", Json::Null).unwrap_err();
    assert_eq!(err.code, "bad_params");

    // Missing DB.
    let err = client.call("inventory", Json::obj([("db", Json::str("ghost"))])).unwrap_err();
    assert_eq!(err.code, "not_found");

    // After all that abuse the same connection still works.
    assert_eq!(client.call("ping", Json::Null).unwrap(), Json::str("pong"));

    handle.shutdown();
}

#[test]
fn concurrent_identical_matrix_requests_compute_pairs_once() {
    let (handle, service) = start_server();
    let db = index_app(svcorpus::App::TeaLeaf, false).unwrap();
    service.insert_db("tealeaf", db);
    let addr = handle.addr();

    let n = 6;
    let workers: Vec<_> = (0..n)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client
                    .call(
                        "matrix",
                        Json::obj([("db", Json::str("tealeaf")), ("metric", Json::str("t_sem"))]),
                    )
                    .unwrap()
                    .to_string_compact()
            })
        })
        .collect();
    let results: Vec<String> = workers.into_iter().map(|t| t.join().unwrap()).collect();
    for r in &results[1..] {
        assert_eq!(r, &results[0], "concurrent responses diverged");
    }

    // 10 models → 45 unique pairs; across N concurrent identical requests
    // the scheduler's in-flight dedup plus the cache admit each pair to be
    // computed at most once.
    assert!(service.pair_computes() <= 45, "pairs recomputed: {} > 45", service.pair_computes());

    // The scheduler accounted for every request, and dedup + execution
    // cover all submissions.
    let stats = handle.stats_json();
    let pool = stats.get("pool").unwrap();
    let submitted = num(pool.get("jobs_submitted"));
    let executed = num(pool.get("jobs_executed"));
    let deduped = num(pool.get("jobs_deduped"));
    assert_eq!(submitted, n as f64);
    assert_eq!(executed + deduped, submitted);
    assert!(executed >= 1.0);

    let final_stats = handle.shutdown();
    assert!(final_stats.get("app").is_some(), "shutdown stats include the app section");
}

/// A handler gate: requests through gated handlers announce themselves
/// (`entered`) and then block until the test opens the gate — the
/// deterministic way to hold a worker busy / keep a job queued.
struct Gate {
    state: Mutex<bool>,
    cv: Condvar,
    entered: AtomicUsize,
}

impl Gate {
    fn new() -> Arc<Gate> {
        Arc::new(Gate {
            state: Mutex::new(false),
            cv: Condvar::new(),
            entered: AtomicUsize::new(0),
        })
    }

    fn pass(&self) {
        self.entered.fetch_add(1, Ordering::SeqCst);
        let mut open = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while !*open {
            open = self.cv.wait(open).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn open(&self) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_all();
    }
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    for _ in 0..500 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}");
}

fn counter(client: &mut Client, name: &str) -> f64 {
    let m = client.call("metrics", Json::Null).unwrap();
    num(m.get("counters").and_then(|c| c.get(name)))
}

/// The headline ISSUE 3 bug: a panicking handler used to kill a pool
/// worker and leave the client blocked forever in the ticket wait.  Now
/// the panic is caught and answered, the pool keeps serving, and a panic
/// that escapes past the catch (injected at the `pool.worker`
/// infrastructure site) respawns the dead worker.
#[test]
fn panicking_handler_replies_with_error_and_pool_self_heals() {
    let plan = FaultPlan::new(1001);
    let mut router = Router::new();
    router.register("boom", |_| panic!("handler exploded"));
    router.register("ok", |_| Ok(Json::str("fine")));
    let handle = serve_with(
        "127.0.0.1:0",
        router,
        ServeConfig { workers: 1, faults: Some(Arc::clone(&plan)), ..ServeConfig::default() },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Handler panic: structured error reply, not a hang or dead socket.
    let err = client.call("boom", Json::Null).unwrap_err();
    assert_eq!(err.code, "panic");
    assert!(err.message.contains("handler exploded"), "{}", err.message);
    // The same connection and the same (sole) worker keep serving.
    assert_eq!(client.call("ok", Json::Null).unwrap(), Json::str("fine"));
    assert!(counter(&mut client, "pool.panics") >= 1.0);

    // Worker death: inject a panic outside the job's catch_unwind.  The
    // respawn guard must answer the client and replace the worker.
    plan.script("pool.worker", [Fault::Panic("worker killed".into())]);
    let err = client.call("ok", Json::Null).unwrap_err();
    assert_eq!(err.code, "panic");
    // Only a respawned worker can serve this (the pool had one worker).
    assert_eq!(client.call("ok", Json::Null).unwrap(), Json::str("fine"));
    assert_eq!(counter(&mut client, "pool.respawns"), 1.0);

    let stats = handle.shutdown();
    assert!(num(stats.get("pool").and_then(|p| p.get("panics"))) >= 2.0);
    assert_eq!(num(stats.get("pool").and_then(|p| p.get("respawns"))), 1.0);
}

/// Injected handler latency must convert into a timely `deadline_exceeded`
/// reply — the client never waits out the slow handler.
#[test]
fn deadline_exceeded_under_injected_latency() {
    let plan = FaultPlan::new(1002);
    plan.script("pool.execute", [Fault::Delay(Duration::from_millis(600))]);
    let mut router = Router::new();
    router.register("fast", |_| Ok(Json::str("done")));
    let handle = serve_with(
        "127.0.0.1:0",
        router,
        ServeConfig {
            workers: 1,
            deadline: Some(Duration::from_millis(60)),
            faults: Some(Arc::clone(&plan)),
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let t0 = Instant::now();
    let err = client.call("fast", Json::Null).unwrap_err();
    assert_eq!(err.code, "deadline_exceeded");
    assert!(
        t0.elapsed() < Duration::from_millis(500),
        "reply must beat the 600ms injected delay: {:?}",
        t0.elapsed()
    );
    assert_eq!(plan.fired("pool.execute"), 1, "the delay fault actually fired");

    // Once the slow job has finished (and left the in-flight table), the
    // same method succeeds — the injected latency is exhausted.
    wait_until("slow job completion", || counter(&mut client, "pool.executed") >= 1.0);
    assert_eq!(client.call("fast", Json::Null).unwrap(), Json::str("done"));
    assert!(counter(&mut client, "pool.deadline_exceeded") >= 1.0);
    handle.shutdown();
}

/// A full queue sheds with a retryable `overloaded`, and the client's
/// backoff retry succeeds once the queue frees up.
#[test]
fn overloaded_shed_is_retryable_and_backoff_succeeds() {
    let gate = Gate::new();
    let mut router = Router::new();
    let g = Arc::clone(&gate);
    router.register("gated_a", move |_| {
        g.pass();
        Ok(Json::str("a"))
    });
    let g = Arc::clone(&gate);
    router.register("gated_b", move |_| {
        g.pass();
        Ok(Json::str("b"))
    });
    router.register("fast", |_| Ok(Json::str("done")));
    let handle = serve_with(
        "127.0.0.1:0",
        router,
        ServeConfig { workers: 1, max_queue: 1, ..ServeConfig::default() },
    )
    .unwrap();
    let addr = handle.addr();

    // Occupy the single worker, then fill the single queue slot.
    let c1 = std::thread::spawn(move || Client::connect(addr).unwrap().call("gated_a", Json::Null));
    wait_until("worker busy", || gate.entered.load(Ordering::SeqCst) == 1);
    let c2 = std::thread::spawn(move || Client::connect(addr).unwrap().call("gated_b", Json::Null));
    let mut probe = Client::connect(addr).unwrap();
    wait_until("queue full", || {
        num(probe.call("health", Json::Null).unwrap().get("queued")) >= 1.0
    });

    // Plain call: shed immediately with the retryable error.
    let mut client = Client::connect(addr).unwrap();
    let err = client.call("fast", Json::Null).unwrap_err();
    assert_eq!(err.code, "overloaded");
    assert!(err.is_retryable());

    // Retrying call in the background; open the gate once it has been
    // shed at least once, so the retry path is provably exercised.
    let retry = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        let policy = RetryPolicy {
            max_retries: 20,
            base_delay: Duration::from_millis(20),
            max_delay: Duration::from_millis(100),
            seed: 77,
        };
        let r = c.call_with_retry("fast", Json::Null, &policy);
        (r, c.retries())
    });
    wait_until("a shed retry attempt", || counter(&mut probe, "pool.shed") >= 2.0);
    gate.open();

    let (result, retries) = retry.join().unwrap();
    assert_eq!(result.unwrap(), Json::str("done"), "backoff retry eventually succeeded");
    assert!(retries >= 1, "at least one retry happened");
    assert_eq!(c1.join().unwrap().unwrap(), Json::str("a"));
    assert_eq!(c2.join().unwrap().unwrap(), Json::str("b"));
    assert!(counter(&mut probe, "pool.shed") >= 2.0);
    handle.shutdown();
}

/// Graceful drain: a `shutdown` request lets the in-flight job finish
/// (its client gets the real result), sheds queued jobs with
/// `shutting_down`, and the final stats report the drain counters.
#[test]
fn graceful_drain_completes_inflight_and_sheds_queued() {
    let gate = Gate::new();
    let mut router = Router::new();
    let g = Arc::clone(&gate);
    router.register("gated", move |_| {
        g.pass();
        Ok(Json::str("finished"))
    });
    router.register("idle", |_| Ok(Json::str("idle")));
    let handle =
        serve_with("127.0.0.1:0", router, ServeConfig { workers: 1, ..ServeConfig::default() })
            .unwrap();
    let addr = handle.addr();

    let inflight =
        std::thread::spawn(move || Client::connect(addr).unwrap().call("gated", Json::Null));
    wait_until("worker busy", || gate.entered.load(Ordering::SeqCst) == 1);
    let queued =
        std::thread::spawn(move || Client::connect(addr).unwrap().call("idle", Json::Null));
    let mut probe = Client::connect(addr).unwrap();
    wait_until("job queued", || {
        num(probe.call("health", Json::Null).unwrap().get("queued")) >= 1.0
    });
    assert_eq!(
        probe.call("health", Json::Null).unwrap().get("status").and_then(Json::as_str),
        Some("ok")
    );

    // Request shutdown while one job runs and one is queued.
    let r = probe.call("shutdown", Json::Null).unwrap();
    assert_eq!(r.as_str(), Some("shutting down"));
    gate.open();

    assert_eq!(inflight.join().unwrap().unwrap(), Json::str("finished"));
    let err: ServeError = queued.join().unwrap().unwrap_err();
    assert_eq!(err.code, "shutting_down");
    assert!(err.is_retryable(), "shed-on-drain is a retry-me-elsewhere error");

    let stats = handle.wait();
    let pool = stats.get("pool").unwrap();
    assert_eq!(num(pool.get("jobs_drained")), 1.0, "the queued job was shed");
    assert!(num(pool.get("jobs_executed")) >= 1.0, "the in-flight job completed");
}

#[test]
fn shutdown_request_stops_the_server_and_reports_stats() {
    let (handle, _service) = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.call("ping", Json::Null).unwrap(), Json::str("pong"));
    let r = client.call("shutdown", Json::Null).unwrap();
    assert_eq!(r.as_str(), Some("shutting down"));
    let stats = handle.wait();
    assert!(num(stats.get("server").and_then(|s| s.get("requests"))) >= 2.0);
    let text = svserve::render_stats(&stats);
    assert!(text.contains("svserve statistics"));
}
