//! Integration tests for the binary wire protocol and its interplay with
//! the JSON compat listener: transparent negotiation, result parity
//! across wires, verbatim svpack carriage via the artifact store,
//! max-frame guards on both listeners, and the per-listener telemetry.

use silvervale::serve::AnalysisService;
use silvervale::svjson::Json;
use silvervale::{index_app, pipeline};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use svcorpus::App;
use svserve::binproto::{self, BinFrameReader, BinRead};
use svserve::proto::Request;
use svserve::{serve_with, Client, Router, ServeConfig, ServeHandle, Wire, MAX_FRAME};

/// Spin up a dual-listener server with the full handler set.
fn start_server() -> (ServeHandle, Arc<AnalysisService>) {
    let service = AnalysisService::new(1 << 22);
    let mut router = Router::new();
    service.register_on(&mut router);
    let config = ServeConfig { workers: 2, ..ServeConfig::default() };
    let handle = serve_with("127.0.0.1:0", router, config).expect("bind test server");
    assert!(handle.bin_addr().is_some(), "binary listener on by default");
    (handle, service)
}

fn num(v: Option<&Json>) -> f64 {
    v.and_then(Json::as_f64).unwrap_or(f64::NAN)
}

#[test]
fn negotiated_client_upgrades_and_answers_match_json() {
    let (handle, _service) = start_server();
    let mut bin = Client::connect_negotiated(handle.addr()).unwrap();
    assert_eq!(bin.wire(), Wire::Bin, "server advertises, client upgrades");
    assert_eq!(bin.proto_fallbacks(), 0);
    let mut json = Client::connect(handle.addr()).unwrap();
    assert_eq!(json.wire(), Wire::Json);

    bin.call("index", Json::obj([("app", Json::str("minibude"))])).unwrap();
    let params = || {
        Json::obj([
            ("db", Json::str("minibude")),
            ("metric", Json::str("t_sem")),
            ("from", Json::str("Serial")),
        ])
    };
    // The same request must produce the identical value on either wire —
    // the binary framing changes carriage, never content.
    let over_bin = bin.call("compare", params()).unwrap();
    let over_json = json.call("compare", params()).unwrap();
    assert_eq!(over_bin, over_json);
    // Errors carry the same code space too.
    let e_bin = bin.call("compare", Json::obj([("db", Json::str("nope"))])).unwrap_err();
    let e_json = json.call("compare", Json::obj([("db", Json::str("nope"))])).unwrap_err();
    assert_eq!(e_bin.code, e_json.code);
    assert_eq!(e_bin.code, "not_found");
    handle.shutdown();
}

#[test]
fn negotiation_falls_back_to_json_when_bin_is_disabled() {
    let service = AnalysisService::new(1 << 20);
    let mut router = Router::new();
    service.register_on(&mut router);
    let config = ServeConfig { workers: 1, bin_enabled: false, ..ServeConfig::default() };
    let handle = serve_with("127.0.0.1:0", router, config).unwrap();
    assert!(handle.bin_addr().is_none());

    let mut client = Client::connect_negotiated(handle.addr()).unwrap();
    assert_eq!(client.wire(), Wire::Json, "nothing to upgrade to");
    assert_eq!(client.proto_fallbacks(), 1);
    // The fallback is observable in the merged metrics document.
    let m = client.merged_metrics().unwrap();
    let counters = m.get("counters").expect("counters section");
    assert_eq!(num(counters.get("client.proto_fallbacks")), 1.0);
    // And the client still works fine on the compat wire.
    let health = client.call("health", Json::Null).unwrap();
    assert_eq!(health.get("bin_port"), None, "no binary listener advertised");
    handle.shutdown();
}

#[test]
fn tree_blob_is_verbatim_svpack_on_both_wires() {
    let (handle, service) = start_server();
    let mut bin = Client::connect_negotiated(handle.addr()).unwrap();
    assert_eq!(bin.wire(), Wire::Bin);
    bin.call("index", Json::obj([("app", Json::str("minibude"))])).unwrap();

    // The ground truth: the same deterministic index, serialised locally.
    let db = index_app(App::MiniBude, false).unwrap();
    let entry = db.entry("Serial").expect("Serial unit");
    let expected = svtree::pack::write_tree(entry.artifacts.t_sem.tree());
    let fp = entry.artifacts.t_sem.structural_hash();

    let params = || {
        Json::obj([
            ("db", Json::str("minibude")),
            ("label", Json::str("Serial")),
            ("metric", Json::str("t_sem")),
        ])
    };
    let (meta, blobs) = bin.call_blob("tree", params()).unwrap();
    assert_eq!(blobs.len(), 1);
    assert_eq!(blobs[0], expected, "svpack bytes ride the binary frame verbatim");
    assert_eq!(svtree::pack::probe_tree(&blobs[0]), Some(2), "svpack v2 payload");
    assert_eq!(meta.get("fp").and_then(Json::as_str), Some(format!("{fp:016x}").as_str()));
    assert_eq!(num(meta.get("bytes")), expected.len() as f64);

    // The JSON compat listener folds the same bytes in as hex — after
    // unfolding, both wires return the identical (meta, blob) pair.
    let mut json = Client::connect(handle.addr()).unwrap();
    let (meta_j, blobs_j) = json.call_blob("tree", params()).unwrap();
    assert_eq!(meta_j, meta);
    assert_eq!(blobs_j, blobs);

    // Counter-proof that the store served it: the tree was appended at
    // index time (content-addressed) and the fetches added no records.
    assert!(service.store().contains(fp));
    let m = bin.call("metrics", Json::Null).unwrap();
    let counters = m.get("counters").expect("counters section");
    assert!(num(counters.get("store.appends")) >= 20.0, "10 units x t_sem+t_src");
    assert!(num(counters.get("store.append_bytes")) > 0.0);
    handle.shutdown();
}

#[test]
fn oversized_binary_frame_is_rejected_then_closed() {
    let (handle, _service) = start_server();
    let bin_addr = handle.bin_addr().unwrap();
    let mut stream = TcpStream::connect(bin_addr).unwrap();
    // A length prefix over MAX_FRAME must be refused before buffering —
    // and the stream cannot resync on a length, so the server closes it.
    stream.write_all(&((MAX_FRAME as u32) + 1).to_le_bytes()).unwrap();
    let mut reader = BinFrameReader::new(stream.try_clone().unwrap());
    match reader.read_frame().unwrap() {
        BinRead::Frame(payload) => {
            let (id, res) = binproto::decode_response(&payload).unwrap();
            assert_eq!(id, None);
            assert_eq!(res.unwrap_err().code, "frame_too_large");
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    assert_eq!(reader.read_frame().unwrap(), BinRead::Eof, "connection closed after reply");
    handle.shutdown();
}

#[test]
fn oversized_json_line_is_rejected_and_connection_survives() {
    let (handle, _service) = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    let huge = format!("{}\n", "x".repeat(MAX_FRAME + 1));
    client.send_raw(&huge).unwrap();
    let (_, res) = client.recv().unwrap();
    assert_eq!(res.unwrap_err().code, "frame_too_large");
    // Newline framing resyncs: the same connection keeps serving.
    let health = client.call("health", Json::Null).unwrap();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    handle.shutdown();
}

#[test]
fn corrupt_binary_payload_is_parse_error_and_connection_survives() {
    let (handle, _service) = start_server();
    let bin_addr = handle.bin_addr().unwrap();
    let mut stream = TcpStream::connect(bin_addr).unwrap();
    // A well-framed but undecodable payload: framing is intact, so the
    // connection survives with a parse_error reply.
    let garbage = [0xffu8, 0xee, 0xdd];
    stream.write_all(&(garbage.len() as u32).to_le_bytes()).unwrap();
    stream.write_all(&garbage).unwrap();
    let mut reader = BinFrameReader::new(stream.try_clone().unwrap());
    let BinRead::Frame(payload) = reader.read_frame().unwrap() else {
        panic!("expected a reply frame");
    };
    let (_, res) = binproto::decode_response(&payload).unwrap();
    assert_eq!(res.unwrap_err().code, "parse_error");

    // Same connection, now a valid request.
    let req = Request { id: 7, method: "health".into(), params: Json::Null, trace: None };
    stream.write_all(&binproto::encode_request(&req, &[])).unwrap();
    let BinRead::Frame(payload) = reader.read_frame().unwrap() else {
        panic!("expected a health reply");
    };
    let (id, res) = binproto::decode_response(&payload).unwrap();
    assert_eq!(id, Some(7));
    let (health, _) = res.unwrap();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    handle.shutdown();
}

#[test]
fn stats_window_breaks_requests_down_per_listener() {
    let (handle, _service) = start_server();
    let mut bin = Client::connect_negotiated(handle.addr()).unwrap();
    assert_eq!(bin.wire(), Wire::Bin);
    let mut json = Client::connect(handle.addr()).unwrap();
    for _ in 0..5 {
        bin.call("health", Json::Null).unwrap();
        json.call("health", Json::Null).unwrap();
    }
    let stats = json.call("stats", Json::Null).unwrap();
    let w = stats.get("window").expect("window section");
    assert!(num(w.get("json_rate_10s")) > 0.0, "json listener saw traffic");
    assert!(num(w.get("bin_rate_10s")) > 0.0, "bin listener saw traffic");
    // The rendered dashboard surfaces the same split.
    let rendered = svserve::render_stats(&stats);
    assert!(rendered.contains("json req/s"), "per-proto line in render:\n{rendered}");
    handle.shutdown();
}

#[test]
fn binary_wire_carries_trace_context() {
    let (handle, _service) = start_server();
    let mut bin = Client::connect_negotiated(handle.addr()).unwrap();
    assert_eq!(bin.wire(), Wire::Bin);
    bin.set_tracing(true);
    bin.call("index", Json::obj([("app", Json::str("minibude"))])).unwrap();
    let trace_id = bin.last_trace_id().expect("traced call records its id");
    // The server's flight recorder holds spans under the propagated id.
    let reply =
        bin.call("trace", Json::obj([("id", Json::str(svserve::id_hex(trace_id)))])).unwrap();
    let spans = match reply.get("spans") {
        Some(Json::Array(s)) => s.len(),
        _ => 0,
    };
    assert!(spans > 0, "server sampled spans for the binary-wire trace id");
    handle.shutdown();
}

#[test]
fn evaluate_and_cluster_match_across_wires() {
    let (handle, _service) = start_server();
    let mut bin = Client::connect_negotiated(handle.addr()).unwrap();
    let mut json = Client::connect(handle.addr()).unwrap();
    bin.call("index", Json::obj([("app", Json::str("babelstream"))])).unwrap();
    let params = || Json::obj([("db", Json::str("babelstream")), ("metric", Json::str("t_sem"))]);
    let c_bin = bin.call("cluster", params()).unwrap();
    let c_json = json.call("cluster", params()).unwrap();
    assert_eq!(c_bin, c_json, "cluster output identical across wires");
    // And both match the one-shot pipeline.
    let db = index_app(App::BabelStream, false).unwrap();
    let direct = pipeline::model_matrix(&db, svmetrics::Metric::TSem, svmetrics::Variant::PLAIN);
    let dendro = svcluster::cluster_rows(&direct);
    assert_eq!(c_bin.get("dendrogram").and_then(Json::as_str), Some(dendro.render().as_str()));
    handle.shutdown();
}
