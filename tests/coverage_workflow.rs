//! The `+coverage` workflow of Fig. 2's grey boxes: compile with coverage,
//! run on a reduced problem, feed the line profile back into the index and
//! measure masked variants.

use silvervale::{divergence_from, index_app, model_matrix};
use svcorpus::{unit, App, Model};
use svmetrics::{divergence, tree_of, Measured, Metric, Variant};

#[test]
fn indexing_with_coverage_runs_and_stores_profiles() {
    let db = index_app(App::MiniBude, true).unwrap();
    for e in &db.entries {
        let cov = e.coverage.as_ref().unwrap_or_else(|| panic!("{} missing coverage", e.label));
        assert!(cov.total_lines() > 10, "{}: {} lines covered", e.label, cov.total_lines());
    }
}

#[test]
fn coverage_masking_prunes_semantic_trees() {
    let db = index_app(App::MiniBude, true).unwrap();
    for e in &db.entries {
        let cov = e.coverage.as_ref().unwrap();
        let full = Measured::of(&e.artifacts);
        let masked = Measured::of_with_coverage(&e.artifacts, cov);
        let t_full = tree_of(&full, Metric::TSem, Variant::PLAIN);
        let t_masked = tree_of(&masked, Metric::TSem, Variant::COVERAGE);
        assert!(t_masked.size() <= t_full.size(), "{}", e.label);
        assert!(t_masked.size() > t_full.size() / 4, "{}: over-pruned", e.label);
    }
}

#[test]
fn coverage_variant_divergences_still_well_formed() {
    let db = index_app(App::BabelStream, true).unwrap();
    let v = Variant::COVERAGE;
    for metric in [Metric::Source, Metric::TSrc, Metric::TSem, Metric::TIr] {
        let divs = divergence_from(&db, metric, v, "Serial").unwrap();
        let serial = divs.iter().find(|(l, _)| l == "Serial").unwrap();
        assert_eq!(serial.1, 0.0, "{metric:?} self-divergence under coverage");
        assert!(divs.iter().filter(|(l, _)| l != "Serial").all(|(_, d)| *d > 0.0), "{metric:?}");
    }
}

#[test]
fn coverage_reduces_pp_noise() {
    // The SYCL giant header never executes; with coverage masking the
    // post-pp Source divergence collapses back toward the plain view —
    // the paper's motivation for the coverage modifier.
    let serial = unit(App::BabelStream, Model::Serial).unwrap();
    let sycl = unit(App::BabelStream, Model::SyclUsm).unwrap();
    let run_serial = svexec::run_unit(&serial).unwrap();
    let run_sycl = svexec::run_unit(&sycl).unwrap();

    let pp = Variant::PP;
    let pp_cov = Variant { preprocessor: true, coverage: true, inlining: false };
    let plain_pp = divergence(Metric::Source, pp, &Measured::new(&serial), &Measured::new(&sycl));
    let masked_pp = divergence(
        Metric::Source,
        pp_cov,
        &Measured::with_coverage(&serial, &run_serial.coverage),
        &Measured::with_coverage(&sycl, &run_sycl.coverage),
    );
    assert!(
        masked_pp.distance < plain_pp.distance / 2,
        "coverage must strip the dead header: {} vs {}",
        masked_pp.distance,
        plain_pp.distance
    );
}

#[test]
fn coverage_matrix_stays_clusterable() {
    let db = index_app(App::BabelStream, true).unwrap();
    let m = model_matrix(&db, Metric::TSem, Variant::COVERAGE);
    assert_eq!(m.len(), 10);
    let cuda_hip = m.get_by_label("CUDA", "HIP").unwrap();
    let cuda_sycl = m.get_by_label("CUDA", "SYCL (acc)").unwrap();
    assert!(cuda_hip < cuda_sycl, "CUDA-HIP {cuda_hip} vs CUDA-SYCL {cuda_sycl}");
}

#[test]
fn dead_code_invisible_under_coverage() {
    // Two units identical except for an uncalled function must have zero
    // T_sem+coverage divergence.
    use svlang::source::SourceSet;
    use svlang::unit::{compile_unit, UnitOptions};
    let base = "int live() { return 1; }\nint main() { return live() - 1; }";
    let extra =
        "int live() { return 1; }\nint dead() { return 9; }\nint main() { return live() - 1; }";
    let mut ss = SourceSet::new();
    let a = ss.add("a.cpp", base);
    let b = ss.add("b.cpp", extra);
    let ua = compile_unit(&ss, a, &UnitOptions::default()).unwrap();
    let ub = compile_unit(&ss, b, &UnitOptions::default()).unwrap();
    let ra = svexec::run_unit(&ua).unwrap();
    let rb = svexec::run_unit(&ub).unwrap();

    let plain = divergence(Metric::TSem, Variant::PLAIN, &Measured::new(&ua), &Measured::new(&ub));
    assert!(plain.distance > 0, "dead code visible without coverage");

    let covered = divergence(
        Metric::TSem,
        Variant::COVERAGE,
        &Measured::with_coverage(&ua, &ra.coverage),
        &Measured::with_coverage(&ub, &rb.coverage),
    );
    assert_eq!(covered.distance, 0, "dead code must vanish under coverage");
}
