//! End-to-end tests of the `silvervale` command-line tool.

use std::process::Command;

fn sv() -> Command {
    Command::new(env!("CARGO_BIN_EXE_silvervale"))
}

fn run_ok(args: &[&str]) -> String {
    let out = sv().args(args).output().expect("spawn silvervale");
    assert!(
        out.status.success(),
        "silvervale {args:?} failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn index_inventory_compare_cluster_roundtrip() {
    let dir = std::env::temp_dir().join(format!("svcli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("bs.svdb");
    let db_s = db.to_str().unwrap();

    let out = run_ok(&["index", "--app", "babelstream", "-o", db_s]);
    assert!(out.contains("indexed 10 units"), "{out}");
    assert!(db.exists());

    let inv = run_ok(&["inventory", db_s]);
    assert!(inv.contains("babelstream"));
    assert!(inv.contains("SYCL (USM)"));
    assert_eq!(inv.lines().count(), 2 + 10);

    let cmp = run_ok(&["compare", db_s, "--metric", "t_sem", "--from", "Serial"]);
    assert!(cmp.contains("divergence from Serial"), "{cmp}");
    assert!(cmp.contains("OpenMP"));
    // sorted ascending: serial itself first at 0.
    let first_data_line = cmp.lines().nth(1).unwrap();
    assert!(first_data_line.contains("Serial"), "{cmp}");

    let clu = run_ok(&["cluster", db_s, "--metric", "t_src"]);
    assert!(clu.contains("├──"), "{clu}");
    assert!(clu.contains("CUDA"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fortran_index_works() {
    let dir = std::env::temp_dir().join(format!("svcli-f-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("f.svdb");
    let db_s = db.to_str().unwrap();
    run_ok(&["index", "--fortran", "-o", db_s]);
    let inv = run_ok(&["inventory", db_s]);
    assert!(inv.contains("DoConcurrent"), "{inv}");
    let cmp = run_ok(&["compare", db_s, "--metric", "t_sem", "--from", "Sequential"]);
    assert!(cmp.contains("OpenACC"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cascade_and_chart() {
    let out = run_ok(&["cascade", "--app", "tealeaf"]);
    assert!(out.contains("Φ="), "{out}");
    assert!(out.contains("Kokkos"));

    let dir = std::env::temp_dir().join(format!("svcli-c-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("tl.svdb");
    let db_s = db.to_str().unwrap();
    run_ok(&["index", "--app", "tealeaf", "-o", db_s]);
    let chart = run_ok(&["chart", db_s, "--app", "tealeaf"]);
    assert!(chart.contains("legend"), "{chart}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compile_db_workflow_from_disk() {
    let dir = std::env::temp_dir().join(format!("svcli-d-{}", std::process::id()));
    let src = dir.join("src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(
        src.join("app.cpp"),
        "#ifdef FAST\nint fast() { return 1; }\n#endif\nint main() { return 0; }\n",
    )
    .unwrap();
    let cdb = dir.join("compile_commands.json");
    std::fs::write(
        &cdb,
        r#"[{"directory":".","file":"app.cpp","arguments":["c++","app.cpp"]},
           {"directory":".","file":"app.cpp","arguments":["c++","-DFAST","app.cpp"]}]"#,
    )
    .unwrap();
    let db = dir.join("out.svdb");
    let out = run_ok(&[
        "index",
        "--compile-db",
        cdb.to_str().unwrap(),
        "--src-dir",
        src.to_str().unwrap(),
        "-o",
        db.to_str().unwrap(),
    ]);
    assert!(out.contains("indexed 2 units"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = sv().args(["index"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("index needs"), "{err}");

    let out = sv().args(["inventory", "/nonexistent/path.svdb"]).output().unwrap();
    assert!(!out.status.success());

    let out = sv().args(["index", "--app", "notanapp"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown app"));
}
