//! Live-server smoke test for the `evaluate` fan-out: a seeded candidate
//! population is ranked end-to-end through a real TCP server, one pool
//! job per candidate, with the correctness gate filtering wrong answers,
//! deterministic output per seed, and warm re-evaluation collapsing into
//! the candidate memo + TED cache (observable via the `metrics` builtin).

use silvervale::serve::AnalysisService;
use silvervale::svjson::Json;
use std::sync::Arc;
use svserve::{serve, Client, Router, ServeHandle};

fn start_server() -> (ServeHandle, Arc<AnalysisService>) {
    let service = AnalysisService::new(1 << 22);
    let mut router = Router::new();
    service.register_on(&mut router);
    let handle = serve("127.0.0.1:0", router, 4).expect("bind test server");
    (handle, service)
}

fn num(v: Option<&Json>) -> f64 {
    v.and_then(Json::as_f64).unwrap_or(f64::NAN)
}

fn counter(client: &mut Client, name: &str) -> f64 {
    let m = client.call("metrics", Json::Null).unwrap();
    num(m.get("counters").and_then(|c| c.get(name)))
}

#[test]
fn evaluate_ranks_100_candidates_through_a_live_server() {
    let (handle, _service) = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.call("index", Json::obj([("app", Json::str("babelstream"))])).unwrap();

    let params = Json::obj([
        ("db", Json::str("babelstream")),
        ("app", Json::str("babelstream")),
        ("candidates", Json::Num(100.0)),
        ("seed", Json::Num(11.0)),
        ("csv", Json::Bool(true)),
    ]);

    // Cold evaluation: every unique candidate is compiled, gated, and
    // scored as its own pool job.
    let cold = client.call("evaluate", params.clone()).unwrap();
    assert_eq!(num(cold.get("candidates")), 100.0);
    let rows = cold.get("rows").and_then(Json::as_array).unwrap();
    assert_eq!(rows.len(), 100, "one leaderboard row per candidate");

    // The gate produced a mixed population and the ranking respects it:
    // only correct candidates may score above zero, scores descend.
    let counts = cold.get("counts").unwrap();
    let correct = num(counts.get("correct"));
    let failed = num(counts.get("build-fail"))
        + num(counts.get("runtime-fail"))
        + num(counts.get("wrong-answer"));
    assert!(correct >= 1.0, "population includes correct ports");
    assert!(failed >= 1.0, "population includes gated-out ports");
    let mut prev = f64::INFINITY;
    for row in rows {
        let score = num(row.get("score"));
        assert!(score <= prev, "leaderboard must be sorted by score descending");
        prev = score;
        if row.get("class").and_then(Json::as_str) != Some("correct") {
            assert_eq!(score, 0.0, "gated-out candidates must score zero");
        }
    }

    // The reply carries every rendering the CLI prints.
    let text = cold.get("text").and_then(Json::as_str).unwrap().to_string();
    assert!(text.contains("correct"), "leaderboard text lists gate classes");
    assert!(cold.get("chart").and_then(Json::as_str).is_some(), "navigation chart attached");
    let csv = cold.get("csv").and_then(Json::as_str).unwrap();
    assert_eq!(csv.lines().count(), 101, "csv: header + one line per candidate");
    assert!(csv.starts_with("rank,candidate,model,class,score"), "csv header");

    let builds_cold = counter(&mut client, "service.cand_builds");
    assert!(builds_cold >= 1.0, "cold evaluation built candidates");
    let memo_hits_cold = counter(&mut client, "service.cand_memo_hits");

    // Warm evaluation: identical request, identical leaderboard — but the
    // candidate memo skips every compile + interpret, and the baseline
    // divergences come straight out of the TED cache.
    let warm = client.call("evaluate", params).unwrap();
    assert_eq!(
        warm.get("text").and_then(Json::as_str),
        Some(text.as_str()),
        "evaluation must be deterministic per seed"
    );
    assert_eq!(
        counter(&mut client, "service.cand_builds"),
        builds_cold,
        "warm evaluation must not rebuild any candidate"
    );
    assert!(
        counter(&mut client, "service.cand_memo_hits") > memo_hits_cold,
        "warm evaluation is served from the candidate memo"
    );
    assert!(
        counter(&mut client, "cache.hits") > 0.0,
        "duplicate candidates route their TBMD through the TED cache"
    );

    // The fan-out accounted one pool job per submitted candidate:
    // executions + in-flight dedups cover all submissions.
    let stats = handle.stats_json();
    let pool = stats.get("pool").unwrap();
    let submitted = num(pool.get("jobs_submitted"));
    assert!(submitted >= 200.0, "two evaluations fan out 100 sub-jobs each");
    assert_eq!(
        num(pool.get("jobs_executed")) + num(pool.get("jobs_deduped")),
        submitted,
        "every sub-job either executed or deduped in flight"
    );
    handle.shutdown();
}

#[test]
fn evaluate_rejects_bad_populations_and_unknown_apps() {
    let (handle, _service) = start_server();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.call("index", Json::obj([("app", Json::str("babelstream"))])).unwrap();

    let err = client
        .call(
            "evaluate",
            Json::obj([
                ("db", Json::str("babelstream")),
                ("app", Json::str("babelstream")),
                ("candidates", Json::Num(0.0)),
            ]),
        )
        .unwrap_err();
    assert_eq!(err.code, "bad_params");

    let err = client
        .call(
            "evaluate",
            Json::obj([("db", Json::str("babelstream")), ("app", Json::str("nosuchapp"))]),
        )
        .unwrap_err();
    assert_eq!(err.code, "bad_params");

    let err = client
        .call(
            "evaluate",
            Json::obj([("db", Json::str("ghost")), ("app", Json::str("babelstream"))]),
        )
        .unwrap_err();
    assert_eq!(err.code, "not_found");

    // The fan-out method is advertised alongside the plain handlers.
    let methods = client.call("methods", Json::Null).unwrap();
    let names: Vec<&str> = methods.as_array().unwrap().iter().filter_map(Json::as_str).collect();
    assert!(names.contains(&"evaluate"), "methods advertises evaluate: {names:?}");
    handle.shutdown();
}
