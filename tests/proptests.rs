//! Property-based tests over the core data structures and algorithms.

use proptest::prelude::*;
use std::sync::Arc;
use svdist::ted::{
    cell_width, naive_ted, ted_with, ted_with_mode, ted_within_with_mode, CellWidth, CostModel,
    KernelMode, Strategy as TedStrategy,
};
use svdist::{
    edit_distance_onp, label_histogram_lb, lcs_len, levenshtein, pqgram_lb, ted_shared, ted_within,
    ted_within_shared, SharedTree, TreeProfile,
};
use svtree::pack::{compress, decompress, read_tree, write_tree, write_tree_v1};
use svtree::{Interner, NodeId, Span, Tree, TreeBuilder};

// ---------------------------------------------------------------------------
// generators
// ---------------------------------------------------------------------------

/// A small random labelled tree (≤ `max_nodes` nodes, labels a..e).
fn arb_tree(max_nodes: usize) -> impl Strategy<Value = Tree> {
    // Pre-order label+arity encoding drives a deterministic builder.
    proptest::collection::vec((0u8..5, 0usize..3), 1..max_nodes).prop_map(|spec| {
        let mut tree = Tree::leaf(format!("n{}", spec[0].0));
        let mut frontier = vec![(tree.root().unwrap(), spec[0].1)];
        for &(label, arity) in &spec[1..] {
            // Attach to the first frontier node with remaining capacity.
            while let Some(&(node, remaining)) = frontier.last() {
                if remaining == 0 {
                    frontier.pop();
                } else {
                    frontier.last_mut().unwrap().1 -= 1;
                    let id = tree.push_child(node, format!("n{label}"), None);
                    frontier.push((id, arity));
                    break;
                }
            }
        }
        tree
    })
}

/// A random tree with spans for serialisation tests.
fn arb_spanned_tree() -> impl Strategy<Value = Tree> {
    (arb_tree(20), any::<u32>()).prop_map(|(t, seed)| {
        let mut i = seed % 97;
        let _ = t.map_labels(|l| l.to_string()).prune(|_, _| true).filter_splice(|_, _| true);
        // Rebuild with spans through the builder API.
        let mut b = svtree::TreeBuilder::new("root");
        for n in t.preorder() {
            i = (i * 31 + 7) % 997;
            b.leaf_span(t.label(n), Some(Span::line(i % 5, 1 + i % 100)));
        }
        b.finish()
    })
}

/// Rebuild `t` label-for-label onto `table`, so both operands of a TED sit
/// on one interner and the comparison takes the same-table `Sym` fast path.
fn reinterned_onto(table: &Arc<Interner>, t: &Tree) -> Tree {
    fn go(b: &mut TreeBuilder, t: &Tree, n: NodeId) {
        if t.arity(n) == 0 {
            b.leaf_span(t.label(n), t.span(n));
        } else {
            b.open_span(t.label(n), t.span(n));
            for &c in t.children(n) {
                go(b, t, c);
            }
            b.close();
        }
    }
    match t.root() {
        None => Tree::empty_in(Arc::clone(table)),
        Some(r) => {
            let mut b = TreeBuilder::with_span_in(Arc::clone(table), t.label(r), t.span(r));
            for &c in t.children(r) {
                go(&mut b, t, c);
            }
            b.finish()
        }
    }
}

// ---------------------------------------------------------------------------
// TED metric axioms (cross-validated against the independent oracle)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ted_matches_oracle(a in arb_tree(9), b in arb_tree(9)) {
        let expect = naive_ted(&a, &b, CostModel::UNIT);
        for s in [TedStrategy::Left, TedStrategy::Right, TedStrategy::Auto] {
            prop_assert_eq!(ted_with(&a, &b, CostModel::UNIT, s), expect);
        }
    }

    #[test]
    fn ted_matches_oracle_under_random_cost_models(
        a in arb_tree(8),
        b in arb_tree(8),
        del in 1u32..50,
        ins in 1u32..50,
        rel in 1u32..50,
    ) {
        // Non-unit weights exercise the widened u64 DP cells: every
        // strategy must agree with the independent recursive oracle.
        let costs = CostModel { delete: del, insert: ins, relabel: rel };
        let expect = naive_ted(&a, &b, costs);
        for s in [TedStrategy::Left, TedStrategy::Right, TedStrategy::Auto] {
            prop_assert_eq!(ted_with(&a, &b, costs, s), expect);
        }
    }

    #[test]
    fn kernel_modes_match_oracle_under_boundary_cost_models(
        a in arb_tree(8),
        b in arb_tree(8),
        del_i in 0usize..7,
        ins_i in 0usize..7,
        rel_i in 0usize..7,
    ) {
        // Weight palette mixing tiny values (narrow kernel) with boundary
        // values near u32::MAX (u64 fallback) and zero-cost operations
        // (degenerate ramps/scans in the vector kernel).
        const DEL: [u32; 7] = [1, 2, 49, 1 << 27, u32::MAX - 1, u32::MAX, 0];
        const INS: [u32; 7] = [1, 3, 47, 1 << 27, u32::MAX - 1, u32::MAX, 0];
        const REL: [u32; 7] = [1, 5, 43, 1 << 27, u32::MAX - 1, u32::MAX, 0];
        let (del, ins, rel) = (DEL[del_i], INS[ins_i], REL[rel_i]);
        // Every ablation stage of the kernel — allocating baseline, arena,
        // arena + width-adaptive cells, and the full branch-split kernel —
        // must agree with the oracle, including near-u32::MAX weights that
        // force the u64 fallback (the adaptive selection is what keeps the
        // narrow kernel from ever wrapping).
        let costs = CostModel { delete: del, insert: ins, relabel: rel };
        let expect = naive_ted(&a, &b, costs);
        for mode in KernelMode::ABLATION {
            for s in [TedStrategy::Left, TedStrategy::Right, TedStrategy::Auto] {
                prop_assert_eq!(ted_with_mode(&a, &b, costs, s, mode), expect);
            }
        }
        // Small weights must actually exercise the narrow kernel; huge
        // weights must be classified as needing u64 cells.
        if del <= 49 && ins <= 49 && rel <= 49 {
            prop_assert_eq!(cell_width(a.size(), b.size(), costs), CellWidth::U32);
        }
        if del >= u32::MAX - 1 || ins >= u32::MAX - 1 {
            prop_assert_eq!(cell_width(a.size(), b.size(), costs), CellWidth::U64);
        }
    }

    #[test]
    fn hash_equal_short_circuit_matches_full_dp(
        a in arb_tree(10),
        b in arb_tree(10),
        duplicate in any::<bool>(),
    ) {
        // `ted_with` short-circuits hash-equal pairs to 0 without any DP;
        // `ted_with_mode` bypasses that and always runs the kernel.  On
        // randomly duplicated trees (and on arbitrary pairs) both answers
        // must coincide — the short-circuit is an optimisation, never an
        // approximation.
        let b = if duplicate { a.clone() } else { b };
        let fast = ted_with(&a, &b, CostModel::UNIT, TedStrategy::Auto);
        let full = ted_with_mode(&a, &b, CostModel::UNIT, TedStrategy::Auto, KernelMode::Full);
        prop_assert_eq!(fast, full);
        if duplicate {
            prop_assert_eq!(fast, 0);
        }
        // Shared trees take the same short-circuit through memoized hashes.
        let (sa, sb) = (SharedTree::new(a), SharedTree::new(b));
        prop_assert_eq!(ted_shared(&sa, &sb, CostModel::UNIT, TedStrategy::Auto), full);
    }

    #[test]
    fn interned_ted_matches_string_oracle_under_random_cost_models(
        a in arb_tree(8),
        b in arb_tree(8),
        del in 1u32..50,
        ins in 1u32..50,
        rel in 1u32..50,
    ) {
        // The interned-symbol comparison has two code paths — same-table
        // `Sym` equality and cross-table memoised label hashes — and both
        // must agree with the string-labelled recursive oracle, memoised
        // views or not.
        let costs = CostModel { delete: del, insert: ins, relabel: rel };
        let expect = naive_ted(&a, &b, costs);
        // Cross-table: each arb tree has its own interner.
        let (sa, sb) = (SharedTree::new(a.clone()), SharedTree::new(b.clone()));
        // Same-table: rebuild b onto a's interner.
        let b_same = SharedTree::new(reinterned_onto(a.interner(), &b));
        for s in [TedStrategy::Left, TedStrategy::Right, TedStrategy::Auto] {
            prop_assert_eq!(ted_shared(&sa, &sb, costs, s), expect);
            prop_assert_eq!(ted_shared(&sa, &b_same, costs, s), expect);
        }
    }

    #[test]
    fn shared_divergence_matches_plain(a in arb_tree(10), b in arb_tree(10)) {
        // The artifact layer must be invisible: memoised decompositions
        // give bit-identical distances to the fresh-build path.
        let (sa, sb) = (SharedTree::new(a.clone()), SharedTree::new(b.clone()));
        let plain = svdist::ted(&a, &b);
        // Twice: the first call populates the memos, the second reuses them.
        for _ in 0..2 {
            prop_assert_eq!(
                ted_shared(&sa, &sb, CostModel::UNIT, TedStrategy::Auto),
                plain
            );
        }
    }

    #[test]
    fn ted_identity_and_symmetry(a in arb_tree(12), b in arb_tree(12)) {
        prop_assert_eq!(svdist::ted(&a, &a), 0);
        prop_assert_eq!(svdist::ted(&a, &b), svdist::ted(&b, &a));
    }

    #[test]
    fn ted_bounded_by_sizes(a in arb_tree(12), b in arb_tree(12)) {
        let d = svdist::ted(&a, &b);
        prop_assert!(d <= (a.size() + b.size()) as u64);
        prop_assert!(d >= a.size().abs_diff(b.size()) as u64);
    }

    #[test]
    fn ted_triangle_inequality(a in arb_tree(7), b in arb_tree(7), c in arb_tree(7)) {
        // TED is a true metric on ordered labelled trees.
        let ab = svdist::ted(&a, &b);
        let bc = svdist::ted(&b, &c);
        let ac = svdist::ted(&a, &c);
        prop_assert!(ac <= ab + bc, "d(a,c)={ac} > d(a,b)+d(b,c)={}", ab + bc);
    }

    #[test]
    fn lower_bound_chain_is_admissible(
        a in arb_tree(9),
        b in arb_tree(9),
        del_i in 0usize..6,
        ins_i in 0usize..6,
        rel_i in 0usize..6,
    ) {
        // The approximate engine's prefilter chain: the label-histogram
        // bound never exceeds the pq-gram bound, and neither ever exceeds
        // the true TED — under unit and boundary cost models alike.
        const DEL: [u32; 6] = [1, 2, 49, 1 << 27, u32::MAX - 1, u32::MAX];
        const INS: [u32; 6] = [1, 3, 47, 1 << 27, u32::MAX - 1, u32::MAX];
        const REL: [u32; 6] = [1, 5, 43, 1 << 27, u32::MAX - 1, u32::MAX];
        for costs in [
            CostModel::UNIT,
            CostModel { delete: DEL[del_i], insert: INS[ins_i], relabel: REL[rel_i] },
        ] {
            let (pa, pb) = (TreeProfile::build(&a), TreeProfile::build(&b));
            let hist = label_histogram_lb(&pa, &pb, costs);
            let pq = pqgram_lb(&pa, &pb, costs);
            let exact = ted_with(&a, &b, costs, TedStrategy::Auto);
            prop_assert!(hist <= pq, "hist lb {hist} > pqgram lb {pq}");
            prop_assert!(pq <= exact, "pqgram lb {pq} > ted {exact} ({costs:?})");
        }
    }

    #[test]
    fn ted_within_agrees_with_exact_at_every_threshold(
        a in arb_tree(9),
        b in arb_tree(9),
        del_i in 0usize..7,
        ins_i in 0usize..7,
        rel_i in 0usize..7,
    ) {
        // `ted_within(tau)` returns `Some(d)` iff the exact distance is
        // `d <= tau` — at tau right below, at, and above the distance,
        // under boundary cost models, in every strategy, and in both the
        // allocating baseline and the vector banded kernels.
        const DEL: [u32; 7] = [1, 2, 49, 1 << 27, u32::MAX - 1, u32::MAX, 0];
        const INS: [u32; 7] = [1, 3, 47, 1 << 27, u32::MAX - 1, u32::MAX, 0];
        const REL: [u32; 7] = [1, 5, 43, 1 << 27, u32::MAX - 1, u32::MAX, 0];
        let costs = CostModel { delete: DEL[del_i], insert: INS[ins_i], relabel: REL[rel_i] };
        let exact = ted_with(&a, &b, costs, TedStrategy::Auto);
        let taus = [
            0,
            exact.saturating_sub(1),
            exact,
            exact.saturating_add(1),
            exact.saturating_mul(2).saturating_add(3),
        ];
        for tau in taus {
            let want = (exact <= tau).then_some(exact);
            for s in [TedStrategy::Left, TedStrategy::Right, TedStrategy::Auto] {
                prop_assert_eq!(
                    ted_within(&a, &b, costs, s, tau), want,
                    "tau={} exact={} {:?} {:?}", tau, exact, s, costs
                );
            }
            prop_assert_eq!(
                ted_within_with_mode(&a, &b, costs, TedStrategy::Auto, tau, KernelMode::Baseline),
                want,
                "baseline kernel disagrees at tau={}", tau
            );
            // The Simd mode routes through the vector banded kernel where
            // the width checks admit the pair (and must agree either way).
            prop_assert_eq!(
                ted_within_with_mode(&a, &b, costs, TedStrategy::Auto, tau, KernelMode::Simd),
                want,
                "simd banded kernel disagrees at tau={} {:?}", tau, costs
            );
        }
        // The shared-tree entry point (profile prefilter + memoized
        // decompositions) answers identically.
        let (sa, sb) = (SharedTree::new(a), SharedTree::new(b));
        prop_assert_eq!(
            ted_within_shared(&sa, &sb, costs, TedStrategy::Auto, exact),
            Some(exact)
        );
    }

    // -----------------------------------------------------------------------
    // serialisation roundtrips
    // -----------------------------------------------------------------------

    #[test]
    fn svpack_tree_roundtrip(t in arb_spanned_tree()) {
        let bytes = write_tree(&t);
        prop_assert_eq!(bytes[4], 2, "writer emits the v2 columnar format");
        let back = read_tree(&bytes).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn svpack_v1_payloads_decode_identically(t in arb_spanned_tree()) {
        // Legacy v1 payloads (interleaved records, string table rebuilt
        // from labels) must decode to the same tree as the v2 writer.
        let v1 = write_tree_v1(&t);
        prop_assert_eq!(v1[4], 1);
        let from_v1 = read_tree(&v1).unwrap();
        let from_v2 = read_tree(&write_tree(&t)).unwrap();
        prop_assert_eq!(&from_v1, &t);
        prop_assert_eq!(&from_v1, &from_v2);
        prop_assert_eq!(from_v1.structural_hash(), t.structural_hash());
    }

    #[test]
    fn svz_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn svz_roundtrip_repetitive(pattern in proptest::collection::vec(any::<u8>(), 1..32),
                                reps in 1usize..256) {
        let data: Vec<u8> = pattern.iter().copied().cycle().take(pattern.len() * reps).collect();
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    // -----------------------------------------------------------------------
    // sequence distances
    // -----------------------------------------------------------------------

    #[test]
    fn onp_equals_lcs_identity(a in proptest::collection::vec(0u8..4, 0..64),
                               b in proptest::collection::vec(0u8..4, 0..64)) {
        let d = edit_distance_onp(&a, &b);
        let l = lcs_len(&a, &b);
        prop_assert_eq!(d, a.len() + b.len() - 2 * l);
    }

    #[test]
    fn levenshtein_sandwich(a in proptest::collection::vec(0u8..4, 0..48),
                            b in proptest::collection::vec(0u8..4, 0..48)) {
        let lev = levenshtein(&a, &b);
        let onp = edit_distance_onp(&a, &b);
        prop_assert!(lev <= onp);
        prop_assert!(onp <= 2 * lev);
    }

    #[test]
    fn sequence_metric_axioms(a in proptest::collection::vec(0u8..4, 0..48),
                              b in proptest::collection::vec(0u8..4, 0..48)) {
        prop_assert_eq!(edit_distance_onp(&a, &a), 0);
        prop_assert_eq!(edit_distance_onp(&a, &b), edit_distance_onp(&b, &a));
    }

    // -----------------------------------------------------------------------
    // JSON roundtrip
    // -----------------------------------------------------------------------

    #[test]
    fn json_string_roundtrip(s in "\\PC*") {
        use silvervale::svjson::{parse, Json};
        let doc = Json::Str(s.clone()).to_string_compact();
        prop_assert_eq!(parse(&doc).unwrap(), Json::Str(s));
    }

    #[test]
    fn json_number_roundtrip(v in -1.0e12f64..1.0e12) {
        use silvervale::svjson::{parse, Json};
        let doc = Json::Num(v).to_string_compact();
        let back = parse(&doc).unwrap().as_f64().unwrap();
        prop_assert!((back - v).abs() <= v.abs() * 1e-12 + 1e-9);
    }

    // -----------------------------------------------------------------------
    // clustering invariants
    // -----------------------------------------------------------------------

    #[test]
    fn clustering_invariants(dists in proptest::collection::vec(0.0f64..10.0, 6)) {
        use svcluster::{cluster, Linkage};
        use svdist::DistanceMatrix;
        // 4 items, 6 condensed entries.
        let mut m = DistanceMatrix::new(
            (0..4).map(|i| format!("m{i}")).collect()
        );
        let mut k = 0;
        for i in 0..4 {
            for j in (i + 1)..4 {
                m.set(i, j, dists[k]);
                k += 1;
            }
        }
        let d = cluster(&m, Linkage::Complete);
        prop_assert_eq!(d.merges.len(), 3);
        // Complete-linkage merge heights are monotone non-decreasing.
        for w in d.merges.windows(2) {
            prop_assert!(w[0].height <= w[1].height + 1e-12);
        }
        // Leaf order is a permutation.
        let mut order = d.leaf_order();
        order.sort_unstable();
        prop_assert_eq!(order, vec![0, 1, 2, 3]);
        // Flat cuts partition the items.
        for k in 1..=4usize {
            let cuts = d.cut(k);
            let total: usize = cuts.iter().map(Vec::len).sum();
            prop_assert_eq!(total, 4);
        }
    }

    #[test]
    fn nn_chain_matches_greedy_on_random_matrices(
        vals in proptest::collection::vec(0u32..1000, 10)
    ) {
        use svcluster::{cluster, cluster_greedy, Linkage};
        use svdist::DistanceMatrix;
        // 5 items, 10 condensed entries — distinct by construction (the
        // `k * 1e-7` tilt breaks every tie even after shrinking), so the
        // canonicalised dendrograms of the O(n³) greedy scan and the
        // O(n²) NN-chain must coincide exactly for the combinatorial
        // linkages.
        let labels: Vec<String> = (0..5).map(|i| format!("m{i}")).collect();
        let mut m = DistanceMatrix::new(labels.clone());
        let mut k = 0;
        for i in 0..5 {
            for j in (i + 1)..5 {
                m.set(i, j, vals[k] as f64 + k as f64 * 1e-7);
                k += 1;
            }
        }
        for linkage in [Linkage::Single, Linkage::Complete] {
            let chain = cluster(&m, linkage);
            let greedy = cluster_greedy(&m, linkage);
            prop_assert_eq!(&chain, &greedy, "{:?}", linkage);
        }
        // Average linkage computes each height as a differently-ordered
        // f64 sum in the two algorithms, so heights may differ in final
        // ulps; compare the induced ultrametric instead (skipping the
        // measure-zero near-tie inputs where an ulp can flip a merge).
        let chain = cluster(&m, Linkage::Average);
        let greedy = cluster_greedy(&m, Linkage::Average);
        let mut heights: Vec<f64> = greedy.merges.iter().map(|mg| mg.height).collect();
        heights.sort_by(f64::total_cmp);
        if heights.windows(2).all(|w| w[1] - w[0] > 1e-6) {
            for i in 0..5 {
                for j in (i + 1)..5 {
                    let (ca, cg) = (
                        chain.cophenetic(&labels[i], &labels[j]).unwrap(),
                        greedy.cophenetic(&labels[i], &labels[j]).unwrap(),
                    );
                    prop_assert!(
                        (ca - cg).abs() <= 1e-9,
                        "cophenetic({}, {}) chain {} vs greedy {}", i, j, ca, cg
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// frontend robustness: arbitrary input must never panic
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn cpp_frontend_never_panics(src in "[a-z0-9 \\n\\t{}()\\[\\];,.*+<>=&|!#\"'/-]{0,200}") {
        use svlang::source::SourceSet;
        use svlang::unit::{compile_unit, UnitOptions};
        let mut ss = SourceSet::new();
        let m = ss.add("fuzz.cpp", src);
        // Ok or Err are both fine; panics are not.
        let _ = compile_unit(&ss, m, &UnitOptions::default());
    }

    #[test]
    fn fortran_frontend_never_panics(src in "[a-z0-9 \\n(),:=+*!$.-]{0,200}") {
        use svlang::fortran::parse_fortran;
        use svlang::source::FileId;
        let _ = parse_fortran(&src, FileId(0), "fuzz.f90");
    }

    #[test]
    fn compile_commands_parser_never_panics(src in "[\\[\\]{}\",:a-z0-9 .\\\\/-]{0,200}") {
        let _ = silvervale::parse_compile_commands(&src);
    }

    #[test]
    fn db_loader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = silvervale::CodebaseDb::from_bytes(&bytes);
    }

    #[test]
    fn tree_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = read_tree(&bytes);
        let _ = decompress(&bytes);
    }
}
