//! Distributed tracing end-to-end: a traced client request against a
//! live TCP server must come back with a trace id that finds the
//! server's span tree via the `trace` method, pool sub-jobs parented
//! under the request span, and a merged Chrome trace with one pid lane
//! per process.  The flight recorder's tail-sampling is exercised with
//! an injected delay: the slow request lands in `slowlog`, fast ones
//! don't.
//!
//! Caveat: client and server share this test process, so the *global*
//! span collector sees both sides at once — assertions on the local
//! span set are existence-based, never count-based.

use silvervale::serve::AnalysisService;
use silvervale::svjson::Json;
use std::time::Duration;
use svserve::{
    id_hex, merged_chrome_trace, serve, serve_with, Client, Fault, FaultPlan, Router, ServeConfig,
    ServeHandle,
};

/// Spin up a server on an OS-assigned port with the full handler set.
fn start_server() -> (ServeHandle, std::sync::Arc<AnalysisService>) {
    let service = AnalysisService::new(1 << 22);
    let mut router = Router::new();
    service.register_on(&mut router);
    let handle = serve("127.0.0.1:0", router, 2).expect("bind test server");
    (handle, service)
}

/// Walk `span`'s parent chain inside `spans`; true if it passes through
/// `ancestor_span_id`.
fn has_ancestor<'a>(spans: &[&'a Json], mut parent: &'a str, ancestor_span_id: &str) -> bool {
    for _hop in 0..spans.len() + 1 {
        if parent == ancestor_span_id {
            return true;
        }
        let Some(next) = spans
            .iter()
            .find(|s| s.get("span").and_then(Json::as_str) == Some(parent))
            .and_then(|s| s.get("parent").and_then(Json::as_str))
        else {
            return false;
        };
        parent = next;
    }
    false
}

#[test]
fn traced_request_merges_client_and_server_spans() {
    let (handle, _service) = start_server();
    svtrace::reset_spans();
    svtrace::set_enabled(true);
    let mut client = Client::connect(handle.addr()).unwrap();
    client.set_tracing(true);

    client.call("index", Json::obj([("app", Json::str("babelstream"))])).unwrap();
    client
        .call(
            "matrix",
            Json::obj([("db", Json::str("babelstream")), ("metric", Json::str("t_sem"))]),
        )
        .unwrap();
    let matrix_tid = client.last_trace_id().expect("matrix call was traced");

    // The evaluate fan-out: sub-jobs run as their own pool jobs and must
    // still land in the same trace.
    client
        .call(
            "evaluate",
            Json::obj([
                ("db", Json::str("babelstream")),
                ("app", Json::str("babelstream")),
                ("candidates", Json::Num(8.0)),
                ("seed", Json::Num(1.0)),
            ]),
        )
        .unwrap();
    let tid = client.last_trace_id().expect("evaluate call was traced");
    assert_ne!(tid, matrix_tid, "every traced call gets a fresh trace id");

    // Fetch the server's span tree for the evaluate request.
    let record = client.call("trace", Json::obj([("id", Json::str(id_hex(tid)))])).unwrap();
    assert_eq!(record.get("trace").and_then(Json::as_str), Some(id_hex(tid).as_str()));
    assert_eq!(record.get("method").and_then(Json::as_str), Some("evaluate"));
    assert_eq!(record.get("outcome").and_then(Json::as_str), Some("ok"));
    let spans: Vec<&Json> = record.get("spans").and_then(Json::as_array).unwrap().iter().collect();
    let request = spans
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some("serve.request"))
        .expect("server recorded the request span");
    let request_span = request.get("span").and_then(Json::as_str).unwrap();
    let executes: Vec<&&Json> = spans
        .iter()
        .filter(|s| s.get("name").and_then(Json::as_str) == Some("pool.execute"))
        .collect();
    assert!(!executes.is_empty(), "evaluate sub-jobs recorded pool.execute spans");
    for e in &executes {
        assert_eq!(e.get("trace").and_then(Json::as_str), Some(id_hex(tid).as_str()));
        let parent = e.get("parent").and_then(Json::as_str).unwrap();
        assert!(
            has_ancestor(&spans, parent, request_span),
            "pool.execute parents under serve.request"
        );
    }
    // The matrix request is independently retrievable under its own id.
    let matrix_rec =
        client.call("trace", Json::obj([("id", Json::str(id_hex(matrix_tid)))])).unwrap();
    assert_eq!(matrix_rec.get("method").and_then(Json::as_str), Some("matrix"));

    // Merge local + server spans into one Chrome trace: both pids, both
    // ends' spans, one shared trace id.
    svtrace::set_enabled(false);
    let local = svtrace::take_spans();
    assert!(
        local.iter().any(|s| s.name == "client.call" && s.trace_id == tid),
        "local client.call span carries the trace id"
    );
    let merged = merged_chrome_trace(&local, Some(&record));
    assert!(merged.contains("\"pid\":1") && merged.contains("\"pid\":2"), "{merged:.200}");
    assert!(merged.contains("client.call"), "client side present");
    assert!(merged.contains("serve.request"), "server side present");
    assert!(merged.contains(&id_hex(tid)), "shared trace id ties the lanes");
    // The merged document is valid JSON by the repo's own parser.
    silvervale::svjson::parse(&merged).expect("merged trace parses");

    handle.shutdown();
}

#[test]
fn slow_requests_land_in_the_slowlog_and_fast_ones_do_not() {
    let mut router = Router::new();
    router.register("echo", |p| Ok(p.clone()));
    let faults = FaultPlan::new(7);
    // Only the first pool job is delayed past the threshold.
    faults.script("pool.execute", [Fault::Delay(Duration::from_millis(250))]);
    let handle = serve_with(
        "127.0.0.1:0",
        router,
        ServeConfig {
            workers: 1,
            slow_threshold: Some(Duration::from_millis(100)),
            faults: Some(faults),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let mut client = Client::connect(handle.addr()).unwrap();
    client.set_tracing(true);
    client.call("echo", Json::str("slow")).unwrap();
    let slow_tid = client.last_trace_id().unwrap();
    client.call("echo", Json::str("fast")).unwrap();
    let fast_tid = client.last_trace_id().unwrap();

    let log = client.call("slowlog", Json::Null).unwrap();
    assert_eq!(log.get("slow_threshold_ms").and_then(Json::as_f64), Some(100.0));
    let entries = log.get("entries").and_then(Json::as_array).unwrap();
    let traces: Vec<&str> =
        entries.iter().filter_map(|e| e.get("trace").and_then(Json::as_str)).collect();
    assert!(traces.contains(&id_hex(slow_tid).as_str()), "delayed request flagged: {traces:?}");
    assert!(!traces.contains(&id_hex(fast_tid).as_str()), "fast request not flagged: {traces:?}");
    let slow = entries
        .iter()
        .find(|e| e.get("trace").and_then(Json::as_str) == Some(id_hex(slow_tid).as_str()))
        .unwrap();
    assert!(slow.get("dur_ms").and_then(Json::as_f64).unwrap() >= 100.0);
    // The flagged record keeps its span tree for postmortem reading.
    let n_spans = slow.get("spans").and_then(Json::as_array).unwrap().len();
    assert!(n_spans >= 2, "serve.request + pool.execute retained, got {n_spans}");
    // `limit` trims the reply.
    let log = client.call("slowlog", Json::obj([("limit", Json::Num(0.0))])).unwrap();
    assert_eq!(log.get("entries").and_then(Json::as_array).map(<[Json]>::len), Some(0));

    handle.shutdown();
}
