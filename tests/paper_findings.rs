//! Every qualitative finding of the paper's evaluation (§V–§VI),
//! reproduced as an executable assertion.  These are the "shape" checks:
//! who diverges from whom, in which direction, under which metric.

use silvervale::{divergence_from, index_app, index_fortran};
use svcorpus::{unit, App, Model};
use svmetrics::{divergence, Measured, Metric, Variant};
use svperf::{phi_all, PLATFORMS};

fn div(metric: Metric, v: Variant, app: App, from: Model, to: Model) -> f64 {
    let a = unit(app, from).unwrap();
    let b = unit(app, to).unwrap();
    divergence(metric, v, &Measured::new(&a), &Measured::new(&b)).normalized()
}

#[test]
fn finding_omp_tsem_exceeds_tsrc_consistently() {
    // §V-C: "The directive-based OpenMP has a consistently higher T_sem
    // divergence when compared to T_src or other perceived metrics" —
    // check on several apps.
    for app in [App::TeaLeaf, App::CloverLeaf, App::BabelStream] {
        let t_src = div(Metric::TSrc, Variant::PLAIN, app, Model::Serial, Model::OpenMp);
        let t_sem = div(Metric::TSem, Variant::PLAIN, app, Model::Serial, Model::OpenMp);
        assert!(t_sem > t_src, "{app:?}: T_sem {t_sem} vs T_src {t_src}");
    }
}

#[test]
fn finding_omp_target_similar_semantics_to_kokkos_cheaper_source() {
    // §VI: "the OpenMP model encodes similar levels of semantic complexity
    // to Kokkos while accomplishing this with near zero cost at the source
    // (T_src) level."
    let app = App::CloverLeaf;
    let omp_src = div(Metric::TSrc, Variant::PLAIN, app, Model::Serial, Model::OmpTarget);
    let kokkos_src = div(Metric::TSrc, Variant::PLAIN, app, Model::Serial, Model::Kokkos);
    assert!(
        omp_src < kokkos_src,
        "OpenMP target source cost {omp_src} must undercut Kokkos {kokkos_src}"
    );
    // The real insight: OpenMP target *hides* complexity — its
    // semantic-to-perceived divergence ratio towers over Kokkos's, whose
    // complexity is all visible in the source.
    let omp_sem = div(Metric::TSem, Variant::PLAIN, app, Model::Serial, Model::OmpTarget);
    let kokkos_sem = div(Metric::TSem, Variant::PLAIN, app, Model::Serial, Model::Kokkos);
    let omp_hidden = omp_sem / omp_src.max(1e-9);
    let kokkos_hidden = kokkos_sem / kokkos_src.max(1e-9);
    assert!(
        omp_hidden > kokkos_hidden,
        "OpenMP hides semantics: ratio {omp_hidden} vs Kokkos {kokkos_hidden}"
    );
    // And the perceived cost gap is wide: OpenMP target's source-level
    // divergence is well under half of Kokkos's.
    assert!(omp_src * 2.0 < kokkos_src, "omp_src {omp_src} vs kokkos_src {kokkos_src}");
}

#[test]
fn finding_tsem_inlining_jump_for_library_models_not_omp() {
    // §V-C: "for library-based or language-based models, we see a huge
    // jump in divergence as foreign code is brought in … For OpenMP, and
    // to a lesser degree CUDA, both show very little change for T_sem+i."
    // (Same-codebase helpers get inlined; OpenMP relies on the compiler.)
    let app = App::MiniBude; // helper-heavy: position functions inline
    let jump = |model: Model| {
        let plain = div(Metric::TSem, Variant::PLAIN, app, Model::Serial, model);
        let inl = div(Metric::TSem, Variant::INLINED, app, Model::Serial, model);
        inl - plain
    };
    let omp_jump = jump(Model::OpenMp).abs();
    assert!(omp_jump < 0.2, "OpenMP inlining jump {omp_jump}");
}

#[test]
fn finding_sycl_source_pp_extreme_divergence() {
    // §V-C: "SYCL, when using the CPP modifier (Source+pp), exhibits
    // extreme divergence from the serial model" — the ~20 MB header.
    for app in [App::BabelStream, App::MiniBude] {
        let plain = div(Metric::Source, Variant::PLAIN, app, Model::Serial, Model::SyclUsm);
        let pp = div(Metric::Source, Variant::PP, app, Model::Serial, Model::SyclUsm);
        assert!(pp > plain * 1.5, "{app:?}: pp {pp} vs plain {plain}");
        // And it dwarfs what OpenMP's header costs post-preprocessing.
        let omp_pp = div(Metric::Source, Variant::PP, app, Model::Serial, Model::OpenMp);
        assert!(pp > omp_pp, "{app:?}: sycl pp {pp} vs omp pp {omp_pp}");
    }
}

#[test]
fn finding_t_ir_misbehaves_for_offload_models() {
    // §V-C: offload IR "contains multiple layers of driver code that is
    // unrelated to the core algorithm … artificially increasing the
    // divergence."  Offload models' T_ir divergence from serial must
    // exceed every host model's.
    // Raw TED distances (not dmax-normalised — the driver code inflates
    // the target tree too, which would mask the effect).
    let app = App::BabelStream;
    let raw = |to: Model| {
        let a = unit(app, Model::Serial).unwrap();
        let b = unit(app, to).unwrap();
        divergence(Metric::TIr, Variant::PLAIN, &Measured::new(&a), &Measured::new(&b)).distance
    };
    let host_max = [Model::OpenMp, Model::Tbb, Model::StdPar, Model::Kokkos]
        .iter()
        .map(|&m| raw(m))
        .max()
        .unwrap();
    for m in [Model::Cuda, Model::Hip, Model::OmpTarget, Model::SyclUsm] {
        let d = raw(m);
        assert!(d > host_max, "{m:?} raw T_ir {d} must exceed host max {host_max}");
    }
}

#[test]
fn finding_migration_from_cuda_costs_more_than_from_serial() {
    // §V-D (Figs. 9–10): "The divergence when starting from serial is
    // lower when compared to starting from CUDA.  This is most obviously
    // seen with the T_sem metric."
    let db = index_app(App::TeaLeaf, false).unwrap();
    let from_serial = divergence_from(&db, Metric::TSem, Variant::PLAIN, "Serial").unwrap();
    let from_cuda = divergence_from(&db, Metric::TSem, Variant::PLAIN, "CUDA").unwrap();
    let get = |v: &[(String, f64)], l: &str| v.iter().find(|(x, _)| x == l).unwrap().1;
    let mut serial_lower = 0;
    let mut total = 0;
    for m in [Model::OmpTarget, Model::SyclUsm, Model::SyclAcc, Model::Kokkos] {
        let s = get(&from_serial, m.name());
        let c = get(&from_cuda, m.name());
        total += 1;
        if s < c {
            serial_lower += 1;
        }
    }
    assert!(
        serial_lower >= 3,
        "porting from serial must beat porting from CUDA for most offload targets ({serial_lower}/{total})"
    );
}

#[test]
fn finding_omp_target_lowest_divergence_from_serial_among_offload() {
    // §V-D: "The OpenMP target model stands out as having the lowest
    // divergence overall when ported from serial."
    let db = index_app(App::TeaLeaf, false).unwrap();
    let divs = divergence_from(&db, Metric::TSrc, Variant::PLAIN, "Serial").unwrap();
    let get = |l: &str| divs.iter().find(|(x, _)| x == l).unwrap().1;
    let omp_target = get("OpenMP target");
    for m in [Model::Cuda, Model::Hip, Model::SyclUsm, Model::SyclAcc] {
        assert!(
            omp_target < get(m.name()),
            "OpenMP target {omp_target} vs {} {}",
            m.name(),
            get(m.name())
        );
    }
}

#[test]
fn finding_declarative_models_lowest_divergence() {
    // §VIII: "declarative models such as OpenMP and StdPar tend to have a
    // lower divergence from serial when compared to the rest."
    let db = index_app(App::TeaLeaf, false).unwrap();
    let divs = divergence_from(&db, Metric::TSrc, Variant::PLAIN, "Serial").unwrap();
    let get = |l: &str| divs.iter().find(|(x, _)| x == l).unwrap().1;
    let declarative = get("OpenMP").max(get("OpenMP target"));
    for imperative in ["CUDA", "HIP", "SYCL (USM)", "SYCL (acc)", "Kokkos"] {
        assert!(
            declarative < get(imperative),
            "declarative {declarative} vs {imperative} {}",
            get(imperative)
        );
    }
}

#[test]
fn finding_fortran_openacc_adds_no_parallel_semantics() {
    // §V-B: "the OpenACC model, including the array variant, did not
    // introduce extra tokens related to parallelism" (GCC 13 QoI).
    let db = index_fortran().unwrap();
    let divs = divergence_from(&db, Metric::TSem, Variant::PLAIN, "Sequential").unwrap();
    let get = |l: &str| divs.iter().find(|(x, _)| x == l).unwrap().1;
    assert!(
        get("OpenACC") < get("OpenMP"),
        "ACC {} must under-diverge OMP {}",
        get("OpenACC"),
        get("OpenMP")
    );
}

#[test]
fn finding_fortran_tsem_more_uniform_than_cpp() {
    // §V-B: "all the models at T_sem are more similar when compared to the
    // C++ version of BabelStream."
    let fdb = index_fortran().unwrap();
    let cdb = index_app(App::BabelStream, false).unwrap();
    let spread = |divs: &[(String, f64)]| {
        let vals: Vec<f64> = divs.iter().map(|(_, d)| *d).collect();
        vals.iter().fold(0.0f64, |a, &b| a.max(b))
    };
    let f = spread(&divergence_from(&fdb, Metric::TSem, Variant::PLAIN, "Sequential").unwrap());
    let c = spread(&divergence_from(&cdb, Metric::TSem, Variant::PLAIN, "Serial").unwrap());
    assert!(f < c, "fortran max divergence {f} vs C++ {c}");
}

#[test]
fn finding_sycl_accessor_source_heavier_than_semantics() {
    // §VI: "the excessive accessor for SYCL buffers made the source appear
    // much more complex than it is semantically" — T_src divergence ratio
    // to T_sem is higher for the accessor variant than the USM variant.
    let app = App::CloverLeaf;
    let ratio = |m: Model| {
        let src = div(Metric::TSrc, Variant::PLAIN, app, Model::Serial, m);
        let sem = div(Metric::TSem, Variant::PLAIN, app, Model::Serial, m);
        src / sem.max(1e-9)
    };
    assert!(
        ratio(Model::SyclAcc) > ratio(Model::SyclUsm),
        "accessor ratio {} vs usm ratio {}",
        ratio(Model::SyclAcc),
        ratio(Model::SyclUsm)
    );
}

#[test]
fn finding_phi_landscape_matches_section6() {
    // §VI: portable models have meaningful Φ; single-vendor models score 0
    // on the six-platform set; the navigation chart's "ideal" region is
    // occupied by low-divergence, portable models.
    for app in [App::TeaLeaf, App::CloverLeaf] {
        for m in [Model::Kokkos, Model::OmpTarget, Model::SyclUsm, Model::SyclAcc] {
            assert!(phi_all(app, m) > 0.3, "{app:?}/{m:?}");
        }
        for m in [Model::Cuda, Model::Hip, Model::Serial, Model::OpenMp, Model::Tbb] {
            assert_eq!(phi_all(app, m), 0.0, "{app:?}/{m:?}");
        }
    }
    // Sanity on Table III.
    assert_eq!(PLATFORMS.len(), 6);
    assert!(svperf::platform::platform("PVC").is_some());
}

#[test]
fn finding_figure15_migration_story() {
    // Fig. 15: Φ = 1-ish in the single-platform world, 0 after AMD enters.
    let s = svperf::migration_scenario(App::TeaLeaf);
    assert!(s.stages[0].2 > 0.9);
    assert_eq!(s.stages[1].2, 0.0);
}
