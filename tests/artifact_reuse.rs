//! Observability proofs for the shared artifact layer: the memoised
//! derived views (structural hashes, TED decompositions) are computed at
//! most once per tree, and warm service paths cost zero recomputation.
//!
//! The assertions are **exact** counts against the process-global
//! `svtree::structural_hash_count()` / `svdist::decompose_count()`
//! counters, so everything lives in a single `#[test]` in its own
//! integration binary — no other test in this process touches trees.

use std::sync::atomic::AtomicU64;
use svcorpus::{unit, App, Model};
use svmetrics::{divergence, divergence_matrix, Artifacts, Measured, Metric, Variant};
use svserve::cached::{divergence_cached_arts, FpArtifact};
use svserve::TedCache;

#[test]
fn artifact_reuse_counters() {
    let models = [Model::Serial, Model::OpenMp, Model::Cuda, Model::Kokkos];
    let units: Vec<_> = models.iter().map(|&m| unit(App::BabelStream, m).unwrap()).collect();
    let arts: Vec<Artifacts> = units.iter().map(Artifacts::from_unit).collect();
    let measured: Vec<Measured<'_>> = arts.iter().map(Measured::of).collect();
    let labels: Vec<String> = models.iter().map(|m| m.name().to_string()).collect();
    let n = measured.len() as u64;

    // -- Structural hashes are memoised per stored tree ------------------
    // Fingerprinting an artefact walks its tree once; re-fingerprinting
    // the same stored artefact (the per-request path in svserve) must not
    // walk it again.
    let h0 = svtree::structural_hash_count();
    let fa = FpArtifact::of(&measured[0], Metric::TSem, Variant::PLAIN);
    let h1 = svtree::structural_hash_count();
    assert_eq!(h1 - h0, 1, "cold fingerprint hashes the tree exactly once");
    let fa_again = FpArtifact::of(&measured[0], Metric::TSem, Variant::PLAIN);
    assert_eq!(fa.fp(), fa_again.fp());
    assert_eq!(
        svtree::structural_hash_count(),
        h1,
        "warm fingerprint of a stored artefact performs zero hash computations"
    );

    // -- Decompositions are memoised across the O(n²) pair loop ----------
    // A divergence matrix over n models builds at most 2 decompositions
    // per tree (left and right), not 2 per pair.
    let d0 = svdist::decompose_count();
    let m1 = divergence_matrix(Metric::TSem, Variant::PLAIN, &labels, &measured);
    let d1 = svdist::decompose_count();
    assert!(d1 - d0 <= 2 * n, "matrix build did {} decompositions for {n} trees", d1 - d0);
    assert!(d1 > d0, "cold matrix build must decompose something");

    // Rebuilding the matrix from the same stored artefacts is free: every
    // decomposition (and every hash) is served from the memo.
    let h2 = svtree::structural_hash_count();
    let m2 = divergence_matrix(Metric::TSem, Variant::PLAIN, &labels, &measured);
    assert_eq!(m1, m2);
    assert_eq!(svdist::decompose_count(), d1, "matrix rebuild recomputed a decomposition");
    assert_eq!(svtree::structural_hash_count(), h2, "matrix rebuild recomputed a hash");

    // -- Measured reuse across metrics/variants ---------------------------
    // Each metric/variant selects a different stored tree; once each has
    // been warmed, repeating any combination recomputes nothing.
    let combos = [
        (Metric::TSrc, Variant::PLAIN),
        (Metric::TSrc, Variant::PP),
        (Metric::TSem, Variant::PLAIN),
        (Metric::TSem, Variant::INLINED),
        (Metric::TIr, Variant::PLAIN),
    ];
    for &(metric, v) in &combos {
        divergence(metric, v, &measured[0], &measured[1]);
    }
    let (h3, d3) = (svtree::structural_hash_count(), svdist::decompose_count());
    let mut repeated = Vec::new();
    for &(metric, v) in &combos {
        repeated.push(divergence(metric, v, &measured[0], &measured[1]));
    }
    assert_eq!(
        (svtree::structural_hash_count(), svdist::decompose_count()),
        (h3, d3),
        "repeated divergences across variants recomputed a derived view"
    );
    for (&(metric, v), d) in combos.iter().zip(&repeated) {
        assert_eq!(*d, divergence(metric, v, &measured[0], &measured[1]), "{metric:?} {v:?}");
    }

    // -- Warm TedCache requests cost nothing ------------------------------
    // Cold request: fingerprints are memoised (zero hash walks — the trees
    // were hashed above), one TED compute.  Warm request: cache hit, zero
    // computes, zero hashes, zero decompositions.
    let cache = TedCache::new(1 << 20);
    let computes = AtomicU64::new(0);
    let fb = FpArtifact::of(&measured[1], Metric::TSem, Variant::PLAIN);
    let cold = divergence_cached_arts(&cache, Metric::TSem, Variant::PLAIN, &fa, &fb, &computes);
    assert_eq!(computes.load(std::sync::atomic::Ordering::Relaxed), 1);
    let (h4, d4) = (svtree::structural_hash_count(), svdist::decompose_count());
    for _ in 0..3 {
        // The full per-request path: re-extract artefacts, then look up.
        let ra = FpArtifact::of(&measured[0], Metric::TSem, Variant::PLAIN);
        let rb = FpArtifact::of(&measured[1], Metric::TSem, Variant::PLAIN);
        let warm =
            divergence_cached_arts(&cache, Metric::TSem, Variant::PLAIN, &ra, &rb, &computes);
        assert_eq!(warm, cold);
    }
    assert_eq!(computes.load(std::sync::atomic::Ordering::Relaxed), 1, "warm requests recomputed");
    assert_eq!(
        (svtree::structural_hash_count(), svdist::decompose_count()),
        (h4, d4),
        "warm cache requests must perform zero hash or decomposition work"
    );
}
