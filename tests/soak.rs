//! Connection soak: the reactor must hold thousands of concurrent idle
//! connections on a handful of threads and still serve every one.
//!
//! The server runs as a child process (its fd budget is its own — the
//! test process only spends one fd per client socket), and clients are
//! raw `TcpStream`s speaking minimal JSON lines, so the always-on smoke
//! tier stays cheap.  The full 10k-connection tier is nightly/env-gated:
//! set `SV_SOAK=1` (CI's scheduled job raises `ulimit -n` first).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// Kill the server child even when an assertion panics mid-test.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    /// Launch `silvervale serve` on an ephemeral port and parse the bound
    /// address off its stdout banner.
    fn launch() -> ServerProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_silvervale"))
            .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn silvervale serve");
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line =
                lines.next().expect("server exited before banner").expect("read server banner");
            // "serving on 127.0.0.1:PORT (N workers); ..."
            if let Some(rest) = line.strip_prefix("serving on ") {
                break rest.split_whitespace().next().expect("address in banner").to_string();
            }
        };
        // Drain the rest of stdout in the background so the server never
        // blocks on a full pipe.
        std::thread::spawn(move || for _ in lines.by_ref() {});
        ServerProc { child, addr }
    }

    fn shutdown(mut self) {
        let ok = (|| -> std::io::Result<()> {
            let mut s = TcpStream::connect(&self.addr)?;
            s.write_all(b"{\"id\":999999,\"method\":\"shutdown\",\"params\":null}\n")?;
            let mut buf = [0u8; 256];
            let _ = s.read(&mut buf);
            Ok(())
        })()
        .is_ok();
        if ok {
            // Give the drain a moment, then make sure it is gone.
            for _ in 0..50 {
                match self.child.try_wait() {
                    Ok(Some(_)) => return,
                    _ => std::thread::sleep(Duration::from_millis(100)),
                }
            }
        }
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
    }
}

/// Open `n` connections, keep them ALL open concurrently, then ping each
/// one and check the reply — proving the server held `n` sockets at once
/// rather than serving them one at a time.
fn soak(addr: &str, n: usize) {
    let mut conns = Vec::with_capacity(n);
    for i in 0..n {
        let s =
            TcpStream::connect(addr).unwrap_or_else(|e| panic!("connect #{i} of {n} failed: {e}"));
        conns.push(s);
    }
    // Every connection is open; now each must still be served.
    for (i, s) in conns.iter_mut().enumerate() {
        let req = format!("{{\"id\":{i},\"method\":\"health\",\"params\":null}}\n");
        s.write_all(req.as_bytes()).unwrap_or_else(|e| panic!("write #{i}: {e}"));
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let mut line = String::new();
        BufReader::new(s.try_clone().unwrap())
            .read_line(&mut line)
            .unwrap_or_else(|e| panic!("read #{i}: {e}"));
        assert!(line.contains("\"ok\""), "conn #{i} got a bad reply: {line}");
        assert!(line.contains(&format!("\"id\":{i}")), "conn #{i} id echo: {line}");
    }
}

#[test]
fn smoke_64_concurrent_connections() {
    let server = ServerProc::launch();
    soak(&server.addr, 64);
    server.shutdown();
}

#[test]
fn full_10k_concurrent_connections() {
    // Nightly tier: needs `ulimit -n` headroom in BOTH processes (the
    // scheduled CI job raises it before running with SV_SOAK=1).
    if std::env::var("SV_SOAK").ok().as_deref() != Some("1") {
        eprintln!("skipping 10k soak (set SV_SOAK=1 to run)");
        return;
    }
    let server = ServerProc::launch();
    soak(&server.addr, 10_000);
    server.shutdown();
}
