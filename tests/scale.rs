//! Scale test: a synthetic multi-unit "production application" in two
//! models (the paper's §VII GROMACS scenario), exercising the `match()`
//! pairing, codebase-level sums, the memory-bounded TED path, and the
//! compressed DB at a size beyond the mini-apps.

use svlang::source::SourceSet;
use svlang::unit::{compile_unit, Unit, UnitOptions};
use svmetrics::{
    codebase_divergence, divergence, match_units, try_divergence, Measured, Metric, Variant,
};

/// Generate one synthetic kernel unit: `nkernels` loop nests over a few
/// arrays, optionally OpenMP-annotated.
fn kernel_unit_src(module: usize, nkernels: usize, omp: bool) -> String {
    let mut s = String::new();
    for k in 0..nkernels {
        s.push_str(&format!(
            "void kernel_{module}_{k}(double* a, const double* b, const double* c, int n) {{\n"
        ));
        if omp {
            s.push_str("#pragma omp parallel for schedule(static)\n");
        }
        s.push_str("  for (int i = 0; i < n; i++) {\n");
        match k % 4 {
            0 => s.push_str(&format!("    a[i] = b[i] + {}.5 * c[i];\n", k + 1)),
            1 => s.push_str("    a[i] = b[i] * c[i] + a[i];\n"),
            2 => {
                s.push_str("    double t = b[i] - c[i];\n");
                s.push_str("    a[i] = t * t;\n");
            }
            _ => {
                s.push_str("    if (b[i] > 0.0) {\n      a[i] = sqrt(b[i]);\n    } else {\n      a[i] = 0.0;\n    }\n");
            }
        }
        s.push_str("  }\n}\n\n");
    }
    s
}

/// Build an N-module codebase in one model.
fn build_codebase(modules: usize, kernels_per_module: usize, omp: bool) -> Vec<Unit> {
    let mut ss = SourceSet::new();
    let tag = if omp { "omp" } else { "serial" };
    let mut paths = Vec::new();
    for m in 0..modules {
        let mut src = String::from("#include <cmath>\n");
        if omp {
            src.push_str("#include <omp.h>\n");
        }
        src.push_str(&kernel_unit_src(m, kernels_per_module, omp));
        let path = format!("{tag}/module_{m}.cpp");
        ss.add(path.clone(), src);
        paths.push(path);
    }
    ss.add_system("cmath", "double sqrt(double x);\n");
    ss.add_system("omp.h", "int omp_get_max_threads();\n");
    let mut units = Vec::new();
    for p in &paths {
        units.push(compile_unit(&ss, ss.lookup(p).unwrap(), &UnitOptions::default()).unwrap());
    }
    units
}

#[test]
fn large_multi_unit_codebase_divergence() {
    const MODULES: usize = 24;
    const KERNELS: usize = 12;
    let serial = build_codebase(MODULES, KERNELS, false);
    let omp = build_codebase(MODULES, KERNELS, true);
    let sm: Vec<Measured<'_>> = serial.iter().map(Measured::new).collect();
    let om: Vec<Measured<'_>> = omp.iter().map(Measured::new).collect();

    // Every module pairs with its counterpart.
    let pairs = match_units(&sm, &om);
    assert_eq!(pairs.len(), MODULES);

    // Eq. 6 over 24 matched pairs.
    let d = codebase_divergence(Metric::TSem, Variant::PLAIN, &sm, &om);
    assert!(d.distance > 0);
    let norm = d.normalized();
    assert!(norm > 0.0 && norm < 0.6, "whole-codebase OpenMP divergence {norm}");

    // The codebase sum equals the per-pair sums.
    let per_pair: u64 = pairs
        .iter()
        .map(|&(i, j)| divergence(Metric::TSem, Variant::PLAIN, &sm[i], &om[j]).distance)
        .sum();
    assert_eq!(d.distance, per_pair);
}

#[test]
fn whole_codebase_single_tree_is_memory_hostile() {
    // §III-C: treating "the entire codebase … as a single large tree"
    // blows up TED memory — the reason match() exists.  The bounded API
    // quantifies it: per-unit pairs fit a small budget, the fused tree
    // does not.
    const MODULES: usize = 24;
    const KERNELS: usize = 12;
    let serial = build_codebase(MODULES, KERNELS, false);
    let omp = build_codebase(MODULES, KERNELS, true);

    let budget: u64 = 64 << 20; // 64 MiB of DP tables
    for (a, b) in serial.iter().zip(&omp) {
        let ma = Measured::new(a);
        let mb = Measured::new(b);
        try_divergence(Metric::TSem, Variant::PLAIN, &ma, &mb, budget)
            .expect("per-unit pair must fit the budget");
    }

    // Fuse everything into one tree per codebase.
    let fuse = |units: &[Unit]| {
        let mut t = svtree::Tree::leaf("Codebase");
        let root = t.root().unwrap();
        for u in units {
            t.graft(root, &u.t_sem);
        }
        t
    };
    let big_a = fuse(&serial);
    let big_b = fuse(&omp);
    let est = svdist::memory_estimate(&big_a, &big_b);
    assert!(
        est > budget,
        "fused trees ({} and {} nodes) must exceed the per-pair budget: {est}",
        big_a.size(),
        big_b.size()
    );
    let err = svdist::ted_bounded(
        &big_a,
        &big_b,
        svdist::CostModel::UNIT,
        svdist::Strategy::Auto,
        budget,
    )
    .unwrap_err();
    let svdist::TedError::BudgetExceeded { needed_bytes, .. } = err;
    assert_eq!(needed_bytes, est);
}

#[test]
fn large_codebase_db_roundtrip() {
    use silvervale::CodebaseDb;
    use svmetrics::Artifacts;
    let omp = build_codebase(16, 10, true);
    let mut db = CodebaseDb::new("synthetic-app");
    for u in &omp {
        db.push(u.name.clone(), Artifacts::from_unit(u), None);
    }
    let bytes = db.to_bytes();
    let back = CodebaseDb::from_bytes(&bytes).unwrap();
    assert_eq!(back, db);
    // 16 structurally similar modules must compress hard.
    let total_nodes: usize = db
        .entries
        .iter()
        .map(|e| e.artifacts.t_sem.size() + e.artifacts.t_src.size() + e.artifacts.t_ir.size())
        .sum();
    // The DB also stores t_src_pp, t_sem+i, and all normalised line text;
    // ~5.5 bytes per counted node overall is a hard-compression result.
    assert!(bytes.len() < total_nodes * 8, "{} bytes for {} nodes", bytes.len(), total_nodes);
}
