//! Cross-crate integration: the full Fig. 2 workflow over the corpus.

use silvervale::{index_app, index_fortran, model_dendrogram, model_matrix, CodebaseDb};
use svcorpus::{App, Model};
#[allow(unused_imports)]
use svdist::DistanceMatrix;
use svmetrics::{Metric, Variant};

#[test]
fn tealeaf_tsem_clustering_matches_paper_figure4() {
    // "We observe a clear clustering of model variants and models that are
    // related in terms of design philosophy.  For example, both variants of
    // SYCL, and OpenMP, are grouped into a cluster, and the HIP model is
    // grouped with CUDA.  The serial model appears to be close to the
    // OpenMP variants."
    let db = index_app(App::TeaLeaf, false).unwrap();
    let dendro = model_dendrogram(&db, Metric::TSem, Variant::PLAIN);

    // CUDA/HIP merge before either joins anything else distant.
    let cuda_hip = dendro.cophenetic("CUDA", "HIP").unwrap();
    let cuda_kokkos = dendro.cophenetic("CUDA", "Kokkos").unwrap();
    assert!(cuda_hip < cuda_kokkos, "CUDA-HIP {cuda_hip} vs CUDA-Kokkos {cuda_kokkos}");

    // The SYCL variants pair up.
    let sycl_pair = dendro.cophenetic("SYCL (USM)", "SYCL (acc)").unwrap();
    let sycl_cuda = dendro.cophenetic("SYCL (USM)", "CUDA").unwrap();
    assert!(sycl_pair < sycl_cuda, "SYCL pair {sycl_pair} vs SYCL-CUDA {sycl_cuda}");

    // Serial sits near OpenMP ("minimal changes required to your code").
    let serial_omp = dendro.cophenetic("Serial", "OpenMP").unwrap();
    let serial_sycl = dendro.cophenetic("Serial", "SYCL (acc)").unwrap();
    assert!(serial_omp < serial_sycl, "Serial-OMP {serial_omp} vs Serial-SYCL {serial_sycl}");
}

#[test]
fn sloc_clustering_uninformative_vs_tsem() {
    // Fig. 5: "SLOC and LLOC did not group related models together, and
    // the clustering appears random."  Check the concrete symptom: under
    // SLOC the CUDA/HIP pair is NOT privileged the way T_sem privileges it.
    let db = index_app(App::TeaLeaf, false).unwrap();
    let sloc = model_matrix(&db, Metric::Sloc, Variant::PLAIN);
    let tsem = model_matrix(&db, Metric::TSem, Variant::PLAIN).normalized();

    // Under T_sem, CUDA's nearest neighbour is HIP.
    let labels = sloc.labels().to_vec();
    let cuda = labels.iter().position(|l| l == "CUDA").unwrap();
    let nearest_tsem = (0..labels.len())
        .filter(|&j| j != cuda)
        .min_by(|&a, &b| tsem.get(cuda, a).total_cmp(&tsem.get(cuda, b)))
        .unwrap();
    assert_eq!(labels[nearest_tsem], "HIP", "T_sem nearest to CUDA");

    // The "no information" symptom, quantified: the nearest neighbour
    // each model gets under SLOC disagrees with the semantic nearest
    // neighbour for most models (measured 3/10 agreement on this corpus).
    let nn = |m: &svdist::DistanceMatrix, i: usize| {
        (0..labels.len())
            .filter(|&j| j != i)
            .min_by(|&a, &b| m.get(i, a).total_cmp(&m.get(i, b)))
            .unwrap()
    };
    let agreement = (0..labels.len()).filter(|&i| nn(&sloc, i) == nn(&tsem, i)).count();
    assert!(agreement <= 5, "SLOC agrees with T_sem on {agreement}/10 neighbours");

    // And SLOC misses the SYCL variant pairing T_sem finds mutually.
    let usm = labels.iter().position(|l| l == "SYCL (USM)").unwrap();
    let acc = labels.iter().position(|l| l == "SYCL (acc)").unwrap();
    assert_eq!(nn(&tsem, usm), acc);
    assert_eq!(nn(&tsem, acc), usm);
    assert!(nn(&sloc, usm) != acc || nn(&sloc, acc) != usm);
}

#[test]
fn all_metric_matrices_have_zero_diagonal_and_symmetry() {
    let db = index_app(App::MiniBude, false).unwrap();
    for metric in Metric::ALL {
        let m = model_matrix(&db, metric, Variant::PLAIN);
        for i in 0..m.len() {
            assert_eq!(m.get(i, i), 0.0, "{metric:?} diagonal");
            for j in 0..m.len() {
                assert_eq!(m.get(i, j), m.get(j, i), "{metric:?} symmetry");
            }
        }
    }
}

#[test]
fn db_serialisation_roundtrip_full_corpus_app() {
    let db = index_app(App::CloverLeaf, false).unwrap();
    let bytes = db.to_bytes();
    let back = CodebaseDb::from_bytes(&bytes).unwrap();
    assert_eq!(back, db);
    // Compression must beat the raw artefact payload (all lines + all
    // five trees' serialised node records).
    let raw: usize = db
        .entries
        .iter()
        .map(|e| {
            let a = &e.artifacts;
            let text: usize = a.lines_pre.iter().chain(&a.lines_post).map(String::len).sum();
            let nodes = a.t_src.size()
                + a.t_src_pp.size()
                + a.t_sem.size()
                + a.t_sem_inl.size()
                + a.t_ir.size();
            text + nodes * 4
        })
        .sum();
    assert!(bytes.len() * 2 < raw, "{} bytes vs raw {}", bytes.len(), raw);
}

#[test]
fn fortran_dendrogram_structure_matches_figure6_narrative() {
    // Fig. 6's structure on this corpus: the two OpenMP variants cluster,
    // each OpenACC variant hugs its base variant (the directives add no
    // parallel tokens, the GCC QoI artefact), and at T_sem OpenACC sits
    // with the sequential family rather than with OpenMP.
    let db = index_fortran().unwrap();
    for metric in [Metric::Source, Metric::TSrc, Metric::TSem] {
        let dendro = model_dendrogram(&db, metric, Variant::PLAIN);
        let omp_pair = dendro.cophenetic("OpenMP", "OpenMP Taskloop").unwrap();
        let omp_seq = dendro.cophenetic("OpenMP", "Sequential").unwrap();
        assert!(omp_pair <= omp_seq, "{metric:?}: OpenMP variants cluster");
        let accarr_arr = dendro.cophenetic("OpenACC Array", "Array").unwrap();
        let accarr_omp = dendro.cophenetic("OpenACC Array", "OpenMP").unwrap();
        assert!(accarr_arr < accarr_omp, "{metric:?}: ACC-Array hugs Array");
    }
    let tsem = model_dendrogram(&db, Metric::TSem, Variant::PLAIN);
    let acc_seq = tsem.cophenetic("OpenACC", "Sequential").unwrap();
    let acc_omp = tsem.cophenetic("OpenACC", "OpenMP").unwrap();
    assert!(acc_seq < acc_omp, "T_sem: degenerate ACC semantics sit near Sequential");
}

#[test]
fn babelstream_host_models_cluster_at_t_ir() {
    // "Since BabelStream contains only five short kernels, we do not see
    // any meaningful clustering for T_ir except for host-only models."
    let db = index_app(App::BabelStream, false).unwrap();
    let dendro = model_dendrogram(&db, Metric::TIr, Variant::PLAIN);
    // Host models (no offload bundle) end up nearer each other than to
    // offload models.
    let serial_omp = dendro.cophenetic("Serial", "OpenMP").unwrap();
    let serial_cuda = dendro.cophenetic("Serial", "CUDA").unwrap();
    assert!(serial_omp < serial_cuda);
}

#[test]
fn matrices_stable_across_runs() {
    // The whole pipeline is deterministic.
    let a = model_matrix(&index_app(App::TeaLeaf, false).unwrap(), Metric::TSem, Variant::PLAIN);
    let b = model_matrix(&index_app(App::TeaLeaf, false).unwrap(), Metric::TSem, Variant::PLAIN);
    assert_eq!(a, b);
}

#[test]
fn every_app_indexes_all_models() {
    for app in App::ALL {
        let db = index_app(app, false).unwrap();
        assert_eq!(db.entries.len(), Model::ALL.len(), "{app:?}");
        for e in &db.entries {
            assert!(e.artifacts.t_sem.size() > 40, "{app:?}/{}", e.label);
            assert!(e.artifacts.t_ir.size() > 30, "{app:?}/{}", e.label);
            assert!(e.artifacts.sloc_pre > 20, "{app:?}/{}", e.label);
        }
    }
}
