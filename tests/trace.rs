//! End-to-end tracing: a traced compare/matrix run must produce a
//! well-formed Chrome `trace_event` JSON document that round-trips
//! through the repo's own `svjson` parser, with a span for every
//! pipeline stage, parent/child nesting, and monotonic timestamps.
//!
//! Span collection is process-global, so everything lives in ONE test
//! function — a second concurrently-running test would interleave its
//! spans into ours.

use silvervale::svjson::{self, Json};
use silvervale::{divergence_from, index_app, model_matrix};
use svcorpus::App;
use svmetrics::{Metric, Variant};

#[test]
fn traced_compare_run_round_trips_through_svjson() {
    svtrace::reset_spans();
    svtrace::set_enabled(true);
    let db = index_app(App::BabelStream, false).expect("index babelstream");
    let matrix = model_matrix(&db, Metric::TSem, Variant::PLAIN);
    let divs = divergence_from(&db, Metric::TSem, Variant::PLAIN, "Serial").expect("compare");
    svtrace::set_enabled(false);
    let spans = svtrace::take_spans();
    assert!(!divs.is_empty() && matrix.len() == divs.len());

    // Every pipeline stage shows up.
    for stage in [
        "unit.compile",
        "unit.preprocess",
        "unit.lex",
        "unit.normalise",
        "unit.parse",
        "unit.lower",
        "unit.inline",
        "matrix.build",
        "matrix.pair",
        "ted.compute",
    ] {
        assert!(
            spans.iter().any(|s| s.name == stage),
            "no '{stage}' span among {} spans",
            spans.len()
        );
    }
    // One matrix.pair span per upper-triangle cell.
    let n = matrix.len();
    let pairs = spans.iter().filter(|s| s.name == "matrix.pair").count();
    assert_eq!(pairs, n * (n - 1) / 2);

    // Nesting: stage spans sit strictly inside their unit.compile parent.
    let compile = spans.iter().find(|s| s.name == "unit.compile").unwrap();
    let child = spans
        .iter()
        .find(|s| s.name == "unit.lex" && s.tid == compile.tid && s.start_ns >= compile.start_ns)
        .expect("a unit.lex on the same thread as unit.compile");
    assert!(child.depth > compile.depth, "child is deeper");
    assert!(child.end_ns <= compile.end_ns, "child ends inside its parent");

    // The Chrome export parses with our own JSON parser…
    let trace = svtrace::chrome_trace(&spans);
    let parsed = svjson::parse(&trace).expect("chrome trace is valid JSON");
    let events = parsed.as_array().expect("top level is an event array");
    assert_eq!(events.len(), spans.len());

    // …and every event is a well-formed complete event with monotonic
    // timestamps per thread.
    let mut last_ts: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for ev in events {
        assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
        assert!(ev.get("name").and_then(Json::as_str).is_some());
        let tid = ev.get("tid").and_then(Json::as_f64).expect("tid") as u64;
        let ts = ev.get("ts").and_then(Json::as_f64).expect("ts");
        let dur = ev.get("dur").and_then(Json::as_f64).expect("dur");
        assert!(ts >= 0.0 && dur >= 0.0);
        let prev = last_ts.insert(tid, ts).unwrap_or(0.0);
        assert!(ts >= prev, "timestamps monotonic within thread {tid}: {prev} -> {ts}");
    }

    // The text tree renders the same spans (smoke check).
    let tree = svtrace::render_tree(&spans);
    assert!(tree.contains("unit.compile") && tree.contains("ted.compute"));

    // Disabled again: new work records nothing.
    let _ = model_matrix(&db, Metric::TSem, Variant::PLAIN);
    assert!(svtrace::take_spans().is_empty(), "disabled tracing records no spans");
}

/// Exporter edge cases need no live span collection, so they can run as
/// their own test functions: they build records and snapshots by hand.
#[test]
fn two_process_merge_keeps_pids_apart_and_timestamps_monotonic() {
    let span = |pid: u32, tid: u64, start: u64, end: u64, name: &'static str| svtrace::TraceEvent {
        name: name.to_string(),
        detail: String::new(),
        pid,
        tid,
        start_ns: start,
        dur_ns: end - start,
        trace_id: 0xfeed,
        span_id: start, // unique enough for the exporter
        parent_span_id: 0,
    };
    // Two processes with overlapping thread ids and deliberately
    // shuffled event order; client clock far ahead of server clock.
    let events = vec![
        span(2, 1, 50, 90, "serve.request"),
        span(1, 1, 9_000_000, 9_000_900, "client.call"),
        span(2, 1, 60, 70, "pool.execute"),
        span(2, 2, 10, 20, "pool.execute"),
        span(1, 1, 8_000_000, 9_500_000, "session"),
    ];
    let merged = svtrace::chrome_trace_events(&events);
    let parsed = svjson::parse(&merged).expect("merged trace parses");
    let evs = parsed.as_array().unwrap();
    assert_eq!(evs.len(), events.len());

    // Both pid lanes survive, and within each (pid, tid) lane the
    // timestamps are monotone even though the input was shuffled and the
    // two processes' clocks are wildly different.
    let mut pids = std::collections::BTreeSet::new();
    let mut last: std::collections::HashMap<(u64, u64), f64> = std::collections::HashMap::new();
    for ev in evs {
        let pid = ev.get("pid").and_then(Json::as_f64).expect("pid") as u64;
        let tid = ev.get("tid").and_then(Json::as_f64).expect("tid") as u64;
        let ts = ev.get("ts").and_then(Json::as_f64).expect("ts");
        pids.insert(pid);
        let prev = last.insert((pid, tid), ts).unwrap_or(f64::MIN);
        assert!(ts >= prev, "lane ({pid},{tid}) monotonic: {prev} -> {ts}");
    }
    assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![1, 2]);
    // Same-thread events of different processes never collapse into one
    // lane: pid 1 / tid 1 and pid 2 / tid 1 both recorded above.
    assert!(last.contains_key(&(1, 1)) && last.contains_key(&(2, 1)));
}

#[test]
fn prometheus_histogram_buckets_are_cumulative_up_to_inf() {
    let reg = svtrace::Registry::new();
    let h = reg.histogram("req_latency.us", &[10, 100, 1000]);
    for v in [5, 5, 50, 500, 5_000, 50_000] {
        h.record(v);
    }
    let text = svtrace::prometheus(&reg.snapshot());

    // Cumulative `le` buckets: each bound counts everything at or below
    // it, and `+Inf` equals `_count` exactly.
    assert!(text.contains("req_latency_us_bucket{le=\"10\"} 2"), "{text}");
    assert!(text.contains("req_latency_us_bucket{le=\"100\"} 3"), "{text}");
    assert!(text.contains("req_latency_us_bucket{le=\"1000\"} 4"), "{text}");
    assert!(text.contains("req_latency_us_bucket{le=\"+Inf\"} 6"), "{text}");
    assert!(text.contains("req_latency_us_count 6"), "{text}");
    let sum: u64 = [5u64, 5, 50, 500, 5_000, 50_000].iter().sum();
    assert!(text.contains(&format!("req_latency_us_sum {sum}")), "{text}");
    // Bucket counts never decrease as the bound grows (cumulativity is
    // what Prometheus quantile math relies on).
    let counts: Vec<u64> = text
        .lines()
        .filter(|l| l.starts_with("req_latency_us_bucket"))
        .filter_map(|l| l.rsplit(' ').next()?.parse().ok())
        .collect();
    assert_eq!(counts.len(), 4);
    assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
}
