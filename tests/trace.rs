//! End-to-end tracing: a traced compare/matrix run must produce a
//! well-formed Chrome `trace_event` JSON document that round-trips
//! through the repo's own `svjson` parser, with a span for every
//! pipeline stage, parent/child nesting, and monotonic timestamps.
//!
//! Span collection is process-global, so everything lives in ONE test
//! function — a second concurrently-running test would interleave its
//! spans into ours.

use silvervale::svjson::{self, Json};
use silvervale::{divergence_from, index_app, model_matrix};
use svcorpus::App;
use svmetrics::{Metric, Variant};

#[test]
fn traced_compare_run_round_trips_through_svjson() {
    svtrace::reset_spans();
    svtrace::set_enabled(true);
    let db = index_app(App::BabelStream, false).expect("index babelstream");
    let matrix = model_matrix(&db, Metric::TSem, Variant::PLAIN);
    let divs = divergence_from(&db, Metric::TSem, Variant::PLAIN, "Serial").expect("compare");
    svtrace::set_enabled(false);
    let spans = svtrace::take_spans();
    assert!(!divs.is_empty() && matrix.len() == divs.len());

    // Every pipeline stage shows up.
    for stage in [
        "unit.compile",
        "unit.preprocess",
        "unit.lex",
        "unit.normalise",
        "unit.parse",
        "unit.lower",
        "unit.inline",
        "matrix.build",
        "matrix.pair",
        "ted.compute",
    ] {
        assert!(
            spans.iter().any(|s| s.name == stage),
            "no '{stage}' span among {} spans",
            spans.len()
        );
    }
    // One matrix.pair span per upper-triangle cell.
    let n = matrix.len();
    let pairs = spans.iter().filter(|s| s.name == "matrix.pair").count();
    assert_eq!(pairs, n * (n - 1) / 2);

    // Nesting: stage spans sit strictly inside their unit.compile parent.
    let compile = spans.iter().find(|s| s.name == "unit.compile").unwrap();
    let child = spans
        .iter()
        .find(|s| s.name == "unit.lex" && s.tid == compile.tid && s.start_ns >= compile.start_ns)
        .expect("a unit.lex on the same thread as unit.compile");
    assert!(child.depth > compile.depth, "child is deeper");
    assert!(child.end_ns <= compile.end_ns, "child ends inside its parent");

    // The Chrome export parses with our own JSON parser…
    let trace = svtrace::chrome_trace(&spans);
    let parsed = svjson::parse(&trace).expect("chrome trace is valid JSON");
    let events = parsed.as_array().expect("top level is an event array");
    assert_eq!(events.len(), spans.len());

    // …and every event is a well-formed complete event with monotonic
    // timestamps per thread.
    let mut last_ts: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for ev in events {
        assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
        assert!(ev.get("name").and_then(Json::as_str).is_some());
        let tid = ev.get("tid").and_then(Json::as_f64).expect("tid") as u64;
        let ts = ev.get("ts").and_then(Json::as_f64).expect("ts");
        let dur = ev.get("dur").and_then(Json::as_f64).expect("dur");
        assert!(ts >= 0.0 && dur >= 0.0);
        let prev = last_ts.insert(tid, ts).unwrap_or(0.0);
        assert!(ts >= prev, "timestamps monotonic within thread {tid}: {prev} -> {ts}");
    }

    // The text tree renders the same spans (smoke check).
    let tree = svtrace::render_tree(&spans);
    assert!(tree.contains("unit.compile") && tree.contains("ted.compute"));

    // Disabled again: new work records nothing.
    let _ = model_matrix(&db, Metric::TSem, Variant::PLAIN);
    assert!(svtrace::take_spans().is_empty(), "disabled tracing records no spans");
}
